#!/usr/bin/env python3
"""Topology poisoning: why coordination matters (paper Section III-E).

Demonstrates, at a numerical operating point on the IEEE 14-bus system:

1. an *uncoordinated* topology error (the topology processor mapping a
   line out while the telemetry still reflects reality) trips the
   residual-based topology-error detector;
2. a *coordinated* exclusion attack — false breaker status plus matching
   measurement injections — keeps the residual clean while silently
   corrupting the operator's picture of the grid;
3. the formal model discovering the same coordinated attack from the
   constraint system alone, and its impact on estimated loads.

Run:  python examples/topology_poisoning.py
"""

import numpy as np

from repro import load_case
from repro.analysis.impact import attack_impact
from repro.attacks import coordinated_topology_attack
from repro.core.casestudy import attack_objective_2
from repro.core.report import format_verification
from repro.core.verification import verify_attack
from repro.estimation import MeasurementPlan, build_measurements
from repro.estimation.topoerror import check_topology
from repro.grid.dcflow import nominal_injections, solve_dc_flow
from repro.grid.topology import BreakerStatus, TopologyProcessor

NOISE_STD = 0.004
EXCLUDED_LINE = 13  # bus 6 - bus 13; non-core in the paper's Table II


def main() -> None:
    grid = load_case("ieee14")
    plan = MeasurementPlan(grid)
    # an operating point that loads the 6-13 corridor, so the excluded
    # line carries significant flow and an uncoordinated error is glaring
    injections = np.zeros(grid.num_buses)
    injections[0] = 1.2   # generation at bus 1
    injections[5] = 0.8   # generation at bus 6
    injections[12] = -1.0  # load at bus 13
    injections[13] = -0.6  # load at bus 14
    injections[8] = -0.4   # load at bus 9
    flow = solve_dc_flow(grid, injections)
    z = build_measurements(plan, flow, noise_std=NOISE_STD, seed=11)
    weights = [1.0 / NOISE_STD**2] * len(z)

    processor = TopologyProcessor(
        grid,
        [
            BreakerStatus(line.index, closed=True, fixed=line.index not in (5, 13))
            for line in grid.lines
        ],
    )

    true_topo = processor.true_topology()
    honest = check_topology(plan, true_topo, z, weights)
    print(
        f"true topology:        objective {honest.estimate.objective:9.1f}  "
        f"suspected: {honest.topology_suspected}"
    )

    # --- 1. uncoordinated topology error is detected --------------------
    poisoned = processor.apply_poisoning(exclusions=[EXCLUDED_LINE])
    uncoordinated = check_topology(plan, poisoned, z, weights)
    print(
        f"uncoordinated error:  objective {uncoordinated.estimate.objective:9.1f}  "
        f"suspected: {uncoordinated.topology_suspected}"
    )

    # --- 2. coordinated exclusion attack evades -------------------------
    attack = coordinated_topology_attack(
        plan, flow, poisoned, state_deltas={12: 0.05}
    )
    z_attacked = attack.apply_to(z, plan)
    coordinated = check_topology(plan, poisoned, z_attacked, weights)
    print(
        f"coordinated attack:   objective {coordinated.estimate.objective:9.1f}  "
        f"suspected: {coordinated.topology_suspected}  "
        f"({len(attack.altered_measurements)} measurements altered)"
    )

    # --- 3. the formal model finds the same attack class ----------------
    print("\nformal model, objective-2 configuration with topology attacks:")
    spec = attack_objective_2(secure_measurement_46=True, allow_topology_attack=True)
    result = verify_attack(spec)
    print(format_verification(result, spec))

    if result.attack_exists:
        impact = attack_impact(spec, result.attack.scaled(0.05), flow)
        worst_bus = max(impact.load_shift, key=lambda j: abs(impact.load_shift[j]))
        print(
            f"\nimpact at the operating point (attack scaled to 0.05 rad): "
            f"worst load distortion {impact.load_shift[worst_bus]:+.4f} pu at "
            f"bus {worst_bus}, worst flow distortion {impact.max_flow_shift:.4f} pu"
        )


if __name__ == "__main__":
    main()
