#!/usr/bin/env python3
"""Quickstart: state estimation, a stealthy attack, and formal verification.

Walks the paper's whole pipeline on the IEEE 14-bus system:

1. solve a DC operating point and estimate states from noisy telemetry;
2. show the chi-square bad-data detector catching a *naive* injection;
3. show the classical ``a = H c`` stealthy attack (Liu et al.) evading it;
4. ask the formal verification model whether a *resource-constrained*
   attacker can do the same, and replay its answer on the estimator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AttackGoal, AttackSpec, ResourceLimits, load_case, verify_attack
from repro.attacks import perfect_knowledge_attack
from repro.core.report import format_verification
from repro.estimation import (
    MeasurementPlan,
    build_h,
    build_measurements,
    chi_square_test,
    wls_estimate,
)
from repro.grid.dcflow import nominal_injections, solve_dc_flow

NOISE_STD = 0.005


def main() -> None:
    grid = load_case("ieee14")
    print(f"loaded {grid!r}, average degree {grid.average_degree():.2f}")

    # --- 1. operating point and WLS estimation -------------------------
    injections = nominal_injections(grid)
    flow = solve_dc_flow(grid, injections)
    plan = MeasurementPlan(grid)  # all 2l+b measurements taken
    z = build_measurements(plan, flow, noise_std=NOISE_STD, seed=1)
    h = build_h(grid, reference_bus=1, taken=plan.taken_in_order())
    weights = [1.0 / NOISE_STD**2] * len(z)
    estimate = wls_estimate(h, z, weights)
    test = chi_square_test(estimate)
    print(
        f"\nclean estimation: objective {estimate.objective:.1f} "
        f"(threshold {test.threshold:.1f}) -> bad data: {test.bad_data_detected}"
    )

    # --- 2. a naive injection is caught ---------------------------------
    z_naive = z.copy()
    z_naive[7] += 0.8  # clumsy bump on one flow measurement
    naive = wls_estimate(h, z_naive, weights)
    print(
        f"naive +0.8 injection: objective {naive.objective:.1f} "
        f"-> bad data: {chi_square_test(naive).bad_data_detected}"
    )

    # --- 3. the classical stealthy attack -------------------------------
    attack = perfect_knowledge_attack(plan, {10: 0.05})
    z_stealthy = attack.apply_to(z, plan)
    stealthy = wls_estimate(h, z_stealthy, weights)
    print(
        f"stealthy a=Hc attack ({len(attack.altered_measurements)} measurements): "
        f"objective {stealthy.objective:.1f} "
        f"-> bad data: {chi_square_test(stealthy).bad_data_detected}"
    )

    # --- 4. formal verification under constraints -----------------------
    spec = AttackSpec.default(
        grid,
        goal=AttackGoal.states(10),
        limits=ResourceLimits(max_measurements=10, max_buses=4),
    )
    result = verify_attack(spec)
    print("\ncan a 10-measurement / 4-substation attacker corrupt state 10?")
    print(format_verification(result, spec))

    if result.attack_exists:
        z_formal = result.attack.apply_to(z, plan)
        formal = wls_estimate(h, z_formal, weights)
        shift = formal.x_hat - estimate.x_hat
        print(
            f"\nreplayed on the estimator: objective {formal.objective:.1f} "
            f"(unchanged: {abs(formal.objective - estimate.objective) < 1e-6}), "
            f"state 10 shifted by {shift[8]:+.4f}"
        )


if __name__ == "__main__":
    main()
