"""Smoke-test the sharded cluster end to end, across real processes.

Boots ``python -m repro.cli serve --replicas 3 --sessions`` (router +
supervisor + three replica subprocesses sharing one disk cache tier and
one trace sink), then asserts the cluster's whole contract:

1. **sweep** — several spec families (distinct epsilons), each probed
   at several target buses *sequentially within the family* and
   concurrently across families, all conclusive;
2. **affinity** — every probe of a family answered by one replica, and
   the replicas' warm-session ``reused`` counters account for the
   repeat probes (the consistent-hash router kept families home);
3. **chaos** — SIGKILL one working replica mid-sweep; the re-run still
   completes (client retry + router failover + supervisor restart) and
   every result is bit-identical to the first pass (shared cache tier);
4. **baseline** — a fresh single-process ``repro serve --sessions``
   answers the same sweep with bit-identical results;
5. **trace** — one trace id spans router.request → http.request → job
   → solver work in the shared JSONL sink;
6. **errors** — unknown jobs and unknown replica pins answer
   structured JSON (``code`` field), and SIGTERM drains rc=0.

Used by CI (the "cluster smoke" step) and as an example::

    PYTHONPATH=src python examples/cluster_smoke.py
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

from repro.core.spec import AttackGoal, AttackSpec
from repro.grid.cases import ieee14
from repro.service.client import ServiceClient, ServiceError

RESULT_BUDGET_SECONDS = 90.0
EPSILONS = ("1/100", "1/150", "1/200")  # distinct epsilon = distinct family
TARGET_BUSES = (3, 6, 9)  # probes within one family
ROUTER_SPANS = {"router.request", "http.request", "job"}
SOLVER_SPANS = {"runtime.task", "session.probe", "verify.solve"}


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def make_spec(bus):
    return AttackSpec.default(ieee14(), goal=AttackGoal.states(bus))


def run_sweep(client, results, errors):
    """Concurrent across families, sequential within each family."""

    def family(eps):
        try:
            for bus in TARGET_BUSES:
                job = client.verify(
                    make_spec(bus), epsilon=eps, timeout=RESULT_BUDGET_SECONDS
                )
                results[(eps, bus)] = job
        except Exception as exc:
            errors.append((eps, exc))

    threads = [threading.Thread(target=family, args=(eps,)) for eps in EPSILONS]
    for thread in threads:
        thread.start()
    return threads


def essence(job):
    """What must be bit-identical: the verdict and the witness."""
    return (job["result"]["outcome"], json.dumps(job["result"]["attack"], sort_keys=True))


def main() -> int:
    port = free_port()
    scratch = tempfile.mkdtemp(prefix="repro-cluster-")
    cache_dir = os.path.join(scratch, "cache")
    sink = os.path.join(scratch, "spans.jsonl")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = "src" if not existing else "src" + os.pathsep + existing
    cluster = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(port),
            "--replicas",
            "3",
            "--sessions",
            "--batch-window",
            "0.02",
            "--cache-dir",
            cache_dir,
            "--trace-file",
            sink,
        ],
        env=env,
    )
    baseline = None
    try:
        client = ServiceClient(port=port, retries=8, backoff=0.1, timeout=120.0)
        client.wait_until_ready(timeout=60.0)
        health = client.health()
        assert health["role"] == "router", health
        assert len(health["replicas"]) == 3, health
        print(f"cluster up on port {port}: replicas {sorted(health['replicas'])}")

        # phase 1: concurrent sweep ------------------------------------
        first, errors = {}, []
        for thread in run_sweep(client, first, errors):
            thread.join(timeout=RESULT_BUDGET_SECONDS * len(TARGET_BUSES))
        assert not errors, errors
        assert len(first) == len(EPSILONS) * len(TARGET_BUSES), sorted(first)
        for job in first.values():
            assert job["state"] == "done", job
            assert job["result"]["outcome"] in ("sat", "unsat"), job

        # affinity: one replica per family, every time
        homes = {}
        for (eps, bus), job in sorted(first.items()):
            homes.setdefault(eps, set()).add(job["replica"])
        for eps, replicas in homes.items():
            assert len(replicas) == 1, f"family {eps} bounced across {replicas}"
        print(
            "affinity OK:",
            {eps: next(iter(replicas)) for eps, replicas in sorted(homes.items())},
        )

        # ... corroborated by the warm-session counters on the replicas
        stats = client.stats()
        reused = sum(
            replica_stats["sessions"]["reused"]
            for replica_stats in stats["replicas"].values()
            if "sessions" in replica_stats
        )
        expected_reuse = len(EPSILONS) * (len(TARGET_BUSES) - 1)
        assert reused >= expected_reuse, (
            f"warm sessions reused {reused} < {expected_reuse}; "
            "affinity is not keeping families on their owning replica"
        )
        print(f"warm-session reuse OK: {reused} probes answered incrementally")

        # phase 2: kill one working replica mid-sweep ------------------
        topology = client._request("GET", "/clusterz")
        victim_id = next(iter(sorted(homes.items())[0][1]))  # owns a family
        victim = next(
            r for r in topology["replicas"] if r["replica_id"] == victim_id
        )
        second, errors = {}, []
        os.kill(victim["pid"], signal.SIGKILL)
        threads = run_sweep(client, second, errors)  # probes hit the corpse
        print(f"killed replica {victim_id} (pid {victim['pid']}) mid-sweep")
        for thread in threads:
            thread.join(timeout=RESULT_BUDGET_SECONDS * len(TARGET_BUSES))
        assert not errors, errors
        assert len(second) == len(first), sorted(second)
        for key in first:
            assert essence(second[key]) == essence(first[key]), (
                f"{key}: {essence(second[key])} != {essence(first[key])}"
            )
        topology = client._request("GET", "/clusterz")
        assert topology["counters"]["failovers"] >= 1, (
            "the victim's family never failed over: " + json.dumps(topology)
        )
        print("chaos OK: sweep completed bit-identically with a replica down")

        # ... and the supervisor brings the victim back on the same port
        deadline = time.monotonic() + 30.0
        while True:
            topology = client._request("GET", "/clusterz")
            revived = next(
                r for r in topology["replicas"] if r["replica_id"] == victim_id
            )
            if revived["alive"] and revived["pid"] != victim["pid"]:
                break
            assert time.monotonic() < deadline, f"{victim_id} not revived: {revived}"
            time.sleep(0.2)
        assert revived["port"] == victim["port"], revived
        print(f"supervisor OK: {victim_id} restarted as pid {revived['pid']}")

        # phase 3: single-process baseline, bit-identical --------------
        baseline_port = free_port()
        baseline = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                str(baseline_port),
                "--sessions",
                "--batch-window",
                "0.02",
            ],
            env=env,
        )
        baseline_client = ServiceClient(port=baseline_port, timeout=120.0)
        baseline_client.wait_until_ready(timeout=30.0)
        reference, errors = {}, []
        for thread in run_sweep(baseline_client, reference, errors):
            thread.join(timeout=RESULT_BUDGET_SECONDS * len(TARGET_BUSES))
        assert not errors, errors
        for key in first:
            assert essence(reference[key]) == essence(first[key]), (
                f"{key}: cluster {essence(first[key])} != "
                f"single-process {essence(reference[key])}"
            )
        baseline.send_signal(signal.SIGTERM)
        assert baseline.wait(timeout=30.0) == 0
        baseline = None
        print("baseline OK: cluster results bit-identical to single process")

        # phase 4: one trace id across router -> replica -> solver -----
        trace_id = next(iter(first.values()))["trace_id"]
        with open(sink) as fh:
            spans = [json.loads(line) for line in fh if line.strip()]
        names = {span["name"] for span in spans if span["trace_id"] == trace_id}
        assert ROUTER_SPANS <= names, f"trace incomplete: {sorted(names)}"
        assert names & SOLVER_SPANS, f"no solver span in trace: {sorted(names)}"
        print(f"trace OK: {trace_id} spans {sorted(names)}")

        # phase 5: structured errors -----------------------------------
        try:
            client.job("no-such-job")
            raise AssertionError("unknown job did not 404")
        except ServiceError as exc:
            assert exc.status == 404, exc
        try:
            client._request("GET", "/v1/jobs/x?replica=r99")
            raise AssertionError("unknown replica did not error")
        except ServiceError as exc:
            assert exc.status == 503 and exc.payload["code"] == "unknown_replica", exc
        print("structured errors OK")
    finally:
        if baseline is not None and baseline.poll() is None:
            baseline.kill()
            baseline.wait(timeout=10.0)
        cluster.send_signal(signal.SIGTERM)
        try:
            returncode = cluster.wait(timeout=45.0)
        except subprocess.TimeoutExpired:
            cluster.kill()
            print("FAIL: cluster did not drain within 45 s", file=sys.stderr)
            return 1
    if returncode != 0:
        print(f"FAIL: cluster exited with {returncode}", file=sys.stderr)
        return 1
    print("OK: cluster smoke passed (affinity, failover, bit-identity, tracing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
