#!/usr/bin/env python3
"""A miniature of the paper's scalability evaluation (Section V).

Times the UFDI verification model across the bundled test systems and
both solver backends (the bundled SMT engine and the HiGHS MILP
mirror), for one attack target per system — the quick-look version of
Figure 4(a); the full sweeps live in ``benchmarks/``.

Run:  python examples/scaling_study.py [--max-buses 118]
"""

import argparse
import time

from repro.analysis.sweeps import default_targets, spec_for_case
from repro.core.verification import verify_attack
from repro.grid.cases import available_cases, load_case


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--max-buses",
        type=int,
        default=118,
        help="skip systems larger than this many buses (default 118)",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["smt", "milp"],
        choices=["smt", "milp"],
    )
    args = parser.parse_args()

    print(f"{'system':<10} {'buses':>5} {'lines':>5} " + "".join(
        f"{b + ' (s)':>12}" for b in args.backends
    ))
    for name in available_cases():
        grid = load_case(name)
        if grid.num_buses > args.max_buses:
            continue
        target = default_targets(grid, 1)[0]
        spec = spec_for_case(name, target_bus=target, max_measurements=30)
        times = []
        outcome = "?"
        for backend in args.backends:
            start = time.perf_counter()
            result = verify_attack(spec, backend=backend)
            times.append(time.perf_counter() - start)
            outcome = result.outcome.value
        row = f"{name:<10} {grid.num_buses:>5} {grid.num_lines:>5}"
        for t in times:
            row += f"{t:>12.2f}"
        print(row + f"   [{outcome}]")


if __name__ == "__main__":
    main()
