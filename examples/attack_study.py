#!/usr/bin/env python3
"""The paper's Section III-I case study on the IEEE 14-bus system.

Reproduces both attack objectives with the exact Table II/III
configuration:

* Objective 1 — corrupt states 9 and 10 by *different* amounts with at
  most 16 measurement injections spread over at most 7 substations
  (satisfiable); then show the published infeasibility boundaries; then
  the equal-change relaxation (15 measurements / 6 substations).
* Objective 2 — corrupt state 12 and *only* state 12 (the paper's
  unique attack vector {12, 32, 39, 46, 53}); then show how securing
  measurement 46 blocks it, and how topology poisoning (excluding the
  non-core line 13) restores it.

Run:  python examples/attack_study.py
"""

from repro.core.casestudy import attack_objective_1, attack_objective_2
from repro.core.report import format_verification
from repro.core.verification import verify_attack


def banner(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    banner("Attack Objective 1: states 9 and 10, different amounts, <=16/<=7")
    spec = attack_objective_1(max_measurements=16, max_buses=7, distinct=True)
    print(format_verification(verify_attack(spec), spec))

    banner("Objective 1, tightened to 15 measurements (expect unsat)")
    spec = attack_objective_1(max_measurements=15, max_buses=7, distinct=True)
    print(format_verification(verify_attack(spec), spec))

    banner("Objective 1, tightened to 6 substations (expect unsat)")
    spec = attack_objective_1(max_measurements=16, max_buses=6, distinct=True)
    print(format_verification(verify_attack(spec), spec))

    banner("Objective 1 with equal state changes allowed: 15 meas / 6 buses")
    spec = attack_objective_1(max_measurements=15, max_buses=6, distinct=False)
    print(format_verification(verify_attack(spec), spec))

    banner("Attack Objective 2: corrupt state 12 only")
    spec = attack_objective_2()
    print(format_verification(verify_attack(spec), spec))

    banner("Objective 2 with measurement 46 secured (expect unsat)")
    spec = attack_objective_2(secure_measurement_46=True)
    print(format_verification(verify_attack(spec), spec))

    banner("Objective 2 + topology poisoning: line 13 exclusion revives it")
    spec = attack_objective_2(secure_measurement_46=True, allow_topology_attack=True)
    print(format_verification(verify_attack(spec), spec))


if __name__ == "__main__":
    main()
