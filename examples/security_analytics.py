#!/usr/bin/env python3
"""Security analytics: attack costs, weak points, PMU placement.

Extends the paper's framework into an operator's planning workflow on
the IEEE 14-bus system:

1. per-state **minimum attack cost** (the fewest injections corrupting
   each state) — the boundary the paper's Figure 4(c) sweeps across;
2. the grid's **weakest states** and **most exposed measurements**;
3. **bus criticality**: how much securing a single substation raises
   the cheapest attack;
4. a **PMU defense placement**: the smallest PMU set whose securing
   blocks every UFDI attack, cross-checked against the pure
   observability placement.

Run:  python examples/security_analytics.py
"""

from repro import AttackGoal, AttackSpec, load_case, verify_attack
from repro.analysis.security_metrics import bus_criticality, security_metrics
from repro.core.mincost import minimum_attack_cost
from repro.defense.pmu import pmu_defense_placement, pmu_observability_cover


def main() -> None:
    grid = load_case("ieee14")
    spec = AttackSpec.default(grid, goal=AttackGoal.any())

    print("=== per-state minimum attack costs (measurement injections) ===")
    report = security_metrics(spec)
    for bus in sorted(report.state_costs):
        cost = report.state_costs[bus]
        bar = "#" * (cost or 0)
        print(f"  bus {bus:>3}: {cost:>3} {bar}")
    print(f"\nweakest states: {report.weakest_states} "
          f"(grid attack cost {report.grid_attack_cost})")

    print("\n=== most exposed measurements ===")
    ranked = sorted(report.measurement_exposure.items(), key=lambda kv: -kv[1])
    for meas, count in ranked[:8]:
        print(f"  {spec.plan.describe(meas):<42s} in {count} minimal attacks")

    print("\n=== bus criticality: grid attack cost after securing one bus ===")
    crit = bus_criticality(spec, buses=[4, 6, 7, 8, 9])
    for bus, cost in sorted(crit.items()):
        print(f"  secure bus {bus}: cheapest remaining attack "
              f"{'none (immune)' if cost is None else cost}")

    print("\n=== joint-budget analytics ===")
    from repro.core.spec import ResourceLimits

    constrained = spec.with_goal(AttackGoal.states(10)).with_limits(
        ResourceLimits(max_buses=3)
    )
    result = minimum_attack_cost(constrained)
    print(f"cheapest attack on state 10 touching <=3 substations: "
          f"{result.cost} measurements")

    print("\n=== PMU placements ===")
    cover = pmu_observability_cover(grid)
    print(f"minimum PMUs for observability (dominating set): {cover}")
    defense = pmu_defense_placement(spec)
    print(f"minimum PMUs to block all UFDI attacks:           {defense}")
    check = verify_attack(spec.with_secured_buses(defense))
    print(f"re-verification with the defense applied: {check.outcome.value}")


if __name__ == "__main__":
    main()
