"""Smoke-test end-to-end observability across process boundaries.

Starts ``python -m repro.cli serve --trace-file`` as a real subprocess
on a free port, submits one verification job, then asserts the three
observability planes all saw it:

1. **trace** — the job's ``trace_id`` resolves to a span tree with at
   least four layers (``http.request`` → ``job`` → ``runtime.task`` →
   ``verify.solve``) in the JSONL sink, and renders as a waterfall;
2. **metrics** — ``GET /metricsz`` is valid Prometheus text whose
   queue/batch/cache/solver counters incremented;
3. **identity** — ``GET /healthz`` reports the runtime knobs and the
   solver engine signature.

Used by CI (the "observability smoke" step) and as an example::

    PYTHONPATH=src python examples/obs_smoke.py
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile

from repro.core.spec import AttackGoal, AttackSpec
from repro.grid.cases import ieee14
from repro.obs.render import render_file
from repro.service.client import ServiceClient

RESULT_BUDGET_SECONDS = 60.0
REQUIRED_SPAN_NAMES = {"job", "runtime.task", "verify.encode", "verify.solve"}
REQUIRED_FAMILIES = (
    "repro_http_requests_total",
    "repro_jobs_submitted_total",
    "repro_batch_size",
    "repro_cache_lookups_total",
    "repro_solve_seconds",
    "repro_solver_conflicts_total",
)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def metric_value(text: str, prefix: str) -> float:
    total = 0.0
    for line in text.splitlines():
        if line.startswith(prefix) and not line.startswith("#"):
            total += float(line.rsplit(" ", 1)[1])
    return total


def main() -> int:
    port = free_port()
    sink = os.path.join(tempfile.mkdtemp(prefix="repro-obs-"), "spans.jsonl")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = "src" if not existing else "src" + os.pathsep + existing
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(port),
            "--batch-window",
            "0.02",
            "--trace-file",
            sink,
        ],
        env=env,
    )
    try:
        client = ServiceClient(port=port)
        client.wait_until_ready(timeout=30.0)
        print(f"server up on port {port}, trace sink {sink}")

        health = client.health()
        assert health["runtime"]["jobs"] is not None, health
        assert health["engine"], health
        print(f"engine: {health['engine']}")

        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(9))
        job = client.verify(spec, timeout=RESULT_BUDGET_SECONDS)
        assert job["state"] == "done", job
        trace_id = job["trace_id"]
        print(f"job {job['id']}: outcome={job['result']['outcome']} trace={trace_id}")

        # plane 1: the trace reached the sink with >=4 layers
        with open(sink) as fh:
            spans = [json.loads(line) for line in fh if line.strip()]
        mine = [span for span in spans if span["trace_id"] == trace_id]
        names = {span["name"] for span in mine}
        assert REQUIRED_SPAN_NAMES <= names, f"trace incomplete: {sorted(names)}"
        assert len(mine) >= 4, mine
        print(render_file(sink, trace_id=trace_id))

        # plane 2: the metrics endpoint saw the same request
        text = client.metrics_text()
        for family in REQUIRED_FAMILIES:
            assert f"# TYPE {family} " in text, f"missing family {family}"
        assert metric_value(text, "repro_jobs_submitted_total") >= 1, text
        assert metric_value(text, "repro_solve_seconds_count") >= 1, text
        print(f"metricsz OK: {len(text.splitlines())} lines, all families present")

        server.send_signal(signal.SIGTERM)
        code = server.wait(timeout=30.0)
        assert code == 0, f"server exited {code}"
        print("observability smoke OK")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10.0)


if __name__ == "__main__":
    sys.exit(main())
