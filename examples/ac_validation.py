#!/usr/bin/env python3
"""How far does the DC assumption carry? AC validation of DC attacks.

The paper's framework (like the UFDI literature) works in the DC
approximation.  This example measures that scope empirically on the
IEEE 14-bus system: a DC-perfect stealthy attack is replayed against a
full AC state estimator (Newton power flow + Gauss-Newton WLS over
P/Q/V telemetry), sweeping the attack magnitude to find where the AC
chi-square detector starts seeing it.

Run:  python examples/ac_validation.py
"""

import numpy as np
from scipy import stats

from repro import load_case
from repro.attacks import perfect_knowledge_attack
from repro.estimation import MeasurementPlan
from repro.estimation.ac import AcSystem, dc_attack_residual_inflation
from repro.grid.dcflow import nominal_injections


def main() -> None:
    grid = load_case("ieee14")
    system = AcSystem(grid, r_over_x=0.1)
    plan = MeasurementPlan(grid)

    injections = nominal_injections(grid, magnitude=0.5)
    flow = system.solve_power_flow(injections, 0.2 * injections)
    print(
        f"AC operating point: {flow.iterations} Newton iterations, "
        f"V in [{flow.v.min():.4f}, {flow.v.max():.4f}]"
    )

    num_measurements = 2 * len(plan.taken) + grid.num_buses
    dof = num_measurements - (2 * grid.num_buses - 1)
    threshold = stats.chi2.ppf(0.99, dof)
    print(f"AC estimator: {num_measurements} measurements, "
          f"chi-square threshold {threshold:.1f}\n")

    print(f"{'attack on state 10':>20} {'AC objective':>14} {'detected':>10}")
    for magnitude in (0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3):
        if magnitude == 0.0:
            attack = perfect_knowledge_attack(plan, {10: 1.0}).scaled(0.0)
        else:
            attack = perfect_knowledge_attack(plan, {10: magnitude})
        __, objective = dc_attack_residual_inflation(system, plan, flow, attack)
        detected = objective > threshold
        print(f"{magnitude:>17.2f} rad {objective:>14.1f} {str(detected):>10}")

    print(
        "\nA DC-perfect attack stays under the AC detector only while the"
        "\ninjected state shift is small — the linearization error grows"
        "\nquadratically with magnitude. This quantifies the scope of the"
        "\npaper's DC model: realistic low-magnitude stealth transfers,"
        "\nlarge manipulations require AC-aware attack construction."
    )


if __name__ == "__main__":
    main()
