"""Smoke-test the cluster telemetry plane across real processes.

Boots ``python -m repro.cli serve --replicas 3 --slo --flight`` (router
+ supervisor + three replica subprocesses) and proves the telemetry
plane's whole contract end to end:

1. **aggregation** — ``GET /clusterz/metrics`` merges every replica's
   scrape plus the router's own: all four processes appear under
   ``replica`` labels, and the merged histograms are *numerically
   exact* (each merged bucket/count equals the sum of the per-replica
   series it was folded from);
2. **build identity** — every process exports ``repro_build_info`` and
   all replicas report the same engine signature (no build skew);
3. **deadline miss** — a job is submitted with a deadline shorter than
   its solve time, so it reaches state ``timeout`` mid-run;
4. **burn-rate alert** — the ``jobs`` SLO sees the timeout in both
   windows, fires exactly once (rising edge, not once per tick), and
   the alert is bridged to a ``kind="slo_burn"`` monitor incident;
5. **flight recorder** — the offending trace id is frozen in a
   ``job_timeout`` flight snapshot whose span tree is >= 3 layers
   deep, and the alert's exemplar trace id resolves on
   ``/debugz/flight``;
6. **trace** — the same trace renders as a waterfall via the
   ``repro trace show`` CLI.

Used by CI (the "cluster telemetry smoke" step) and as an example::

    PYTHONPATH=src python examples/obs_cluster_smoke.py
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

from repro.core.spec import AttackGoal, AttackSpec
from repro.grid.cases import ieee14, load_case
from repro.obs import agg
from repro.service.client import ServiceClient

RESULT_BUDGET_SECONDS = 120.0
WARMUP_BUSES = (3, 6, 9)
# the merge must be exact for these histogram families (identical
# bucket bounds on every replica: they run the same build)
EXACT_HISTOGRAMS = ("repro_http_request_seconds", "repro_job_run_seconds")

SLO_CONFIG = {
    "interval_seconds": 0.2,
    "windows": [
        {
            "name": "fast",
            "short_seconds": 2.0,
            "long_seconds": 12.0,
            "burn_threshold": 0.5,
            "severity": "critical",
        }
    ],
    "slos": [
        {
            "name": "jobs",
            "objective": 0.9,
            "kind": "availability",
            "metric": "repro_jobs_finished_total",
            "bad_label": "state",
            "bad_prefix": None,
            "bad_values": ["failed", "timeout"],
            "exemplar_metric": "repro_job_run_seconds",
        }
    ],
}


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def get_text(client, path):
    status, raw = client._raw_request("GET", path)
    assert status == 200, (path, status, raw)
    return raw.decode("utf-8")


def get_json(client, path):
    return json.loads(get_text(client, path))


def wait_for(predicate, timeout=30.0, poll=0.2, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(poll)
    raise AssertionError(f"{what} not met within {timeout}s")


def span_layers(spans):
    """Depth of the deepest span in a frozen snapshot's tree."""
    by_id = {s["span_id"]: s for s in spans if s.get("span_id")}
    best = 0
    for span in spans:
        depth, seen = 1, set()
        while (
            span.get("parent_id")
            and span["parent_id"] in by_id
            and span.get("span_id") not in seen
        ):
            seen.add(span.get("span_id"))
            span = by_id[span["parent_id"]]
            depth += 1
        best = max(best, depth)
    return best


def assert_exact_histogram_merge(families, name):
    """merged bucket/count series == sum of the per-replica series."""
    family = families.get(name)
    assert family is not None, f"family {name} missing from merged scrape"
    merged, summed = {}, {}
    for sample in family.samples:
        if not (
            sample.name.endswith("_bucket")
            or sample.name.endswith("_count")
        ):
            continue
        if sample.label("replica") is None:
            merged[(sample.name,) + sample.labels] = sample.value
        else:
            key = (sample.name,) + sample.without_labels("replica")
            summed[key] = summed.get(key, 0.0) + sample.value
    assert merged, f"no merged series for {name}"
    assert merged == summed, (
        f"{name}: merged != sum of replicas\n{merged}\n{summed}"
    )
    return len(merged)


def find_flight_snapshot(client, trace_id, reasons):
    payload = get_json(client, f"/debugz/flight?trace_id={trace_id}")
    stores = [payload.get("router") or {}]
    stores += list((payload.get("replicas") or {}).values())
    for store in stores:
        for snap in store.get("snapshots") or []:
            if snap.get("reason") in reasons and snap.get("trace_id") == trace_id:
                return snap
    return None


def main() -> int:
    port = free_port()
    scratch = tempfile.mkdtemp(prefix="repro-obs-cluster-")
    sink = os.path.join(scratch, "spans.jsonl")
    slo_path = os.path.join(scratch, "slo.json")
    with open(slo_path, "w") as fh:
        json.dump(SLO_CONFIG, fh)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = "src" if not existing else "src" + os.pathsep + existing
    cluster = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(port),
            "--replicas",
            "3",
            "--batch-window",
            "0.02",
            "--trace-file",
            sink,
            "--slo",
            slo_path,
            "--flight",
        ],
        env=env,
    )
    try:
        client = ServiceClient(port=port, retries=8, backoff=0.1, timeout=120.0)
        client.wait_until_ready(timeout=60.0)
        health = client.health()
        assert health["role"] == "router", health
        assert len(health["replicas"]) == 3, health
        print(f"cluster up on port {port}: replicas {sorted(health['replicas'])}")

        # phase 1: good traffic, and a clean SLO baseline ---------------
        for bus in WARMUP_BUSES:
            spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(bus))
            job = client.verify(spec, timeout=RESULT_BUDGET_SECONDS)
            assert job["state"] == "done", job
        wait_for(
            lambda: (
                lambda p: p["slos"]
                and p["slos"][0].get("total", 0) >= len(WARMUP_BUSES)
            )(get_json(client, "/sloz")),
            what="SLO baseline sample",
        )
        print(f"warmup OK: {len(WARMUP_BUSES)} good jobs, SLO evaluator sampling")

        # phase 2: merged scrape, exact histograms, build identity ------
        families = agg.parse_text(get_text(client, "/clusterz/metrics"))
        requests = families["repro_http_requests_total"].samples
        replicas_seen = {s.label("replica") for s in requests}
        assert {None, "r0", "r1", "r2"} <= replicas_seen, replicas_seen
        # the router's own serving metrics join under replica="router"
        router_requests = families["repro_router_requests_total"].samples
        assert "router" in {s.label("replica") for s in router_requests}
        for name in EXACT_HISTOGRAMS:
            series = assert_exact_histogram_merge(families, name)
            print(f"histogram merge exact: {name} ({series} merged series)")
        info = families["repro_build_info"].samples
        signatures = {
            s.label("replica"): s.label("engine_signature")
            for s in info
            if s.label("replica")
        }
        assert {"r0", "r1", "r2", "router"} <= set(signatures), signatures
        assert len(set(signatures.values())) == 1, f"build skew: {signatures}"
        print(f"build identity OK: {next(iter(signatures.values()))}")

        # phase 3: inject a deadline miss -------------------------------
        # ieee300 solves in ~0.6 s; a 0.35 s deadline expires mid-run, so
        # the job reaches `timeout` with a full span tree in the ring.
        # Adaptive retry covers pathological machines: a job that beat
        # the clock tightens the deadline, one that expired while still
        # queued (shallow trace) loosens it.
        deadline, timeout_job, snapshot = 0.35, None, None
        for attempt in range(5):
            spec = AttackSpec.default(
                load_case("ieee300"), goal=AttackGoal.states(7 + attempt)
            )
            job = client.submit_verify(spec, deadline=deadline)
            job = client.wait(job["id"], timeout=RESULT_BUDGET_SECONDS)
            if job["state"] == "done":
                deadline = max(0.05, deadline / 3.0)
                continue
            assert job["state"] == "timeout", job
            timeout_job = job
            snapshot = wait_for(
                lambda: find_flight_snapshot(
                    client, job["trace_id"], ("job_timeout",)
                ),
                timeout=10.0,
                what="job_timeout flight snapshot",
            )
            if span_layers(snapshot["spans"]) >= 3:
                break
            deadline *= 2.0  # expired while queued: shallow trace
        assert timeout_job is not None, "no deadline miss after 5 attempts"
        trace_id = timeout_job["trace_id"]
        print(f"deadline miss injected: job {timeout_job['id']} trace {trace_id}")

        # phase 4: the burn alert fires exactly once --------------------
        status = wait_for(
            lambda: (lambda p: p if p["alerts"] else None)(
                get_json(client, "/sloz")
            ),
            what="burn-rate alert",
        )
        alerts = status["alerts"]
        assert len(alerts) == 1, alerts  # rising edge, not one per tick
        assert alerts[0]["slo"] == "jobs", alerts
        assert alerts[0]["severity"] == "critical", alerts
        exemplar = alerts[0].get("exemplar_trace_id")
        assert exemplar, alerts
        # ... and stays fired-once after the short window drains
        time.sleep(3.0)
        assert len(get_json(client, "/sloz")["alerts"]) == 1
        print(f"burn alert OK: fired once, exemplar trace {exemplar}")

        # ... bridged to the monitor incident store
        incidents = wait_for(
            lambda: client.incidents(kind="slo_burn")["incidents"],
            what="slo_burn incident",
        )
        assert incidents[0]["kind"] == "slo_burn", incidents
        assert incidents[0]["detector"] == "slo", incidents
        assert incidents[0]["evidence"]["slo"] == "jobs", incidents
        print(f"incident OK: {incidents[0]['id']} severity {incidents[0]['severity']}")

        # phase 5: the offending trace is frozen, >= 3 layers deep ------
        layers = span_layers(snapshot["spans"])
        assert layers >= 3, (layers, snapshot["spans"])
        exemplar_store = get_json(client, f"/debugz/flight?trace_id={exemplar}")
        held = [exemplar_store.get("router") or {}]
        held += list((exemplar_store.get("replicas") or {}).values())
        assert any(s.get("snapshots") for s in held), exemplar_store
        print(
            f"flight OK: job_timeout snapshot {layers} layers deep, "
            f"exemplar resolves ({'same trace' if exemplar == trace_id else exemplar})"
        )

        # phase 6: the trace renders via the CLI ------------------------
        shown = subprocess.run(
            [sys.executable, "-m", "repro.cli", "trace", "show", sink,
             "--trace-id", trace_id],
            env=env,
            capture_output=True,
            text=True,
            timeout=60.0,
        )
        assert shown.returncode == 0, shown.stderr
        assert trace_id in shown.stdout, shown.stdout
        assert "job" in shown.stdout, shown.stdout
        print(shown.stdout)
    finally:
        cluster.send_signal(signal.SIGTERM)
        try:
            returncode = cluster.wait(timeout=45.0)
        except subprocess.TimeoutExpired:
            cluster.kill()
            print("FAIL: cluster did not drain within 45 s", file=sys.stderr)
            return 1
    if returncode != 0:
        print(f"FAIL: cluster exited with {returncode}", file=sys.stderr)
        return 1
    print(
        "OK: cluster telemetry smoke passed "
        "(aggregation, build identity, burn alert, flight, trace)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
