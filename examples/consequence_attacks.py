#!/usr/bin/env python3
"""Consequence-driven attacks: what UFDI lets an adversary actually do.

The paper motivates UFDI attacks through their effect on security
assessment and corrective control (Section I). This example stages the
two canonical consequences on the IEEE 14-bus system:

1. **overload masking** — line 7 (4-5, the grid's heaviest corridor)
   is pushed beyond a hypothetical rating; a stealthy injection makes
   the operator's estimate sit comfortably inside the rating while the
   conductor actually cooks;
2. **fake congestion** — the same line, healthy, is made to *look*
   overloaded, inviting needless redispatch;
3. the **defense check** — after securing the synthesized architecture,
   both manipulations become impossible.

Run:  python examples/consequence_attacks.py
"""

import numpy as np

from repro import AttackGoal, AttackSpec, SynthesisSettings, load_case
from repro.attacks import fake_congestion_attack, overload_masking_attack
from repro.core.synthesis import synthesize_architecture
from repro.estimation import MeasurementPlan, build_h, build_measurements
from repro.estimation.baddata import chi_square_test
from repro.estimation.wls import wls_estimate
from repro.grid.dcflow import nominal_injections, solve_dc_flow

NOISE = 0.005
LINE = 7  # 4-5, admittance 23.75: the heaviest corridor


def estimated_flow(plan, z, weights, line_index, reference_bus=1):
    grid = plan.grid
    h = build_h(grid, reference_bus, taken=plan.taken_in_order())
    est = wls_estimate(h, z, weights)
    line = grid.line(line_index)
    columns = [j for j in grid.buses if j != reference_bus]
    theta = dict(zip(columns, est.x_hat))
    theta[reference_bus] = 0.0
    flow_value = line.admittance * (theta[line.from_bus] - theta[line.to_bus])
    return flow_value, est


def main() -> None:
    grid = load_case("ieee14")
    plan = MeasurementPlan(grid)
    flow = solve_dc_flow(grid, nominal_injections(grid))
    z = build_measurements(plan, flow, noise_std=NOISE, seed=21)
    weights = np.full(len(z), 1 / NOISE**2)

    true_flow = flow.flow(LINE)
    line = grid.line(LINE)
    print(f"line {LINE} ({line.from_bus}-{line.to_bus}): true flow {true_flow:+.3f} pu")

    # --- 1. overload masking -------------------------------------------
    rating = abs(true_flow) * 0.8  # pretend the line is 25% over its limit
    print(f"\n[masking] thermal rating {rating:.3f} pu -> line is OVERLOADED")
    attack = overload_masking_attack(plan, flow, LINE, rating)
    masked_flow, est = estimated_flow(plan, attack.apply_to(z, plan), weights, LINE)
    alarm = chi_square_test(est).bad_data_detected
    print(
        f"  after attack ({len(attack.altered_measurements)} injections): "
        f"operator sees {masked_flow:+.3f} pu (inside rating: "
        f"{abs(masked_flow) < rating}), bad-data alarm: {alarm}"
    )

    # --- 2. fake congestion --------------------------------------------
    rating = abs(true_flow) * 1.5  # healthy line
    print(f"\n[faking] thermal rating {rating:.3f} pu -> line is healthy")
    attack = fake_congestion_attack(plan, flow, LINE, rating)
    faked_flow, est = estimated_flow(plan, attack.apply_to(z, plan), weights, LINE)
    alarm = chi_square_test(est).bad_data_detected
    print(
        f"  after attack ({len(attack.altered_measurements)} injections): "
        f"operator sees {faked_flow:+.3f} pu (beyond rating: "
        f"{abs(faked_flow) > rating}), bad-data alarm: {alarm}"
    )

    # --- 3. the synthesized defense closes both doors --------------------
    spec = AttackSpec.default(grid, goal=AttackGoal.any())
    defense = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=4))
    print(f"\n[defense] synthesized architecture: secure buses {defense.architecture}")
    secured_plan = plan.with_secured_buses(defense.architecture)
    for label, builder in (
        ("masking", lambda: overload_masking_attack(
            secured_plan, flow, LINE, abs(true_flow) * 0.8)),
        ("faking", lambda: fake_congestion_attack(
            secured_plan, flow, LINE, abs(true_flow) * 1.5)),
    ):
        blocked = builder() is None
        print(f"  {label} attack under the architecture: "
              f"{'blocked' if blocked else 'still possible'}")


if __name__ == "__main__":
    main()
