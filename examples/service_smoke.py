"""Smoke-test the verification service end to end, across processes.

Starts ``python -m repro.cli serve`` as a real subprocess on a free
port, submits a verification job through the blocking client, asserts a
conclusive (sat/unsat) result within 60 seconds, prints the ``/statsz``
counters, then SIGTERMs the server and checks it drains cleanly.

Used by CI (the "service smoke" step) and as a copy-pasteable example::

    PYTHONPATH=src python examples/service_smoke.py
"""

import json
import os
import signal
import socket
import subprocess
import sys

from repro.core.spec import AttackGoal, AttackSpec
from repro.grid.cases import ieee14
from repro.service.client import ServiceClient

RESULT_BUDGET_SECONDS = 60.0


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def main() -> int:
    port = free_port()
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = "src" if not existing else "src" + os.pathsep + existing
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(port),
            "--batch-window",
            "0.02",
        ],
        env=env,
    )
    try:
        client = ServiceClient(port=port)
        client.wait_until_ready(timeout=30.0)
        print(f"server up on port {port}")

        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(9))
        job = client.verify(spec, timeout=RESULT_BUDGET_SECONDS)
        outcome = job["result"]["outcome"]
        print(f"job {job['id']}: state={job['state']} outcome={outcome}")
        assert job["state"] == "done", job
        assert outcome in ("sat", "unsat"), job

        stats = client.stats()
        print("statsz:", json.dumps(stats, indent=2))
        assert stats["queue"]["done"] >= 1, stats
        assert stats["batching"]["solver_calls"] >= 1, stats
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            returncode = server.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            server.kill()
            print("FAIL: server did not drain within 30 s", file=sys.stderr)
            return 1
    if returncode != 0:
        print(f"FAIL: server exited with {returncode}", file=sys.stderr)
        return 1
    print("OK: verify round-trip conclusive and server drained cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
