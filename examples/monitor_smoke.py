"""Smoke-test the monitor → service → runtime → solver pipeline.

Starts ``python -m repro.cli serve --sessions --trace-file`` as a real
subprocess on a free port, then runs the streaming monitor in this
process against it: a ``telemetry_spoof`` scenario on ieee14 whose
``a = H c`` injection is invisible to the chi-square test but moves the
estimated state.  Asserts the full incident path worked:

1. **detection + countermeasure** — the run raises at least one
   ``state_drift`` incident whose re-verification (executed by the
   service) confirms a feasible attack and attaches a synthesized
   countermeasure;
2. **publication** — the incident is in the local JSONL sink and
   queryable from the service via ``GET /v1/incidents``;
3. **one trace, four layers** — the incident's trace id resolves, in
   the shared span sink, to monitor spans (``monitor.run`` →
   ``monitor.reverify``) *and* server-side spans (``http.request`` →
   ``job`` → ``runtime.task`` → ``verify.solve``): the monitor's probes
   and the solver work they caused share a single trace across the
   process boundary;
4. **warm sessions** — ``/statsz`` shows the serviced probes reused
   warm verification sessions.

Used by CI (the "monitor smoke" step) and as an example::

    PYTHONPATH=src python examples/monitor_smoke.py
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile

from repro.grid.cases import ieee14
from repro.monitor import (
    IncidentSink,
    MonitorConfig,
    MonitorEngine,
    resolve_scenario,
)
from repro.obs.trace import configure_tracing
from repro.service.client import ServiceClient

TICKS = 80
SEED = 7
MONITOR_SPANS = {"monitor.run", "monitor.reverify"}
SERVICE_SPANS = {"http.request", "job", "runtime.task"}
# the solver layer: warm-session probes on the sessions path, a cold
# encode+solve otherwise
SOLVER_SPANS = {"session.probe", "verify.solve"}


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def main() -> int:
    port = free_port()
    workdir = tempfile.mkdtemp(prefix="repro-monitor-")
    span_sink = os.path.join(workdir, "spans.jsonl")
    incident_sink = os.path.join(workdir, "incidents.jsonl")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = "src" if not existing else "src" + os.pathsep + existing
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(port),
            "--batch-window",
            "0.02",
            "--sessions",
            "--trace-file",
            span_sink,
        ],
        env=env,
    )
    try:
        client = ServiceClient(port=port)
        client.wait_until_ready(timeout=30.0)
        print(f"server up on port {port}, span sink {span_sink}")

        # the monitor process appends to the same span sink; both sides
        # of every re-verification then land in one JSONL file
        configure_tracing(enabled=True, jsonl_path=span_sink)

        grid = ieee14()
        scenario = resolve_scenario("telemetry_spoof", grid, ticks=TICKS)
        engine = MonitorEngine(
            grid,
            scenario,
            MonitorConfig(ticks=TICKS, seed=SEED),
            client=client,
            sink=IncidentSink(incident_sink),
        )
        report = engine.run()
        print(
            f"monitored ieee14/telemetry_spoof: {report.ticks} ticks, "
            f"digest {report.stream_digest[:16]}, "
            f"{len(report.incidents)} incident(s)"
        )

        # 1: a state-drift incident with a confirmed attack + countermeasure
        confirmed = [
            incident
            for incident in report.incidents
            if incident.kind == "state_drift"
            and incident.verification is not None
            and incident.verification["outcome"] == "sat"
            and incident.countermeasure is not None
        ]
        assert confirmed, [i.signature() for i in report.incidents]
        incident = confirmed[0]
        secured = incident.countermeasure["secured_buses"]
        assert secured, incident.countermeasure
        print(
            f"incident {incident.id}: severity={incident.severity} "
            f"min_cost={incident.verification['min_cost']} "
            f"countermeasure=secure buses {secured}"
        )

        # 2: published locally and to the service
        with open(incident_sink) as fh:
            sunk = [json.loads(line) for line in fh if line.strip()]
        assert any(entry["id"] == incident.id for entry in sunk), sunk
        served = client.incidents(kind="state_drift")
        assert served["count"] >= 1, served
        assert any(i["id"] == incident.id for i in served["incidents"]), served
        print(f"incident published: sink={len(sunk)} service={served['count']}")

        # 3: monitor and service spans share the incident's trace id
        assert incident.trace_id, incident
        with open(span_sink) as fh:
            spans = [json.loads(line) for line in fh if line.strip()]
        names = {
            span["name"] for span in spans if span["trace_id"] == incident.trace_id
        }
        assert MONITOR_SPANS <= names, f"monitor side incomplete: {sorted(names)}"
        assert SERVICE_SPANS <= names, f"service side incomplete: {sorted(names)}"
        assert SOLVER_SPANS & names, f"no solver span in trace: {sorted(names)}"
        print(
            f"trace {incident.trace_id}: {len(names)} span kinds across "
            "monitor -> service -> runtime -> solver"
        )

        # 4: the serviced probes ran on warm verification sessions
        sessions = client.stats()["sessions"]
        assert sessions["opened"] >= 1, sessions
        assert sessions["reused"] >= 1, sessions
        print(
            f"warm sessions: opened={sessions['opened']} "
            f"reused={sessions['reused']} probes={sessions['probes']}"
        )

        server.send_signal(signal.SIGTERM)
        code = server.wait(timeout=30.0)
        assert code == 0, f"server exited {code}"
        print("monitor smoke OK")
        return 0
    finally:
        configure_tracing(enabled=False)
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10.0)


if __name__ == "__main__":
    sys.exit(main())
