#!/usr/bin/env python3
"""Security architecture synthesis (paper Section IV).

Runs Algorithm 1 on the three Section IV-E scenarios of increasing
attacker power, verifies each synthesized architecture, enumerates the
alternative minimal architectures the paper mentions, and compares the
result against the worst-case-model baselines from the literature
(Bobba et al. basic-measurement protection; Kim & Poor greedy).

Run:  python examples/countermeasure_synthesis.py
"""

from repro.core.casestudy import synthesis_scenario
from repro.core.report import format_synthesis
from repro.core.synthesis import (
    SynthesisSettings,
    enumerate_architectures,
    synthesize_architecture,
)
from repro.core.verification import verify_attack
from repro.defense import bobba_protection_set, greedy_bus_protection, kim_poor_greedy

SCENARIO_NOTES = {
    1: "limited knowledge (lines 3/17 unknown), at most 12 injections",
    2: "complete knowledge, unlimited injections",
    3: "scenario 2 + topology poisoning of non-core lines 5/13",
}


def main() -> None:
    for number in (1, 2, 3):
        spec = synthesis_scenario(number)
        print(f"\n=== Scenario {number}: {SCENARIO_NOTES[number]} ===")

        # find the smallest budget with a feasible architecture
        for budget in range(1, spec.grid.num_buses):
            settings = SynthesisSettings(max_secured_buses=budget)
            result = synthesize_architecture(spec, settings)
            if result.architecture is not None:
                break
            print(f"  budget {budget}: infeasible ({result.iterations} iterations)")
        print(f"  budget {budget}: " + format_synthesis(result, spec).replace("\n", "\n  "))

        # the architecture really works: the attack model must be unsat
        secured = spec.with_secured_buses(result.architecture)
        check = verify_attack(secured)
        print(f"  re-verification with architecture applied: {check.outcome.value}")

        # alternative minimal architectures (paper: "there can be
        # different sets of buses, which also can secure the system")
        alternatives = enumerate_architectures(
            spec, SynthesisSettings(max_secured_buses=budget), limit=5
        )
        print(f"  minimal architectures within budget {budget}: {alternatives}")

    # --- worst-case baselines for comparison ----------------------------
    spec = synthesis_scenario(2)
    plan = spec.plan
    print("\n=== Worst-case-model baselines (complete knowledge) ===")
    bobba = bobba_protection_set(plan)
    print(f"  Bobba et al. basic measurement set ({len(bobba)} meters): {bobba}")
    kim = kim_poor_greedy(plan)
    print(f"  Kim & Poor greedy measurement set ({len(kim)} meters): {kim}")
    greedy = greedy_bus_protection(plan)
    print(f"  greedy bus protection ({len(greedy)} buses): {greedy}")
    print(
        "  -> the formal synthesis tailors the bus set to the declared "
        "attack model and budget instead of the worst case"
    )


if __name__ == "__main__":
    main()
