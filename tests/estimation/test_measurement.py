"""Tests for the measurement model: numbering, residency, H construction."""

import numpy as np
import pytest

from repro.estimation.measurement import MeasurementPlan, build_h, build_measurements
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow
from repro.grid.model import Grid, Line


@pytest.fixture
def grid():
    return ieee14()


@pytest.fixture
def plan(grid):
    return MeasurementPlan(grid)


class TestNumbering:
    """The paper's numbering: i / l+i / 2l+j (validated against the
    Section III-I case study's bus-residency data)."""

    def test_potential_count(self, plan):
        assert plan.num_potential == 54  # 2*20 + 14, as in the paper

    def test_forward_backward_bus_indices(self, plan):
        assert plan.forward_index(8) == 8
        assert plan.backward_index(8) == 28
        assert plan.bus_index(6) == 46

    def test_classify_roundtrip(self, plan):
        assert plan.classify(8) == ("forward", 8)
        assert plan.classify(28) == ("backward", 8)
        assert plan.classify(46) == ("bus", 6)
        with pytest.raises(ValueError):
            plan.classify(55)

    def test_residency_matches_paper_case_study(self, plan):
        # Objective 1's published measurement set resides exactly on
        # buses {4, 7, 9, 10, 11, 13, 14}
        measurements = [8, 9, 16, 18, 20, 28, 29, 36, 38, 40, 44, 47, 50, 51, 53, 54]
        buses = {plan.residence_bus(m) for m in measurements}
        assert buses == {4, 7, 9, 10, 11, 13, 14}

    def test_measurements_at_bus(self, plan):
        at6 = plan.measurements_at_bus(6)
        # bus 6: injection 46; lines 10 (to-bus: backward 30),
        # 11/12/13 (from-bus: forward 11, 12, 13)
        assert at6 == [11, 12, 13, 30, 46]

    def test_describe(self, plan):
        assert "line 8" in plan.describe(8)
        assert "bus 6" in plan.describe(46)


class TestPlanValidation:
    def test_default_takes_everything(self, plan):
        assert plan.taken == set(range(1, 55))

    def test_out_of_range_rejected(self, grid):
        with pytest.raises(ValueError, match="out-of-range"):
            MeasurementPlan(grid, taken={1, 999})
        with pytest.raises(ValueError, match="out-of-range"):
            MeasurementPlan(grid, secured={0})

    def test_status_predicates(self, grid):
        plan = MeasurementPlan(grid, secured={1}, inaccessible={2})
        assert plan.is_secured(1) and not plan.is_secured(2)
        assert not plan.is_accessible(2) and plan.is_accessible(3)

    def test_with_secured_buses(self, plan):
        secured = plan.with_secured_buses([6])
        assert set(secured.secured) >= {11, 12, 13, 30, 46}
        assert plan.secured == set()  # original untouched

    def test_with_secured_measurements(self, plan):
        secured = plan.with_secured_measurements([7, 9])
        assert secured.secured == {7, 9}


class TestBuildH:
    def test_shape(self, grid, plan):
        h = build_h(grid, 1, plan.taken_in_order())
        assert h.shape == (54, 13)

    def test_forward_row_structure(self, grid):
        h = build_h(grid, 1, taken=[8])  # line 8: 4 -> 7, admittance 4.78
        row = h[0]
        # columns: buses 2..14 -> bus 4 is col 2, bus 7 is col 5
        assert row[2] == pytest.approx(4.78, abs=0.005)
        assert row[5] == pytest.approx(-4.78, abs=0.005)
        assert np.count_nonzero(row) == 2

    def test_backward_row_is_negated_forward(self, grid):
        h = build_h(grid, 1, taken=[8, 28])
        assert np.allclose(h[0], -h[1])

    def test_reference_column_absent(self, grid):
        # line 1 is 1-2; with bus 1 as reference only bus 2's column set
        h = build_h(grid, 1, taken=[1])
        assert np.count_nonzero(h[0]) == 1

    def test_bus_row_is_flow_balance(self, grid, plan):
        h = build_h(grid, 1, plan.taken_in_order())
        # bus row == sum of incoming forward rows minus outgoing
        for j in grid.buses:
            expected = np.zeros(13)
            for line in grid.lines_at(j):
                sign = 1.0 if line.to_bus == j else -1.0
                expected += sign * h[line.index - 1]
            assert np.allclose(h[2 * 20 + j - 1], expected)

    def test_unmapped_line_rows_zero(self, grid):
        h = build_h(grid, 1, taken=[13, 33], mapped_lines=set(range(1, 21)) - {13})
        assert np.allclose(h, 0.0)

    def test_unmapped_line_leaves_bus_rows(self, grid):
        full = build_h(grid, 1, taken=[46])
        poisoned = build_h(
            grid, 1, taken=[46], mapped_lines=set(range(1, 21)) - {13}
        )
        assert not np.allclose(full, poisoned)


class TestBuildMeasurements:
    def test_values_match_flow(self, grid, plan):
        flow = solve_dc_flow(grid, nominal_injections(grid))
        z = build_measurements(plan, flow)
        assert z[0] == pytest.approx(flow.flow(1))
        assert z[20] == pytest.approx(-flow.flow(1))
        assert z[40] == pytest.approx(flow.consumption(1))

    def test_noise_reproducible(self, grid, plan):
        flow = solve_dc_flow(grid, nominal_injections(grid))
        z1 = build_measurements(plan, flow, noise_std=0.01, seed=5)
        z2 = build_measurements(plan, flow, noise_std=0.01, seed=5)
        assert np.array_equal(z1, z2)

    def test_subset_ordering(self, grid):
        flow = solve_dc_flow(grid, nominal_injections(grid))
        plan = MeasurementPlan(grid, taken={3, 41, 7})
        z = build_measurements(plan, flow)
        assert z.shape == (3,)
        assert z[0] == pytest.approx(flow.flow(3))
        assert z[2] == pytest.approx(flow.consumption(1))
