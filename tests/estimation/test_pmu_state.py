"""Tests for hybrid SCADA+PMU estimation."""

import numpy as np
import pytest

from repro.attacks.liu import perfect_knowledge_attack
from repro.estimation.baddata import chi_square_test
from repro.estimation.measurement import MeasurementPlan
from repro.estimation.pmu_state import (
    build_h_with_pmus,
    build_measurements_with_pmus,
    hybrid_weights,
    minimal_pmu_count_for_immunity,
    pmu_attack_space_dimension,
)
from repro.estimation.wls import wls_estimate
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow

SCADA_STD = 0.01
PMU_STD = 0.001


@pytest.fixture
def setting():
    grid = ieee14()
    plan = MeasurementPlan(grid)
    flow = solve_dc_flow(grid, nominal_injections(grid))
    return grid, plan, flow


class TestHybridEstimation:
    def test_h_shape(self, setting):
        grid, plan, flow = setting
        h = build_h_with_pmus(grid, [4, 9], taken=plan.taken_in_order())
        assert h.shape == (56, 13)
        # PMU rows are unit vectors
        assert np.count_nonzero(h[54]) == 1
        assert h[54].sum() == 1.0

    def test_reference_pmu_row_is_zero(self, setting):
        grid, plan, flow = setting
        h = build_h_with_pmus(grid, [1], taken=plan.taken_in_order())
        assert np.allclose(h[-1], 0.0)

    def test_clean_estimation(self, setting):
        grid, plan, flow = setting
        pmus = [4, 9, 13]
        h = build_h_with_pmus(grid, pmus, taken=plan.taken_in_order())
        z = build_measurements_with_pmus(plan, flow, pmus)
        est = wls_estimate(h, z)
        assert est.residual_norm < 1e-9

    def test_pmu_accuracy_improves_estimate(self, setting):
        grid, plan, flow = setting
        pmus = list(range(2, 15))
        h = build_h_with_pmus(grid, pmus, taken=plan.taken_in_order())
        z = build_measurements_with_pmus(
            plan, flow, pmus, noise_std=SCADA_STD, pmu_noise_std=PMU_STD, seed=2
        )
        w = hybrid_weights(plan, len(pmus), SCADA_STD, PMU_STD)
        hybrid = wls_estimate(h, z, w)
        scada_only = wls_estimate(h[:54], z[:54], w[:54])
        truth = np.delete(flow.theta, 0)
        assert np.linalg.norm(hybrid.x_hat - truth) < np.linalg.norm(
            scada_only.x_hat - truth
        )


class TestPmuDefense:
    def test_attack_space_shrinks_per_pmu(self, setting):
        grid, plan, flow = setting
        dims = [
            pmu_attack_space_dimension(plan, list(range(2, 2 + k)))
            for k in range(0, 5)
        ]
        assert dims[0] == 13  # nothing protected
        for before, after in zip(dims, dims[1:]):
            assert after == before - 1  # each angle row pins one state

    def test_full_pmu_coverage_immunizes(self, setting):
        grid, plan, flow = setting
        assert pmu_attack_space_dimension(plan, range(2, 15)) == 0

    def test_scada_protection_counts_too(self, setting):
        grid, plan, flow = setting
        from repro.estimation.observability import basic_measurement_set

        basic = basic_measurement_set(plan)
        protected = plan.with_secured_measurements(basic)
        assert pmu_attack_space_dimension(protected, []) == 0

    def test_minimal_count_matches_dimension(self, setting):
        grid, plan, flow = setting
        count, buses = minimal_pmu_count_for_immunity(plan)
        assert count == 13  # no SCADA protection: every state needs pinning
        assert len(buses) == count

    def test_minimal_count_with_partial_scada_protection(self, setting):
        grid, plan, flow = setting
        protected = plan.with_secured_buses([2, 6])
        count, buses = minimal_pmu_count_for_immunity(protected)
        open_dim = pmu_attack_space_dimension(protected, [])
        assert count == open_dim
        assert pmu_attack_space_dimension(protected, buses) == 0

    def test_attack_on_pmu_pinned_state_is_detected(self, setting):
        grid, plan, flow = setting
        pmus = [10]
        h = build_h_with_pmus(grid, pmus, taken=plan.taken_in_order())
        z = build_measurements_with_pmus(
            plan, flow, pmus, noise_std=SCADA_STD, pmu_noise_std=PMU_STD, seed=3
        )
        w = hybrid_weights(plan, len(pmus), SCADA_STD, PMU_STD)
        attack = perfect_knowledge_attack(plan, {10: 0.1})
        z_attacked = z.copy()
        z_attacked[:54] = attack.apply_to(z[:54], plan)
        # the secured PMU row is NOT altered: the attack is inconsistent
        est = wls_estimate(h, z_attacked, w)
        assert chi_square_test(est).bad_data_detected

    def test_attack_away_from_pmus_still_stealthy(self, setting):
        grid, plan, flow = setting
        pmus = [10]
        h = build_h_with_pmus(grid, pmus, taken=plan.taken_in_order())
        z = build_measurements_with_pmus(
            plan, flow, pmus, noise_std=SCADA_STD, pmu_noise_std=PMU_STD, seed=3
        )
        w = hybrid_weights(plan, len(pmus), SCADA_STD, PMU_STD)
        # bus 8 is electrically far from the PMU at 10: c_10 = 0 holds
        attack = perfect_knowledge_attack(plan, {8: 0.1})
        z_attacked = z.copy()
        z_attacked[:54] = attack.apply_to(z[:54], plan)
        est = wls_estimate(h, z_attacked, w)
        assert not chi_square_test(est).bad_data_detected
