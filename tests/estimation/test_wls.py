"""Tests for the WLS estimator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.estimation.measurement import MeasurementPlan, build_h, build_measurements
from repro.estimation.wls import (
    StateEstimate,
    UnobservableSystemError,
    gain_matrix,
    hat_matrix,
    wls_estimate,
)
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow


def setup_system(noise=0.0, seed=0):
    grid = ieee14()
    plan = MeasurementPlan(grid)
    flow = solve_dc_flow(grid, nominal_injections(grid))
    z = build_measurements(plan, flow, noise_std=noise, seed=seed)
    h = build_h(grid, 1, plan.taken_in_order())
    return grid, plan, flow, z, h


class TestCleanEstimation:
    def test_recovers_true_states(self):
        grid, plan, flow, z, h = setup_system()
        est = wls_estimate(h, z)
        assert np.allclose(est.x_hat, np.delete(flow.theta, 0), atol=1e-10)

    def test_zero_residual(self):
        *_, z, h = setup_system()
        est = wls_estimate(h, z)
        assert est.residual_norm < 1e-10
        assert est.objective < 1e-20

    def test_dof(self):
        *_, z, h = setup_system()
        est = wls_estimate(h, z)
        assert est.dof == 54 - 13


class TestNoisyEstimation:
    def test_objective_near_dof(self):
        # E[r' W r] = m - n when W matches the noise
        objectives = []
        for seed in range(10):
            *_, z, h = setup_system(noise=0.01, seed=seed)
            w = [1 / 0.01**2] * len(z)
            objectives.append(wls_estimate(h, z, w).objective)
        assert 20 < np.mean(objectives) < 70  # dof = 41

    def test_weights_shift_estimate(self):
        *_, z, h = setup_system(noise=0.05, seed=1)
        w1 = np.ones(len(z))
        w2 = np.ones(len(z))
        w2[:20] = 100.0
        e1 = wls_estimate(h, z, w1)
        e2 = wls_estimate(h, z, w2)
        assert not np.allclose(e1.x_hat, e2.x_hat)


class TestValidation:
    def test_unobservable_raises(self):
        grid = ieee14()
        h = build_h(grid, 1, taken=[1, 2, 21])  # far too few rows
        with pytest.raises(UnobservableSystemError):
            wls_estimate(h, np.zeros(3))

    def test_wrong_z_length(self):
        *_, z, h = setup_system()
        with pytest.raises(ValueError, match="length"):
            wls_estimate(h, z[:-1])

    def test_wrong_weights_length(self):
        *_, z, h = setup_system()
        with pytest.raises(ValueError, match="length"):
            wls_estimate(h, z, weights=[1.0])

    def test_nonpositive_weights(self):
        *_, z, h = setup_system()
        with pytest.raises(ValueError, match="positive"):
            wls_estimate(h, z, weights=[0.0] * len(z))


class TestMatrices:
    def test_gain_matrix_is_htwh(self):
        *_, z, h = setup_system()
        w = np.full(len(z), 2.0)
        g = gain_matrix(h, w)
        assert np.allclose(g, h.T @ np.diag(w) @ h)

    def test_hat_matrix_is_projection(self):
        *_, z, h = setup_system()
        k = hat_matrix(h)
        assert np.allclose(k @ k, k, atol=1e-8)  # idempotent
        assert np.allclose(k @ h, h, atol=1e-8)  # reproduces range(H)


class TestStealthInvariance:
    """The core UFDI identity: a = Hc leaves the residual unchanged."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_hypothesis_residual_invariant(self, seed):
        *_, z, h = setup_system(noise=0.01, seed=1)
        rng = np.random.default_rng(seed)
        c = rng.normal(size=h.shape[1])
        base = wls_estimate(h, z)
        attacked = wls_estimate(h, z + h @ c)
        assert attacked.objective == pytest.approx(base.objective, abs=1e-6)
        assert np.allclose(attacked.x_hat - base.x_hat, c, atol=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_hypothesis_non_range_injection_changes_residual(self, seed):
        *_, z, h = setup_system(noise=0.01, seed=1)
        rng = np.random.default_rng(seed)
        a = rng.normal(size=len(z))
        # remove the component inside range(H): what's left must inflate
        k = hat_matrix(h)
        a_perp = a - k @ a
        if np.linalg.norm(a_perp) < 1e-6:
            return
        base = wls_estimate(h, z)
        attacked = wls_estimate(h, z + a_perp)
        assert attacked.objective > base.objective
