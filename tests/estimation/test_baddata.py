"""Tests for bad-data detection and identification."""

import numpy as np
import pytest

from repro.estimation.baddata import (
    chi_square_test,
    chi_square_threshold,
    identify_bad_data,
    largest_normalized_residuals,
    residual_covariance,
)
from repro.estimation.measurement import MeasurementPlan, build_h, build_measurements
from repro.estimation.wls import wls_estimate
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow

NOISE = 0.01


def setup_system(seed=0):
    grid = ieee14()
    plan = MeasurementPlan(grid)
    flow = solve_dc_flow(grid, nominal_injections(grid))
    z = build_measurements(plan, flow, noise_std=NOISE, seed=seed)
    h = build_h(grid, 1, plan.taken_in_order())
    w = np.full(len(z), 1 / NOISE**2)
    return h, z, w


class TestThreshold:
    def test_monotone_in_dof(self):
        assert chi_square_threshold(10) < chi_square_threshold(20)

    def test_monotone_in_alpha(self):
        assert chi_square_threshold(10, alpha=0.05) < chi_square_threshold(10, alpha=0.01)

    def test_nonpositive_dof_rejected(self):
        with pytest.raises(ValueError):
            chi_square_threshold(0)


class TestChiSquareTest:
    def test_clean_data_passes(self):
        h, z, w = setup_system()
        result = chi_square_test(wls_estimate(h, z, w))
        assert not result.bad_data_detected

    def test_gross_error_detected(self):
        h, z, w = setup_system()
        z = z.copy()
        z[10] += 1.0  # 100 sigma
        result = chi_square_test(wls_estimate(h, z, w))
        assert result.bad_data_detected

    def test_false_positive_rate_bounded(self):
        detections = 0
        for seed in range(30):
            h, z, w = setup_system(seed=seed)
            if chi_square_test(wls_estimate(h, z, w), alpha=0.01).bad_data_detected:
                detections += 1
        assert detections <= 3  # ~1% expected


class TestLnrIdentification:
    def test_identifies_the_bad_measurement(self):
        h, z, w = setup_system()
        z = z.copy()
        z[17] += 0.5
        ranked = largest_normalized_residuals(h, z, w, top=3)
        assert ranked[0][0] == 17

    def test_clean_data_has_small_normalized_residuals(self):
        h, z, w = setup_system()
        ranked = largest_normalized_residuals(h, z, w, top=1)
        assert ranked[0][1] < 4.0

    def test_identify_and_purge(self):
        h, z, w = setup_system()
        z = z.copy()
        z[5] += 1.0
        z[30] -= 0.8
        removed, final = identify_bad_data(h, z, w)
        assert set(removed) == {5, 30}
        assert not chi_square_test(final).bad_data_detected

    def test_identify_nothing_on_clean_data(self):
        h, z, w = setup_system()
        removed, final = identify_bad_data(h, z, w)
        assert removed == []

    def test_max_removals_respected(self):
        h, z, w = setup_system()
        z = z.copy()
        z[:12] += 5.0
        removed, __ = identify_bad_data(h, z, w, max_removals=3)
        assert len(removed) <= 3


class TestResidualCovariance:
    def test_shape_and_symmetry(self):
        h, z, w = setup_system()
        omega = residual_covariance(h, w)
        assert omega.shape == (len(z), len(z))
        assert np.allclose(omega, omega.T, atol=1e-10)

    def test_diagonal_nonnegative(self):
        h, z, w = setup_system()
        omega = residual_covariance(h, w)
        assert np.all(np.diag(omega) >= -1e-10)

    def test_critical_measurements_skipped_in_lnr(self):
        # a basic (minimal full-rank) set: every measurement is critical,
        # so every residual variance is structurally zero and LNR has
        # nothing to rank
        from repro.estimation.observability import basic_measurement_set

        grid = ieee14()
        full = MeasurementPlan(grid)
        basic = basic_measurement_set(full)
        plan = MeasurementPlan(grid, taken=set(basic))
        flow = solve_dc_flow(grid, nominal_injections(grid))
        z = build_measurements(plan, flow, noise_std=NOISE, seed=1)
        h = build_h(grid, 1, plan.taken_in_order())
        ranked = largest_normalized_residuals(h, z, top=20)
        assert ranked == []


class TestUfdiEvasion:
    """The attack the paper studies: a = Hc sails through both tests."""

    def test_stealthy_attack_evades_chi_square(self):
        h, z, w = setup_system()
        c = np.zeros(13)
        c[7] = 0.2
        base = chi_square_test(wls_estimate(h, z, w))
        attacked = chi_square_test(wls_estimate(h, z + h @ c, w))
        assert not attacked.bad_data_detected
        assert attacked.objective == pytest.approx(base.objective, abs=1e-6)

    def test_stealthy_attack_evades_lnr(self):
        h, z, w = setup_system()
        c = np.zeros(13)
        c[7] = 0.2
        removed, __ = identify_bad_data(h, z + h @ c, w)
        assert removed == []
