"""Tests for observability analysis and basic measurement sets."""

import numpy as np
import pytest

from repro.estimation.measurement import MeasurementPlan, build_h
from repro.estimation.observability import (
    analyze_observability,
    basic_measurement_set,
    critical_measurements,
)
from repro.grid.cases import ieee14, ieee30


class TestAnalyze:
    def test_full_plan_observable(self):
        plan = MeasurementPlan(ieee14())
        report = analyze_observability(plan)
        assert report.observable
        assert report.rank == 13
        assert report.redundancy == pytest.approx(54 / 13)

    def test_injections_only_observable(self):
        grid = ieee14()
        plan = MeasurementPlan(grid, taken=set(range(41, 55)))
        assert analyze_observability(plan).observable

    def test_too_few_measurements_unobservable(self):
        grid = ieee14()
        plan = MeasurementPlan(grid, taken={1, 2, 3})
        report = analyze_observability(plan)
        assert not report.observable
        assert report.rank < 13

    def test_flow_island_unobservable(self):
        # flows of lines 1 and 2 only see buses 1, 2, 5
        grid = ieee14()
        plan = MeasurementPlan(grid, taken={1, 2, 21, 22})
        assert not analyze_observability(plan).observable


class TestBasicSet:
    def test_size_is_num_states(self):
        plan = MeasurementPlan(ieee14())
        basic = basic_measurement_set(plan)
        assert len(basic) == 13

    def test_is_full_rank(self):
        grid = ieee14()
        plan = MeasurementPlan(grid)
        basic = basic_measurement_set(plan)
        h = build_h(grid, 1, taken=basic)
        assert np.linalg.matrix_rank(h) == 13

    def test_prefer_biases_selection(self):
        plan = MeasurementPlan(ieee14())
        preferred = basic_measurement_set(plan, prefer=[41, 42, 43, 44])
        assert {41, 42, 43, 44} <= set(preferred)

    def test_respects_taken_subset(self):
        grid = ieee14()
        plan = MeasurementPlan(grid, taken=set(range(41, 55)))
        basic = basic_measurement_set(plan)
        assert set(basic) <= set(range(41, 55))

    def test_ieee30(self):
        plan = MeasurementPlan(ieee30())
        assert len(basic_measurement_set(plan)) == 29


class TestCritical:
    def test_redundant_plan_has_none(self):
        plan = MeasurementPlan(ieee14())
        assert critical_measurements(plan) == []

    def test_minimal_plan_all_critical(self):
        grid = ieee14()
        full = MeasurementPlan(grid)
        basic = basic_measurement_set(full)
        plan = MeasurementPlan(grid, taken=set(basic))
        assert critical_measurements(plan) == sorted(basic)

    def test_unobservable_plan_rejected(self):
        grid = ieee14()
        plan = MeasurementPlan(grid, taken={1, 2})
        with pytest.raises(ValueError, match="not observable"):
            critical_measurements(plan)

    def test_partially_redundant(self):
        grid = ieee14()
        full = MeasurementPlan(grid)
        basic = basic_measurement_set(full)
        extra = next(m for m in range(1, 55) if m not in basic)
        plan = MeasurementPlan(grid, taken=set(basic) | {extra})
        critical = critical_measurements(plan)
        # adding one redundant measurement de-criticalizes at most a few
        assert len(critical) >= len(basic) - 3
        assert set(critical) <= set(basic) | {extra}
