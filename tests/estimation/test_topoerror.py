"""Tests for topology-error detection."""

import numpy as np
import pytest

from repro.attacks.topology_attack import coordinated_topology_attack
from repro.estimation.measurement import MeasurementPlan, build_measurements
from repro.estimation.topoerror import check_topology
from repro.grid.cases import ieee14
from repro.grid.dcflow import solve_dc_flow
from repro.grid.topology import BreakerStatus, TopologyProcessor

NOISE = 0.004


def setup_case():
    grid = ieee14()
    plan = MeasurementPlan(grid)
    injections = np.zeros(grid.num_buses)
    injections[0] = 1.5
    injections[12] = -1.0
    injections[13] = -0.5
    flow = solve_dc_flow(grid, injections)
    z = build_measurements(plan, flow, noise_std=NOISE, seed=2)
    weights = np.full(len(z), 1 / NOISE**2)
    processor = TopologyProcessor(grid)
    return grid, plan, flow, z, weights, processor


class TestHonestTopology:
    def test_true_topology_passes(self):
        grid, plan, flow, z, w, proc = setup_case()
        result = check_topology(plan, proc.true_topology(), z, w)
        assert not result.topology_suspected


class TestUncoordinatedErrors:
    def test_exclusion_error_detected(self):
        grid, plan, flow, z, w, proc = setup_case()
        poisoned = proc.apply_poisoning(exclusions=[13])
        result = check_topology(plan, poisoned, z, w)
        assert result.topology_suspected

    def test_heavily_loaded_line_error_is_glaring(self):
        grid, plan, flow, z, w, proc = setup_case()
        honest = check_topology(plan, proc.true_topology(), z, w)
        poisoned = check_topology(plan, proc.apply_poisoning(exclusions=[1]), z, w)
        assert poisoned.estimate.objective > 100 * honest.estimate.objective


class TestCoordinatedAttack:
    def test_coordinated_exclusion_evades(self):
        grid, plan, flow, z, w, proc = setup_case()
        poisoned = proc.apply_poisoning(exclusions=[13])
        attack = coordinated_topology_attack(plan, flow, poisoned, {12: 0.05})
        result = check_topology(plan, poisoned, attack.apply_to(z, plan), w)
        assert not result.topology_suspected

    def test_coordinated_inclusion_evades(self):
        grid = ieee14()
        plan = MeasurementPlan(grid)
        # line 5 open in reality
        statuses = [
            BreakerStatus(line.index, closed=line.index != 5)
            for line in grid.lines
        ]
        proc = TopologyProcessor(grid, statuses)
        injections = np.zeros(grid.num_buses)
        injections[0] = 1.0
        injections[8] = -1.0
        flow = solve_dc_flow(
            grid, injections, line_indices=[i for i in range(1, 21) if i != 5]
        )
        z = build_measurements(plan, flow, noise_std=NOISE, seed=3)
        w = np.full(len(z), 1 / NOISE**2)
        poisoned = proc.apply_poisoning(inclusions=[5])
        attack = coordinated_topology_attack(
            plan,
            flow,
            poisoned,
            {3: 0.02},
            true_mapped_lines=proc.true_topology().mapped_lines,
        )
        result = check_topology(plan, poisoned, attack.apply_to(z, plan), w)
        assert not result.topology_suspected
        assert 5 in attack.included_lines
