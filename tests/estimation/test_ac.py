"""Tests for the AC power flow / AC state estimation extension."""

import numpy as np
import pytest
from scipy import stats

from repro.attacks.liu import perfect_knowledge_attack
from repro.estimation.ac import (
    AcConvergenceError,
    AcSystem,
    dc_attack_residual_inflation,
)
from repro.estimation.measurement import MeasurementPlan
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow


@pytest.fixture(scope="module")
def system():
    return AcSystem(ieee14())


@pytest.fixture(scope="module")
def operating_point(system):
    inj = nominal_injections(system.grid, magnitude=0.5)
    return system.solve_power_flow(inj, 0.2 * inj)


class TestPowerFlow:
    def test_converges(self, operating_point):
        assert operating_point.iterations <= 10

    def test_voltages_near_nominal(self, operating_point):
        assert np.all(operating_point.v > 0.9)
        assert np.all(operating_point.v < 1.1)

    def test_injections_match_specification(self, system, operating_point):
        inj = nominal_injections(system.grid, magnitude=0.5)
        # all non-slack buses hit their specified P
        assert np.allclose(operating_point.p[1:], inj[1:], atol=1e-8)

    def test_slack_absorbs_losses(self, system, operating_point):
        # with resistance, total generation exceeds total load
        assert operating_point.p.sum() > 1e-6

    def test_small_angles_match_dc(self, system):
        # at light loading the AC angles approach the DC solution
        inj = nominal_injections(system.grid, magnitude=0.05)
        ac = system.solve_power_flow(inj, np.zeros_like(inj))
        dc = solve_dc_flow(system.grid, inj)
        assert np.allclose(ac.theta, dc.theta, atol=5e-3)

    def test_flow_balance(self, system, operating_point):
        p, q = system.injections(operating_point.v, operating_point.theta)
        for j in system.grid.buses:
            outgoing = sum(
                system.line_flow(l.index, operating_point.v, operating_point.theta)[0]
                for l in system.grid.lines_from(j)
            )
            incoming_back = sum(
                system.line_flow(
                    l.index, operating_point.v, operating_point.theta, backward=True
                )[0]
                for l in system.grid.lines_to(j)
            )
            assert outgoing + incoming_back == pytest.approx(p[j - 1], abs=1e-8)


class TestStateEstimation:
    def test_perfect_measurements_zero_residual(self, system, operating_point):
        plan = MeasurementPlan(system.grid)
        z = system.measurement_vector(plan, operating_point.v, operating_point.theta)
        est = system.estimate_state(plan, z)
        assert est.objective < 1e-15
        assert np.allclose(est.theta, operating_point.theta, atol=1e-8)
        assert np.allclose(est.v, operating_point.v, atol=1e-8)

    def test_noisy_objective_near_dof(self, system, operating_point):
        plan = MeasurementPlan(system.grid)
        noise = 0.005
        rng = np.random.default_rng(1)
        z = system.measurement_vector(plan, operating_point.v, operating_point.theta)
        z = z + rng.normal(0, noise, size=z.shape)
        w = np.full(len(z), 1 / noise**2)
        est = system.estimate_state(plan, z, w)
        dof = len(z) - (13 + 14)
        assert 0.3 * dof < est.objective < 2.5 * dof

    def test_active_only_estimation(self, system, operating_point):
        plan = MeasurementPlan(system.grid)
        z = system.measurement_vector(
            plan, operating_point.v, operating_point.theta,
            include_reactive=False, include_voltage=True,
        )
        est = system.estimate_state(
            plan, z, include_reactive=False, include_voltage=True
        )
        assert est.objective < 1e-12


class TestDcAttackUnderAc:
    def test_small_attack_approximately_stealthy(self, system, operating_point):
        plan = MeasurementPlan(system.grid)
        attack = perfect_knowledge_attack(plan, {10: 0.02})
        clean, attacked = dc_attack_residual_inflation(
            system, plan, operating_point, attack
        )
        threshold = stats.chi2.ppf(0.99, 122 - 27)
        assert attacked < threshold  # evades at small magnitude

    def test_inflation_grows_with_magnitude(self, system, operating_point):
        plan = MeasurementPlan(system.grid)
        inflations = []
        for magnitude in (0.02, 0.1, 0.3):
            attack = perfect_knowledge_attack(plan, {10: magnitude})
            clean, attacked = dc_attack_residual_inflation(
                system, plan, operating_point, attack
            )
            inflations.append(attacked - clean)
        assert inflations[0] < inflations[1] < inflations[2]

    def test_large_attack_detected_under_ac(self, system, operating_point):
        # the DC approximation's limit: a big DC-perfect attack trips
        # the AC chi-square detector
        plan = MeasurementPlan(system.grid)
        attack = perfect_knowledge_attack(plan, {10: 0.2})
        __, attacked = dc_attack_residual_inflation(
            system, plan, operating_point, attack
        )
        threshold = stats.chi2.ppf(0.99, 122 - 27)
        assert attacked > threshold
