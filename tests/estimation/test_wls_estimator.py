"""The warm WLS path must be a pure speedup: same estimates, fewer
factorizations."""

import numpy as np
import pytest

from repro.estimation.measurement import MeasurementPlan, build_h
from repro.estimation.wls import (
    UnobservableSystemError,
    WlsEstimator,
    wls_estimate,
)
from repro.grid.cases import ieee14


@pytest.fixture()
def system():
    grid = ieee14()
    plan = MeasurementPlan(grid)
    h = build_h(grid, 1, taken=plan.taken_in_order())
    rng = np.random.default_rng(3)
    x_true = rng.normal(0.0, 0.1, size=h.shape[1])
    z = h @ x_true + rng.normal(0.0, 0.002, size=h.shape[0])
    return h, z


class TestWarmEqualsCold:
    def test_warm_estimates_are_identical_to_cold(self, system):
        """Regression contract of the cached-gain path: re-estimation on
        a cached factorization is bit-identical to the first call."""
        h, z = system
        estimator = WlsEstimator()
        cold = estimator.estimate(h, z, key="ieee14")
        warm = estimator.estimate(h, z, key="ieee14")
        np.testing.assert_array_equal(cold.x_hat, warm.x_hat)
        np.testing.assert_array_equal(cold.residual, warm.residual)
        assert cold.objective == warm.objective
        assert cold.residual_norm == warm.residual_norm
        assert estimator.stats["factorizations"] == 1
        assert estimator.stats["cache_hits"] == 1

    def test_matches_one_shot_wls(self, system):
        h, z = system
        estimator = WlsEstimator()
        weights = np.full(h.shape[0], 1.0 / 0.002**2)
        fast = estimator.estimate(h, z, weights)
        slow = wls_estimate(h, z, weights)
        np.testing.assert_allclose(fast.x_hat, slow.x_hat, atol=1e-9)
        np.testing.assert_allclose(fast.residual, slow.residual, atol=1e-9)
        assert fast.objective == pytest.approx(slow.objective, rel=1e-9)
        assert fast.dof == slow.dof

    def test_content_key_when_no_key_given(self, system):
        h, z = system
        estimator = WlsEstimator()
        estimator.estimate(h, z)
        estimator.estimate(h, z + 0.1)  # same H: cached
        assert estimator.stats["factorizations"] == 1
        assert estimator.stats["cache_hits"] == 1


class TestCacheMechanics:
    def test_topology_change_refactorizes_once(self):
        grid = ieee14()
        plan = MeasurementPlan(grid)
        full = tuple(range(1, grid.num_lines + 1))
        degraded = tuple(i for i in full if i != 5)
        estimator = WlsEstimator()
        for mapped in (full, full, degraded, degraded, full):
            h = build_h(
                grid, 1, taken=plan.taken_in_order(), mapped_lines=mapped
            )
            z = np.zeros(h.shape[0])
            estimator.estimate(h, z, key=mapped)
        snap = estimator.snapshot()
        assert snap["factorizations"] == 2
        assert snap["cache_hits"] == 3
        assert snap["estimates"] == 5
        assert snap["entries"] == 2

    def test_lru_eviction(self, system):
        h, z = system
        estimator = WlsEstimator(max_entries=2)
        for key in ("a", "b", "c"):
            estimator.estimate(h, z, key=key)
        assert estimator.stats["evictions"] == 1
        estimator.estimate(h, z, key="a")  # evicted: refactorizes
        assert estimator.stats["factorizations"] == 4

    def test_bad_weights_rejected(self, system):
        h, z = system
        estimator = WlsEstimator()
        with pytest.raises(ValueError):
            estimator.estimate(h, z, weights=np.zeros(h.shape[0]))

    def test_unobservable_system_raises(self):
        h = np.array([[1.0, 0.0], [2.0, 0.0]])
        estimator = WlsEstimator()
        with pytest.raises(UnobservableSystemError):
            estimator.estimate(h, np.zeros(2))
