"""Tests for graph-based observability analysis."""

import pytest

from repro.estimation.measurement import MeasurementPlan
from repro.estimation.network_observability import (
    topological_observability,
    unobservable_boundary_lines,
)
from repro.estimation.observability import analyze_observability
from repro.grid.cases import ieee14, ieee30
from repro.grid.model import Grid, Line


def path_grid(n=4):
    return Grid(n, [Line(i, i, i + 1, 2.0) for i in range(1, n)])


class TestFlowMeasurements:
    def test_full_flow_coverage_is_one_island(self):
        grid = path_grid(4)
        plan = MeasurementPlan(grid, taken={1, 2, 3})  # all forward flows
        result = topological_observability(plan)
        assert result.observable
        assert set(result.flow_merged_lines) == {1, 2, 3}

    def test_missing_flow_splits_islands(self):
        grid = path_grid(4)
        plan = MeasurementPlan(grid, taken={1, 3})  # line 2 unobserved
        result = topological_observability(plan)
        assert not result.observable
        assert len(result.islands) == 2
        assert frozenset({1, 2}) in result.islands
        assert frozenset({3, 4}) in result.islands

    def test_backward_flow_counts_too(self):
        grid = path_grid(3)
        plan = MeasurementPlan(grid, taken={1, 4})  # fwd line 1, bwd line 2
        assert topological_observability(plan).observable


class TestInjections:
    def test_injection_bridges_single_gap(self):
        grid = path_grid(3)
        # flow of line 1 taken; injection at bus 2 resolves line 2
        plan = MeasurementPlan(grid, taken={1, 6})  # 6 = bus 2 injection
        result = topological_observability(plan)
        assert result.observable
        assert result.injection_assignments.get(2) == 2

    def test_injections_only_chain(self):
        grid = path_grid(4)
        # injections at buses 1..3 resolve lines left to right
        plan = MeasurementPlan(grid, taken={7, 8, 9})
        assert topological_observability(plan).observable

    def test_isolated_bus_stays_island(self):
        grid = path_grid(3)
        plan = MeasurementPlan(grid, taken={1})  # only line 1 flow
        result = topological_observability(plan)
        assert frozenset({3}) in result.islands


class TestAgainstNumericalRank:
    @pytest.mark.parametrize("case_builder", [ieee14, ieee30])
    def test_full_plans_agree(self, case_builder):
        plan = MeasurementPlan(case_builder())
        assert topological_observability(plan).observable
        assert analyze_observability(plan).observable

    def test_topological_observable_implies_numerical(self):
        # forest construction is conservative: when it says observable,
        # the rank test must agree
        import random

        grid = ieee14()
        rng = random.Random(5)
        for _ in range(20):
            taken = {m for m in range(1, 55) if rng.random() < 0.5}
            if not taken:
                continue
            plan = MeasurementPlan(grid, taken=taken)
            topo = topological_observability(plan)
            if topo.observable:
                assert analyze_observability(plan).observable


class TestBoundaryLines:
    def test_boundary_lines_cross_islands(self):
        grid = path_grid(4)
        plan = MeasurementPlan(grid, taken={1, 3})
        assert unobservable_boundary_lines(plan) == [2]

    def test_observable_plan_has_no_boundary(self):
        plan = MeasurementPlan(ieee14())
        assert unobservable_boundary_lines(plan) == []

    def test_island_shift_attack_lives_on_boundary(self):
        # the states of one island can shift uniformly by altering only
        # boundary measurements — here none are taken, so no
        # measurement at all needs altering: verify with the formal model
        from repro.core.spec import AttackGoal, AttackSpec

        from repro.core.spec import ResourceLimits

        grid = path_grid(4)
        plan = MeasurementPlan(grid, taken={1, 3})
        spec = AttackSpec(
            grid=grid,
            plan=plan,
            goal=AttackGoal.states(4),
            limits=ResourceLimits(max_measurements=0),
        )
        from repro.core.verification import verify_attack

        result = verify_attack(spec)
        assert result.attack_exists
        assert result.attack.altered_measurements == []
        # the whole island {3, 4} shifted together
        assert set(result.attack.attacked_states) == {3, 4}
