"""Tests for PMU placement."""

import pytest

from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.verification import verify_attack
from repro.defense.pmu import pmu_defense_placement, pmu_observability_cover
from repro.grid.cases import ieee14
from repro.grid.model import Grid, Line


def path_grid(n):
    return Grid(n, [Line(i, i, i + 1, 2.0) for i in range(1, n)])


class TestObservabilityCover:
    def test_path_of_three_needs_one(self):
        cover = pmu_observability_cover(path_grid(3))
        assert cover == [2]

    def test_path_of_six_needs_two(self):
        cover = pmu_observability_cover(path_grid(6))
        assert len(cover) == 2

    def test_cover_is_dominating(self):
        grid = ieee14()
        cover = pmu_observability_cover(grid)
        covered = set(cover)
        for j in cover:
            covered.update(grid.neighbors(j))
        assert covered == set(grid.buses)

    def test_ieee14_known_minimum(self):
        # the minimum PMU dominating set of IEEE 14-bus has 4 buses
        assert len(pmu_observability_cover(ieee14())) == 4

    def test_budget_too_small_returns_none(self):
        assert pmu_observability_cover(ieee14(), max_pmus=2) is None

    def test_budget_exactly_minimum(self):
        cover = pmu_observability_cover(ieee14(), max_pmus=4)
        assert cover is not None and len(cover) == 4


class TestDefensePlacement:
    def test_placement_blocks_attack_model(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        placement = pmu_defense_placement(spec)
        assert placement is not None
        check = verify_attack(spec.with_secured_buses(placement))
        assert not check.attack_exists

    def test_placement_is_minimal_budget(self):
        from repro.core.synthesis import SynthesisSettings, synthesize_architecture

        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        placement = pmu_defense_placement(spec)
        below = synthesize_architecture(
            spec, SynthesisSettings(max_secured_buses=len(placement) - 1)
        )
        assert below.architecture is None

    def test_weak_attacker_needs_fewer_pmus(self):
        strong = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        weak = strong.with_limits(ResourceLimits(max_measurements=5, max_buses=2))
        strong_placement = pmu_defense_placement(strong)
        weak_placement = pmu_defense_placement(weak)
        assert len(weak_placement) <= len(strong_placement)

    def test_max_pmus_insufficient_returns_none(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        assert pmu_defense_placement(spec, max_pmus=1) is None
