"""Tests for the literature defense baselines."""

import numpy as np
import pytest

from repro.attacks.liu import restricted_access_attack
from repro.core.spec import AttackGoal, AttackSpec
from repro.core.verification import verify_attack
from repro.defense.baselines import (
    bobba_protection_set,
    greedy_bus_protection,
    kim_poor_greedy,
    protection_blocks_all_attacks,
)
from repro.estimation.measurement import MeasurementPlan
from repro.grid.cases import ieee14, ieee30


@pytest.fixture
def plan():
    return MeasurementPlan(ieee14())


class TestBobba:
    def test_size_is_minimal(self, plan):
        assert len(bobba_protection_set(plan)) == 13

    def test_blocks_all_algebraic_attacks(self, plan):
        protected = bobba_protection_set(plan)
        assert protection_blocks_all_attacks(plan, protected)
        secured = plan.with_secured_measurements(protected)
        assert restricted_access_attack(secured) is None

    def test_blocks_all_formal_attacks(self, plan):
        protected = bobba_protection_set(plan)
        spec = AttackSpec(
            grid=plan.grid,
            plan=plan.with_secured_measurements(protected),
            goal=AttackGoal.any(),
        )
        assert not verify_attack(spec).attack_exists

    def test_removing_one_reopens_attacks(self, plan):
        protected = bobba_protection_set(plan)
        weakened = protected[:-1]
        assert not protection_blocks_all_attacks(plan, weakened)


class TestKimPoor:
    def test_full_run_blocks_everything(self, plan):
        protected = kim_poor_greedy(plan)
        assert protection_blocks_all_attacks(plan, protected)

    def test_size_reasonable(self, plan):
        # greedy needs exactly n measurements here (each step cuts the
        # null space by at most 1, and full protection needs rank n)
        assert len(kim_poor_greedy(plan)) == 13

    def test_budget_truncates(self, plan):
        partial = kim_poor_greedy(plan, budget=5)
        assert len(partial) == 5
        assert not protection_blocks_all_attacks(plan, partial)

    def test_respects_taken_subset(self):
        grid = ieee14()
        plan = MeasurementPlan(grid, taken=set(range(41, 55)))
        protected = kim_poor_greedy(plan)
        assert set(protected) <= set(range(41, 55))
        assert protection_blocks_all_attacks(plan, protected)


class TestGreedyBus:
    def test_blocks_everything(self, plan):
        buses = greedy_bus_protection(plan)
        secured = plan.with_secured_buses(buses)
        spec = AttackSpec(
            grid=plan.grid, plan=secured, goal=AttackGoal.any()
        )
        assert not verify_attack(spec).attack_exists

    def test_budget_respected(self, plan):
        assert len(greedy_bus_protection(plan, budget=3)) == 3

    def test_greedy_not_smaller_than_formal_minimum(self, plan):
        # the paper's pitch: formal synthesis finds minimal sets; the
        # greedy heuristic may overshoot but never undershoots
        from repro.core.synthesis import SynthesisSettings, synthesize_architecture

        spec = AttackSpec(grid=plan.grid, plan=plan, goal=AttackGoal.any())
        greedy = greedy_bus_protection(plan)
        minimum = None
        for budget in range(1, len(greedy) + 1):
            result = synthesize_architecture(
                spec, SynthesisSettings(max_secured_buses=budget)
            )
            if result.architecture is not None:
                minimum = len(result.architecture)
                break
        assert minimum is not None
        assert minimum <= len(greedy)

    def test_ieee30(self):
        plan = MeasurementPlan(ieee30())
        buses = greedy_bus_protection(plan)
        secured = plan.with_secured_buses(buses)
        protected_rows = sorted(
            m for m in secured.taken if secured.is_secured(m)
        )
        assert protection_blocks_all_attacks(plan, protected_rows)


class TestBlocksAllAttacksPredicate:
    def test_empty_protection_fails(self, plan):
        assert not protection_blocks_all_attacks(plan, [])

    def test_full_protection_succeeds(self, plan):
        assert protection_blocks_all_attacks(plan, list(range(1, 55)))
