"""Whole-pipeline tests on degenerate and unusual grid shapes."""

import numpy as np
import pytest

from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.synthesis import SynthesisSettings, synthesize_architecture
from repro.core.verification import verify_attack
from repro.estimation.measurement import MeasurementPlan, build_h, build_measurements
from repro.estimation.wls import wls_estimate
from repro.grid.dcflow import solve_dc_flow
from repro.grid.model import Grid, Line


def two_bus():
    return Grid(2, [Line(1, 1, 2, 4.0)])


def parallel_lines():
    """Two buses joined by two parallel lines of different admittance."""
    return Grid(2, [Line(1, 1, 2, 4.0), Line(2, 1, 2, 1.0)])


def ring(n=4):
    lines = [Line(i, i, i % n + 1, 2.0) for i in range(1, n + 1)]
    return Grid(n, lines)


class TestTwoBus:
    def test_estimation(self):
        grid = two_bus()
        plan = MeasurementPlan(grid)
        flow = solve_dc_flow(grid, [0.5, -0.5])
        z = build_measurements(plan, flow)
        h = build_h(grid, 1, plan.taken_in_order())
        est = wls_estimate(h, z)
        assert est.residual_norm < 1e-12

    def test_attack_footprint(self):
        grid = two_bus()
        spec = AttackSpec.default(grid, goal=AttackGoal.states(2))
        result = verify_attack(spec)
        assert result.attack_exists
        # m = 2l+b = 4: fwd 1, bwd 2, injections 3 and 4 — all must move
        assert result.attack.altered_measurements == [1, 2, 3, 4]

    def test_synthesis(self):
        grid = two_bus()
        spec = AttackSpec.default(grid, goal=AttackGoal.any())
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=1))
        assert result.architecture is not None
        check = verify_attack(spec.with_secured_buses(result.architecture))
        assert not check.attack_exists


class TestParallelLines:
    def test_flow_splits_by_admittance(self):
        grid = parallel_lines()
        flow = solve_dc_flow(grid, [1.0, -1.0])
        assert flow.flow(1) == pytest.approx(0.8)
        assert flow.flow(2) == pytest.approx(0.2)

    def test_attack_must_touch_both_lines(self):
        grid = parallel_lines()
        spec = AttackSpec.default(grid, goal=AttackGoal.states(2))
        result = verify_attack(spec)
        assert result.attack_exists
        altered = set(result.attack.altered_measurements)
        # both parallel lines' flows change with the angle difference
        assert {1, 2, 3, 4} <= altered

    def test_deltas_proportional_to_admittances(self):
        grid = parallel_lines()
        spec = AttackSpec.default(grid, goal=AttackGoal.states(2))
        attack = verify_attack(spec).attack
        d1 = attack.measurement_deltas[1]
        d2 = attack.measurement_deltas[2]
        assert d1 / d2 == pytest.approx(4.0)

    def test_securing_one_line_blocks(self):
        grid = parallel_lines()
        plan = MeasurementPlan(grid, secured={2})
        spec = AttackSpec(grid=grid, plan=plan, goal=AttackGoal.states(2))
        assert not verify_attack(spec).attack_exists


class TestRing:
    def test_estimation_observable(self):
        grid = ring(5)
        plan = MeasurementPlan(grid)
        from repro.estimation.observability import analyze_observability

        assert analyze_observability(plan).observable

    def test_single_state_attack_touches_both_neighbors(self):
        grid = ring(4)
        spec = AttackSpec.default(grid, goal=AttackGoal.states(3, exclusive=True))
        result = verify_attack(spec)
        assert result.attack_exists
        # bus 3's two incident lines (2 and 3) both carry flow changes
        altered = set(result.attack.altered_measurements)
        assert {2, 3} <= altered  # forward flows of lines 2-3 and 3-4

    def test_cut_needs_two_lines(self):
        # islanding any bus of a ring requires cutting two lines, so a
        # zero-measurement attack is impossible even with nothing taken
        # on one line
        grid = ring(4)
        plan = MeasurementPlan(grid)
        spec = AttackSpec(
            grid=grid,
            plan=plan,
            goal=AttackGoal.states(3),
            limits=ResourceLimits(max_measurements=3),
        )
        assert not verify_attack(spec).attack_exists

    def test_ring_backends_agree(self):
        grid = ring(5)
        spec = AttackSpec.default(
            grid,
            goal=AttackGoal.states(3),
            limits=ResourceLimits(max_measurements=8),
        )
        smt = verify_attack(spec, backend="smt")
        milp = verify_attack(spec, backend="milp")
        assert smt.outcome == milp.outcome


class TestStarGrid:
    def test_hub_attack_is_expensive(self):
        # star: bus 1 center, leaves 2..6; attacking the hub state is
        # impossible (it is the reference); attacking a leaf needs only
        # its own line, but attacking ALL leaves together re-centers
        # everything
        grid = Grid(6, [Line(i, 1, i + 1, 2.0) for i in range(1, 6)])
        spec = AttackSpec.default(
            grid, goal=AttackGoal.states(2, 3, 4, 5, 6)
        )
        result = verify_attack(spec)
        assert result.attack_exists
        from repro.core.mincost import minimum_attack_cost

        # each leaf needs its line's 2 flow meas + leaf injection
        # (5*3 = 15); the naive count adds the shared hub injection,
        # but the optimizer picks leaf deltas that *cancel* at the hub
        # (e.g. four at +1, one at -4), sparing that 16th measurement
        cost = minimum_attack_cost(spec)
        assert cost.cost == 15
        hub_injection = 2 * 5 + 1  # measurement 11
        assert hub_injection not in cost.attack.altered_measurements
