"""Integration: synthesized architectures hold up against everything.

A security architecture from Algorithm 1 must block not just the formal
attack model but also the independent *algebraic* attack construction
and numerical replay attempts — and conversely, dropping any bus from a
minimal architecture must reopen some attack.
"""

import pytest

from repro.attacks.liu import restricted_access_attack
from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.synthesis import (
    SynthesisSettings,
    enumerate_architectures,
    synthesize_architecture,
    synthesize_measurement_architecture,
)
from repro.core.verification import verify_attack
from repro.defense.baselines import protection_blocks_all_attacks
from repro.estimation.measurement import MeasurementPlan
from repro.grid.cases import ieee14


@pytest.fixture(scope="module")
def worst_case_spec():
    return AttackSpec.default(ieee14(), goal=AttackGoal.any())


@pytest.fixture(scope="module")
def minimal_architecture(worst_case_spec):
    for budget in range(1, 14):
        result = synthesize_architecture(
            worst_case_spec, SynthesisSettings(max_secured_buses=budget)
        )
        if result.architecture is not None:
            return result.architecture
    raise AssertionError("no architecture found at any budget")


class TestArchitectureSoundness:
    def test_blocks_formal_attacks(self, worst_case_spec, minimal_architecture):
        secured = worst_case_spec.with_secured_buses(minimal_architecture)
        assert not verify_attack(secured).attack_exists

    def test_blocks_algebraic_attacks(self, worst_case_spec, minimal_architecture):
        plan = worst_case_spec.plan.with_secured_buses(minimal_architecture)
        assert restricted_access_attack(plan) is None

    def test_matches_rank_condition(self, worst_case_spec, minimal_architecture):
        # under the worst-case model, blocking all attacks is exactly
        # the Bobba full-rank condition on the protected rows
        plan = worst_case_spec.plan.with_secured_buses(minimal_architecture)
        protected = sorted(m for m in plan.taken if plan.is_secured(m))
        assert protection_blocks_all_attacks(plan, protected)

    def test_minimality(self, worst_case_spec, minimal_architecture):
        # dropping any single bus reopens some attack
        for removed in minimal_architecture:
            weakened = [b for b in minimal_architecture if b != removed]
            secured = worst_case_spec.with_secured_buses(weakened)
            assert verify_attack(secured).attack_exists


class TestScopedArchitectures:
    def test_weak_attacker_needs_fewer_buses(self):
        strong = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        weak = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.any(),
            limits=ResourceLimits(max_measurements=6, max_buses=3),
        )

        def minimum(spec):
            for budget in range(0, 14):
                result = synthesize_architecture(
                    spec, SynthesisSettings(max_secured_buses=budget)
                )
                if result.architecture is not None:
                    return len(result.architecture)
            return None

        assert minimum(weak) <= minimum(strong)

    def test_architecture_scoped_to_target(self):
        # protecting only state 12 needs far less than protecting all
        spec = AttackSpec.default(
            ieee14(), goal=AttackGoal.states(12, exclusive=True)
        )
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=2))
        assert result.architecture is not None
        assert len(result.architecture) <= 2


class TestMeasurementVsBusArchitectures:
    def test_measurement_architecture_matches_basic_set_size(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        result = synthesize_measurement_architecture(spec, max_secured_measurements=13)
        assert result.architecture is not None
        # the information-theoretic minimum is n = 13 protected meters
        assert len(result.architecture) == 13
        # the protected rows satisfy the Bobba full-rank condition
        assert protection_blocks_all_attacks(spec.plan, result.architecture)

    def test_measurement_architecture_infeasibility_small_grid(self):
        # the below-minimum infeasibility proof is a hitting-set
        # enumeration; exercise it where the space is small (a path
        # grid needs n-1 = 3 protected meters)
        from repro.grid.model import Grid, Line

        grid = Grid(4, [Line(i, i, i + 1, 2.0) for i in range(1, 4)])
        spec = AttackSpec.default(grid, goal=AttackGoal.any())
        ok = synthesize_measurement_architecture(spec, max_secured_measurements=3)
        assert ok.architecture is not None
        below = synthesize_measurement_architecture(spec, max_secured_measurements=2)
        assert below.architecture is None

    def test_enumerated_architectures_all_minimal(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        architectures = enumerate_architectures(
            spec, SynthesisSettings(max_secured_buses=5), limit=3
        )
        for arch in architectures:
            for removed in arch:
                weakened = [b for b in arch if b != removed]
                check = verify_attack(spec.with_secured_buses(weakened))
                assert check.attack_exists
