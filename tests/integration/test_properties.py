"""Cross-cutting property tests on the formal models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.io import parse_spec, write_spec
from repro.core.spec import AttackGoal, AttackSpec, LineAttributes, ResourceLimits
from repro.core.verification import verify_attack
from repro.estimation.baddata import chi_square_test
from repro.estimation.measurement import MeasurementPlan, build_h, build_measurements
from repro.estimation.wls import wls_estimate
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow
from repro.grid.synthetic import generate_grid

NOISE = 0.008


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 14), st.floats(0.001, 2.0))
def test_attack_homogeneity(target, scale):
    """The UFDI system is homogeneous: any rescaled attack stays stealthy."""
    spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(target))
    result = verify_attack(spec)
    assert result.attack_exists
    grid, plan = spec.grid, spec.plan
    flow = solve_dc_flow(grid, nominal_injections(grid))
    z = build_measurements(plan, flow, noise_std=NOISE, seed=1)
    h = build_h(grid, 1, plan.taken_in_order())
    w = np.full(len(z), 1 / NOISE**2)
    base = wls_estimate(h, z, w)
    attacked = wls_estimate(h, result.attack.scaled(scale).apply_to(z, plan), w)
    assert attacked.objective == pytest.approx(base.objective, abs=1e-4)
    assert not chi_square_test(attacked).bad_data_detected


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 5000))
def test_io_round_trip_preserves_verdict(seed):
    """Random specs survive text serialization with identical verdicts."""
    import random

    rng = random.Random(seed)
    num_buses = rng.randint(4, 10)
    max_lines = min(num_buses + 3, num_buses * (num_buses - 1) // 2)
    grid = generate_grid(num_buses, rng.randint(num_buses - 1, max_lines), seed=seed)
    num_potential = 2 * grid.num_lines + grid.num_buses
    taken = {m for m in range(1, num_potential + 1) if rng.random() < 0.8}
    taken |= {2 * grid.num_lines + j for j in grid.buses}
    plan = MeasurementPlan(
        grid,
        taken=taken,
        secured={m for m in taken if rng.random() < 0.1},
        inaccessible={m for m in range(1, num_potential + 1) if rng.random() < 0.05},
    )
    spec = AttackSpec(
        grid=grid,
        plan=plan,
        line_attrs={
            i: LineAttributes(knows_admittance=rng.random() > 0.2)
            for i in range(1, grid.num_lines + 1)
        },
        goal=AttackGoal.states(rng.randint(2, grid.num_buses)),
        limits=ResourceLimits(
            max_measurements=rng.choice([None, rng.randint(2, 10)])
        ),
    )
    round_tripped = parse_spec(write_spec(spec))
    # conflict budget bounds runaway instances; the solver is
    # deterministic, so identical encodings give identical outcomes
    # (including UNKNOWN == UNKNOWN on budget exhaustion)
    original = verify_attack(spec, max_conflicts=3000).outcome
    replayed = verify_attack(round_tripped, max_conflicts=3000).outcome
    assert original == replayed


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 3000))
def test_monotonicity_in_attacker_power(seed):
    """More resources / knowledge never turn SAT into UNSAT."""
    import random

    rng = random.Random(seed)
    num_buses = rng.randint(4, 9)
    grid = generate_grid(num_buses, num_buses + 1, seed=seed)
    target = rng.randint(2, num_buses)
    weak = AttackSpec.default(
        grid,
        goal=AttackGoal.states(target),
        limits=ResourceLimits(max_measurements=rng.randint(2, 6)),
        line_attrs={1: LineAttributes(knows_admittance=False)},
    )
    strong = AttackSpec.default(grid, goal=AttackGoal.states(target))
    weak_result = verify_attack(weak)
    strong_result = verify_attack(strong)
    if weak_result.attack_exists:
        assert strong_result.attack_exists


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 3000))
def test_securing_is_monotone(seed):
    """Securing more measurements never turns UNSAT into SAT."""
    import random

    rng = random.Random(seed)
    num_buses = rng.randint(4, 9)
    grid = generate_grid(num_buses, num_buses + 1, seed=seed)
    target = rng.randint(2, num_buses)
    base = AttackSpec.default(grid, goal=AttackGoal.states(target, exclusive=True))
    secured_some = base.with_secured_buses(
        [rng.randint(1, num_buses) for _ in range(2)]
    )
    secured_more = secured_some.with_secured_buses(
        [rng.randint(1, num_buses) for _ in range(2)]
    )
    if not verify_attack(secured_some).attack_exists:
        assert not verify_attack(secured_more).attack_exists
