"""Integration: every formally derived attack must evade the real estimator.

This is the end-to-end soundness check of the whole reproduction: attack
vectors produced by the constraint model (Section III) are replayed
against the numerical WLS estimator + chi-square detector (Section II)
at a concrete operating point, and must leave the residual unchanged
while shifting exactly the states they claim to shift.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.verification import verify_attack
from repro.estimation.baddata import chi_square_test, identify_bad_data
from repro.estimation.measurement import MeasurementPlan, build_h, build_measurements
from repro.estimation.wls import wls_estimate
from repro.grid.cases import ieee14, ieee30
from repro.grid.dcflow import nominal_injections, solve_dc_flow

NOISE = 0.008


def replay(spec, attack, scale=1.0, seed=0):
    """Apply an attack at an operating point; return (clean, attacked, shift)."""
    grid, plan = spec.grid, spec.plan
    flow = solve_dc_flow(grid, nominal_injections(grid), spec.reference_bus)
    z = build_measurements(plan, flow, noise_std=NOISE, seed=seed)
    h = build_h(grid, spec.reference_bus, taken=plan.taken_in_order())
    w = np.full(len(z), 1 / NOISE**2)
    clean = wls_estimate(h, z, w)
    attacked = wls_estimate(h, attack.scaled(scale).apply_to(z, plan), w)
    return clean, attacked, attacked.x_hat - clean.x_hat


class TestSingleTargetReplay:
    @pytest.mark.parametrize("target", [2, 5, 8, 10, 14])
    def test_residual_unchanged_and_state_shifted(self, target):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(target))
        result = verify_attack(spec)
        assert result.attack_exists
        clean, attacked, shift = replay(spec, result.attack, scale=0.05)
        assert attacked.objective == pytest.approx(clean.objective, abs=1e-5)
        assert not chi_square_test(attacked).bad_data_detected
        columns = [j for j in range(1, 15) if j != 1]
        col = columns.index(target)
        expected = result.attack.state_deltas[target] * 0.05
        assert shift[col] == pytest.approx(expected, abs=1e-7)

    def test_lnr_identification_stays_silent(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(10))
        result = verify_attack(spec)
        grid, plan = spec.grid, spec.plan
        flow = solve_dc_flow(grid, nominal_injections(grid))
        z = build_measurements(plan, flow, noise_std=NOISE, seed=0)
        h = build_h(grid, 1, plan.taken_in_order())
        w = np.full(len(z), 1 / NOISE**2)
        removed, __ = identify_bad_data(
            h, result.attack.scaled(0.05).apply_to(z, plan), w
        )
        assert removed == []


class TestConstrainedReplay:
    def test_resource_limited_attack_replays(self):
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.states(10),
            limits=ResourceLimits(max_measurements=9, max_buses=4),
        )
        result = verify_attack(spec)
        assert result.attack_exists
        clean, attacked, __ = replay(spec, result.attack, scale=0.03)
        assert attacked.objective == pytest.approx(clean.objective, abs=1e-5)

    def test_partial_measurement_plan_replay(self):
        grid = ieee14()
        taken = set(range(1, 55)) - {5, 10, 14, 19, 22, 27, 30, 35, 43, 52}
        plan = MeasurementPlan(grid, taken=taken)
        spec = AttackSpec(grid=grid, plan=plan, goal=AttackGoal.states(12))
        result = verify_attack(spec)
        clean, attacked, __ = replay(spec, result.attack, scale=0.05)
        assert attacked.objective == pytest.approx(clean.objective, abs=1e-5)

    def test_milp_attack_replays(self):
        spec = AttackSpec.default(
            ieee30(), goal=AttackGoal.states(15),
            limits=ResourceLimits(max_measurements=20),
        )
        result = verify_attack(spec, backend="milp")
        assert result.attack_exists
        clean, attacked, __ = replay(spec, result.attack, scale=0.05)
        assert attacked.objective == pytest.approx(clean.objective, abs=1e-4)


class TestCaseStudyReplay:
    def test_objective1_replay(self):
        from repro.core.casestudy import attack_objective_1

        spec = attack_objective_1(16, 7, True)
        result = verify_attack(spec)
        clean, attacked, shift = replay(spec, result.attack, scale=0.02)
        assert attacked.objective == pytest.approx(clean.objective, abs=1e-5)
        # states 9 and 10 moved by different amounts
        columns = [j for j in range(1, 15) if j != 1]
        d9, d10 = shift[columns.index(9)], shift[columns.index(10)]
        assert abs(d9 - d10) > 1e-6

    def test_objective2_replay_touches_only_state_12(self):
        from repro.core.casestudy import attack_objective_2

        spec = attack_objective_2()
        result = verify_attack(spec)
        clean, attacked, shift = replay(spec, result.attack, scale=0.05)
        assert attacked.objective == pytest.approx(clean.objective, abs=1e-5)
        columns = [j for j in range(1, 15) if j != 1]
        for bus, delta in zip(columns, shift):
            if bus == 12:
                assert abs(delta) > 1e-6
            else:
                assert abs(delta) < 1e-8


@settings(max_examples=12, deadline=None)
@given(
    st.integers(2, 14),
    st.integers(0, 1000),
)
def test_hypothesis_random_targets_replay(target, seed):
    """Property: any satisfiable single-target formal attack replays
    cleanly against the estimator at any noisy operating point."""
    spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(target))
    result = verify_attack(spec)
    assert result.attack_exists
    clean, attacked, __ = replay(spec, result.attack, scale=0.04, seed=seed)
    assert attacked.objective == pytest.approx(clean.objective, abs=1e-5)
    # stealthiness means the attack does not change the detector's
    # verdict; an unlucky noise draw may trip chi-square even with no
    # attack (e.g. seed=699), and that false positive is not the
    # attack's doing
    assert (
        chi_square_test(attacked).bad_data_detected
        == chi_square_test(clean).bad_data_detected
    )
