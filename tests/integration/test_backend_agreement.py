"""Integration: the three decision procedures agree on randomized specs.

The bundled SMT engine (exact DPLL(T)), the HiGHS MILP mirror with exact
refinement, and — on the boolean side of small instances — the
from-scratch branch-and-bound must return the same SAT/UNSAT verdicts.
Agreement across independently implemented deciders is the strongest
correctness evidence the reproduction has.
"""

import random

import pytest

from repro.core.spec import AttackGoal, AttackSpec, LineAttributes, ResourceLimits
from repro.core.verification import VerificationOutcome, verify_attack
from repro.estimation.measurement import MeasurementPlan
from repro.grid.cases import ieee14
from repro.grid.synthetic import generate_grid


def random_spec(seed):
    rng = random.Random(seed)
    num_buses = rng.randint(5, 12)
    num_lines = rng.randint(num_buses - 1, min(16, num_buses + 5))
    grid = generate_grid(num_buses, num_lines, seed=seed)
    num_potential = 2 * grid.num_lines + grid.num_buses
    taken = {
        m
        for m in range(1, num_potential + 1)
        if rng.random() < 0.85
    }
    # keep observability likely: always take bus injections
    taken |= {2 * grid.num_lines + j for j in grid.buses}
    secured = {m for m in taken if rng.random() < 0.1}
    inaccessible = {m for m in range(1, num_potential + 1) if rng.random() < 0.05}
    plan = MeasurementPlan(grid, taken=taken, secured=secured, inaccessible=inaccessible)
    attrs = {}
    for line in grid.lines:
        attrs[line.index] = LineAttributes(
            knows_admittance=rng.random() > 0.15,
            fixed=rng.random() > 0.3,
        )
    target = rng.randint(2, grid.num_buses)
    goal = AttackGoal.states(target, exclusive=rng.random() < 0.3)
    limits = ResourceLimits(
        max_measurements=rng.choice([None, rng.randint(3, 12)]),
        max_buses=rng.choice([None, rng.randint(2, 6)]),
    )
    return AttackSpec(
        grid=grid,
        plan=plan,
        line_attrs=attrs,
        goal=goal,
        limits=limits,
        allow_topology_attack=rng.random() < 0.5,
    )


class TestRandomizedAgreement:
    @pytest.mark.parametrize("seed", range(25))
    def test_smt_milp_agree(self, seed):
        spec = random_spec(seed)
        smt = verify_attack(spec, backend="smt")
        milp = verify_attack(spec, backend="milp")
        assert smt.outcome == milp.outcome, f"seed {seed}"
        if smt.outcome is VerificationOutcome.ATTACK_EXISTS:
            # both vectors satisfy the same spec-level constraints
            for result in (smt, milp):
                attack = result.attack
                if spec.limits.max_measurements is not None:
                    assert (
                        len(attack.altered_measurements)
                        <= spec.limits.max_measurements
                    )
                if spec.limits.max_buses is not None:
                    assert (
                        len(attack.compromised_buses(spec.plan))
                        <= spec.limits.max_buses
                    )
                for meas in attack.altered_measurements:
                    assert spec.plan.is_taken(meas)
                    assert spec.plan.is_accessible(meas)
                    assert not spec.plan.is_secured(meas)


class TestCaseStudyAgreement:
    def test_ieee14_with_topology_attack(self):
        attrs = {i: LineAttributes(fixed=i not in (5, 13)) for i in range(1, 21)}
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.states(12, exclusive=True),
            line_attrs=attrs,
            allow_topology_attack=True,
        )
        smt = verify_attack(spec, backend="smt")
        milp = verify_attack(spec, backend="milp")
        assert smt.outcome == milp.outcome
