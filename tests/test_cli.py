"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.core.io import save_spec_file, write_spec
from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.grid.cases import ieee14


@pytest.fixture
def spec_file(tmp_path):
    spec = AttackSpec.default(
        ieee14(),
        goal=AttackGoal.states(12, exclusive=True),
    )
    path = tmp_path / "grid.spec"
    save_spec_file(spec, path)
    return str(path)


@pytest.fixture
def secure_spec_file(tmp_path):
    # an attacker with no budget: verification is unsat
    spec = AttackSpec.default(
        ieee14(),
        goal=AttackGoal.any(),
        limits=ResourceLimits(max_measurements=0),
    )
    path = tmp_path / "secure.spec"
    save_spec_file(spec, path)
    return str(path)


class TestCases:
    def test_lists_all(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        for name in ("ieee14", "ieee300"):
            assert name in out


class TestTemplate:
    def test_emits_parseable_spec(self, capsys):
        assert main(["template", "ieee14"]) == 0
        out = capsys.readouterr().out
        from repro.core.io import parse_spec

        spec = parse_spec(out)
        assert spec.grid.num_buses == 14

    def test_rejects_unknown_case(self):
        with pytest.raises(SystemExit):
            main(["template", "ieee9999"])


class TestVerify:
    def test_sat_exit_code(self, spec_file, capsys):
        assert main(["verify", spec_file]) == 2
        assert "sat" in capsys.readouterr().out

    def test_unsat_exit_code(self, secure_spec_file, capsys):
        assert main(["verify", secure_spec_file]) == 0
        assert "unsat" in capsys.readouterr().out

    def test_milp_backend(self, spec_file, capsys):
        assert main(["verify", spec_file, "--backend", "milp"]) == 2


class TestSynthesize:
    def test_feasible(self, spec_file, capsys):
        assert main(["synthesize", spec_file, "--budget", "3"]) == 0
        assert "secure buses" in capsys.readouterr().out

    def test_infeasible(self, spec_file, capsys):
        assert main(["synthesize", spec_file, "--budget", "0"]) == 1

    def test_enumerate(self, spec_file, capsys):
        assert main(["synthesize", spec_file, "--budget", "3", "--enumerate", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("secure buses") >= 1

    def test_exclude(self, spec_file, capsys):
        rc = main(
            ["synthesize", spec_file, "--budget", "4", "--exclude", "6", "12"]
        )
        out = capsys.readouterr().out
        if rc == 0:
            import re

            buses = [int(tok) for tok in re.findall(r"\d+", out.split("]")[0])]
            assert 6 not in buses and 12 not in buses


class TestMincost:
    def test_reports_cost(self, spec_file, capsys):
        assert main(["mincost", spec_file]) == 0
        assert "minimum measurements budget: 7" in capsys.readouterr().out

    def test_bus_dimension(self, spec_file, capsys):
        assert main(["mincost", spec_file, "--dimension", "buses"]) == 0
        assert "buses budget" in capsys.readouterr().out

    def test_goalless_spec_rejected(self, tmp_path, capsys):
        spec = AttackSpec.default(ieee14())
        path = tmp_path / "nogoal.spec"
        save_spec_file(spec, path)
        assert main(["mincost", str(path)]) == 1


class TestRuntimeFlagWiring:
    def test_mincost_accepts_runtime_flags(self, spec_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert (
            main(["mincost", spec_file, "--cache-dir", str(cache_dir)]) == 0
        )
        assert "minimum measurements budget: 7" in capsys.readouterr().out
        # probes were memoized through the runtime cache
        assert list(cache_dir.glob("*.json"))

    def test_mincost_cached_rerun_matches(self, spec_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["mincost", spec_file, "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert main(["mincost", spec_file, "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[0] == second.splitlines()[0]

    def test_mincost_portfolio(self, spec_file, capsys):
        assert main(["mincost", spec_file, "--portfolio"]) == 0
        assert "minimum measurements budget: 7" in capsys.readouterr().out

    def test_metrics_accepts_runtime_flags(self, spec_file, tmp_path, capsys):
        assert (
            main(
                [
                    "metrics",
                    spec_file,
                    "--cache-dir",
                    str(tmp_path / "cache"),
                ]
            )
            == 0
        )
        assert "state attack costs" in capsys.readouterr().out


class TestProfile:
    def test_writes_json_report(self, spec_file, tmp_path, capsys):
        import json

        out = tmp_path / "profile.json"
        assert main(["profile", spec_file, "--out", str(out), "--top", "5"]) == 0
        assert "written to" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["spec"] == spec_file
        assert report["repeat"] == 1
        assert report["outcome"] in ("sat", "unsat", "unknown")
        assert 0 < len(report["hotspots"]) <= 5
        for row in report["hotspots"]:
            assert set(row) == {"function", "calls", "tottime", "cumtime"}
        stats = report["solver_statistics"]
        assert stats["kernel"] == report["engine"].split("kernel=")[1].split("/")[0]
        # REPRO_SMT_PROFILE was in force: per-phase times are attributed
        for phase in ("bcp", "theory", "decide", "analyze"):
            assert f"time_{phase}" in stats

    def test_stdout_report(self, spec_file, capsys):
        import json

        assert main(["profile", spec_file]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["engine"].startswith("v")
        assert len(report["hotspots"]) <= 15

    def test_portfolio_report_breaks_down_per_config(
        self, spec_file, tmp_path, capsys
    ):
        import json

        out = tmp_path / "portfolio-profile.json"
        assert (
            main(
                ["profile", spec_file, "--portfolio", "configs:2", "--out", str(out)]
            )
            == 0
        )
        assert "written to" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["backend"] == "portfolio-configs2"
        assert report["outcome"] in ("sat", "unsat")
        portfolio = report["portfolio"]
        assert portfolio["mode"] == "configs"
        assert portfolio["size"] == 2
        assert portfolio["winner_config"] in portfolio["per_config"]
        assert portfolio["clauses_exchanged"] >= 0
        # collect_all waited for every contender, so each reports a
        # phase-time breakdown and its share of the clause traffic
        assert len(portfolio["per_config"]) == 2
        for meta in portfolio["per_config"].values():
            assert set(meta) >= {
                "phase_times",
                "clauses_exported",
                "clauses_imported",
                "runtime_seconds",
            }
            assert any(
                phase.startswith("time_") for phase in meta["phase_times"]
            )

    def test_portfolio_rejects_backend_race(self, spec_file, capsys):
        assert main(["profile", spec_file, "--portfolio", "backends"]) == 2
        assert "only supports" in capsys.readouterr().err


class TestServe:
    def test_parser_exposes_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--batch-window", "0.1", "--jobs", "2"]
        )
        assert args.func.__name__ == "_cmd_serve"
        assert args.port == 0
        assert args.batch_window == 0.1
        assert args.jobs == 2


class TestObservabilityCli:
    def test_bare_metrics_dumps_local_registry(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_solve_seconds histogram" in out
        assert "# TYPE repro_cache_lookups_total counter" in out

    def test_trace_show_renders_waterfall(self, tmp_path, capsys):
        import json

        sink = tmp_path / "spans.jsonl"
        spans = [
            {
                "trace_id": "t" * 32,
                "span_id": "a" * 16,
                "parent_id": None,
                "name": "http.request",
                "start": 0.0,
                "duration_seconds": 0.2,
                "status": "ok",
                "attributes": {"path": "/v1/verify"},
            },
            {
                "trace_id": "t" * 32,
                "span_id": "b" * 16,
                "parent_id": "a" * 16,
                "name": "verify.solve",
                "start": 0.05,
                "duration_seconds": 0.1,
                "status": "ok",
                "attributes": {"backend": "smt", "outcome": "sat"},
            },
        ]
        sink.write_text("".join(json.dumps(s) + "\n" for s in spans))
        assert main(["trace", "show", str(sink)]) == 0
        out = capsys.readouterr().out
        assert "trace " + "t" * 32 in out
        assert "verify.solve" in out
        assert "backend=smt" in out

    def test_trace_show_filters_by_prefix(self, tmp_path, capsys):
        import json

        sink = tmp_path / "spans.jsonl"
        for tid in ("aaa" + "0" * 29, "bbb" + "0" * 29):
            span = {
                "trace_id": tid,
                "span_id": "c" * 16,
                "parent_id": None,
                "name": "work",
                "start": 0.0,
                "duration_seconds": 0.01,
                "status": "ok",
                "attributes": {},
            }
            with sink.open("a") as fh:
                fh.write(json.dumps(span) + "\n")
        assert main(["trace", "show", str(sink), "--trace-id", "bbb"]) == 0
        out = capsys.readouterr().out
        assert "bbb" in out
        assert "aaa" not in out

    def test_trace_show_missing_file_fails_cleanly(self, tmp_path, capsys):
        rc = main(["trace", "show", str(tmp_path / "missing.jsonl")])
        assert rc == 1
