"""Tests for the HiGHS MILP mirror backend."""

import pytest

from repro.core.casestudy import attack_objective_1, attack_objective_2
from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.verification import UfdiEncoder, verify_attack
from repro.grid.cases import ieee14
from repro.milp.backend import solve_encoder_milp


class TestAgreementWithSmt:
    @pytest.mark.parametrize(
        "make_spec,expect_sat",
        [
            (lambda: attack_objective_1(16, 7, True), True),
            (lambda: attack_objective_1(15, 7, True), False),
            (lambda: attack_objective_1(16, 6, True), False),
            (lambda: attack_objective_1(15, 6, False), True),
            (lambda: attack_objective_2(), True),
            (lambda: attack_objective_2(True), False),
            (lambda: attack_objective_2(True, True), True),
        ],
        ids=[
            "obj1-16-7", "obj1-15-7", "obj1-16-6", "obj1-equal",
            "obj2", "obj2-46sec", "obj2-topo",
        ],
    )
    def test_casestudy_agreement(self, make_spec, expect_sat):
        spec = make_spec()
        milp = verify_attack(spec, backend="milp")
        assert milp.attack_exists is expect_sat

    def test_extracted_attack_is_exact(self):
        # the refinement loop re-derives real values from the exact
        # simplex, so the flow-balance identities hold to rounding
        # wherever all the involved measurements are taken
        spec = attack_objective_2()
        result = verify_attack(spec, backend="milp")
        attack = result.attack
        plan = spec.plan

        def line_total(line):
            fwd = plan.forward_index(line.index)
            bwd = plan.backward_index(line.index)
            if plan.is_taken(fwd):
                return attack.measurement_deltas.get(fwd, 0.0)
            if plan.is_taken(bwd):
                return -attack.measurement_deltas.get(bwd, 0.0)
            return None  # unobserved: delta unknown

        for j in spec.grid.buses:
            meas = plan.bus_index(j)
            if not plan.is_taken(meas):
                continue
            totals = [
                (1.0 if line.to_bus == j else -1.0, line_total(line))
                for line in spec.grid.lines_at(j)
            ]
            if any(t is None for __, t in totals):
                continue
            expected = sum(sign * t for sign, t in totals)
            bus_delta = attack.measurement_deltas.get(meas, 0.0)
            assert bus_delta == pytest.approx(expected, abs=1e-9)


class TestSymbolicSecurity:
    def test_secured_buses_assumption(self):
        spec = AttackSpec.default(
            ieee14(), goal=AttackGoal.states(12, exclusive=True)
        )
        encoder = UfdiEncoder(spec, symbolic_security=True)
        free = solve_encoder_milp(encoder)
        assert free.outcome.value == "sat"
        # securing the counterexample's buses blocks that vector
        buses = free.attack.compromised_buses(spec.plan)
        blocked = solve_encoder_milp(encoder, secured_buses=buses)
        if blocked.outcome.value == "sat":
            assert set(
                blocked.attack.compromised_buses(spec.plan)
            ) != set(buses)


class TestStatistics:
    def test_statistics_reported(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(5))
        result = verify_attack(spec, backend="milp")
        stats = result.statistics
        assert stats["milp_binaries"] > 0
        assert stats["milp_continuous"] > 0
        assert stats["milp_constraints"] > 0

    def test_refinements_counter(self):
        spec = attack_objective_2(True, True)
        result = verify_attack(spec, backend="milp")
        assert result.statistics["milp_refinements"] >= 0
