"""Tests for the from-scratch branch-and-bound MILP solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import milp as scipy_milp
from scipy.optimize import Bounds, LinearConstraint

from repro.milp.branch_bound import BnbStatus, branch_and_bound


class TestPureLp:
    def test_no_integers_is_plain_lp(self):
        # min x + y s.t. x + y >= 2, x,y >= 0
        result = branch_and_bound(
            c=[1, 1],
            a_ub=np.array([[-1, -1]]),
            b_ub=[-2],
            bounds=[(0, None), (0, None)],
        )
        assert result.status is BnbStatus.OPTIMAL
        assert result.objective == pytest.approx(2.0)

    def test_infeasible_lp(self):
        result = branch_and_bound(
            c=[1],
            a_ub=np.array([[1], [-1]]),
            b_ub=[0, -1],  # x <= 0 and x >= 1
            bounds=[(None, None)],
        )
        assert result.status is BnbStatus.INFEASIBLE


class TestInteger:
    def test_knapsack(self):
        # max 10a + 6b + 4c (i.e. min negative) s.t. a+b+c <= 2, binary
        result = branch_and_bound(
            c=[-10, -6, -4],
            a_ub=np.array([[1, 1, 1]]),
            b_ub=[2],
            bounds=[(0, 1)] * 3,
            integer_mask=[True] * 3,
        )
        assert result.status is BnbStatus.OPTIMAL
        assert result.objective == pytest.approx(-16.0)
        assert list(result.x) == [1, 1, 0]

    def test_fractional_lp_relaxation_rounds_down(self):
        # min -x s.t. 2x <= 3, x integer in [0, 5] -> x = 1
        result = branch_and_bound(
            c=[-1],
            a_ub=np.array([[2]]),
            b_ub=[3],
            bounds=[(0, 5)],
            integer_mask=[True],
        )
        assert result.objective == pytest.approx(-1.0)

    def test_integer_infeasibility(self):
        # 0.4 <= x <= 0.6, x integer
        result = branch_and_bound(
            c=[0],
            bounds=[(0.4, 0.6)],
            integer_mask=[True],
        )
        assert result.status is BnbStatus.INFEASIBLE

    def test_equality_constraints(self):
        # x + y == 3, x,y binary-ish integers in [0,2]
        result = branch_and_bound(
            c=[1, 0],
            a_eq=np.array([[1, 1]]),
            b_eq=[3],
            bounds=[(0, 2), (0, 2)],
            integer_mask=[True, True],
        )
        assert result.status is BnbStatus.OPTIMAL
        assert result.x[0] == pytest.approx(1.0)

    def test_mixed_integer_continuous(self):
        # min y s.t. y >= x - 0.5, x integer in [0,3], y >= 1.2 -> pick x freely
        result = branch_and_bound(
            c=[0, 1],
            a_ub=np.array([[1, -1]]),
            b_ub=[0.5],
            bounds=[(0, 3), (1.2, None)],
            integer_mask=[True, False],
        )
        assert result.status is BnbStatus.OPTIMAL
        assert result.objective == pytest.approx(1.2)

    def test_node_limit(self):
        rng = np.random.default_rng(3)
        n = 14
        a = rng.integers(1, 10, size=(1, n)).astype(float)
        result = branch_and_bound(
            c=list(-a[0]),
            a_ub=a,
            b_ub=[a.sum() / 2 + 0.5],
            bounds=[(0, 1)] * n,
            integer_mask=[True] * n,
            max_nodes=2,
        )
        assert result.status in (BnbStatus.NODE_LIMIT, BnbStatus.OPTIMAL)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_hypothesis_agrees_with_highs(seed):
    """Random small binary feasibility/optimization vs scipy's HiGHS."""
    rng = np.random.default_rng(seed)
    n = rng.integers(2, 6)
    m = rng.integers(1, 5)
    a = rng.integers(-3, 4, size=(m, n)).astype(float)
    b = rng.integers(-2, 5, size=m).astype(float)
    c = rng.integers(-5, 6, size=n).astype(float)
    ours = branch_and_bound(
        c=list(c),
        a_ub=a,
        b_ub=list(b),
        bounds=[(0, 1)] * int(n),
        integer_mask=[True] * int(n),
        max_nodes=5000,
    )
    res = scipy_milp(
        c=c,
        constraints=LinearConstraint(a, -np.inf, b),
        integrality=np.ones(n),
        bounds=Bounds(np.zeros(n), np.ones(n)),
    )
    if res.status == 0:
        assert ours.status is BnbStatus.OPTIMAL
        assert ours.objective == pytest.approx(res.fun, abs=1e-6)
    elif res.status == 2:
        assert ours.status is BnbStatus.INFEASIBLE
