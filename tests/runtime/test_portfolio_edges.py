"""Portfolio racing edge cases: total failure, cancellation, attribution."""

import pytest

from repro.core.spec import AttackGoal, AttackSpec
from repro.core.verification import VerificationOutcome
from repro.grid.cases import ieee14
from repro.runtime import RuntimeOptions, race_backends, race_configs, verify_many
from repro.runtime.executor import _M_PORTFOLIO_RACES, _M_PORTFOLIO_WINS
from repro.smt.sat import SolverConfig, diversified_configs


def sat_spec():
    return AttackSpec.default(ieee14(), goal=AttackGoal.states(9))


class TestTotalFailure:
    def test_every_contender_crashing_is_inconclusive_not_fatal(self):
        result = race_backends(sat_spec(), backends=("bogus_a", "bogus_b"))
        assert result.outcome is VerificationOutcome.UNKNOWN
        assert result.backend == "portfolio"
        assert result.statistics["portfolio_inconclusive"] == 1
        assert result.attack is None

    def test_one_crashing_contender_does_not_spoil_the_race(self):
        result = race_backends(sat_spec(), backends=("bogus_a", "smt"))
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert result.statistics["portfolio_winner"] == "smt"


class TestLoserCancellation:
    def test_stalled_loser_is_terminated_and_counted(self, monkeypatch):
        # the hook parks the MILP child, so SMT must win and the parked
        # contender must be observed getting cancelled
        monkeypatch.setenv("REPRO_RACE_STALL", "milp")
        result = race_backends(sat_spec(), backends=("smt", "milp"))
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert result.statistics["portfolio_winner"] == "smt"
        assert result.statistics["portfolio_losers_cancelled"] >= 1

    def test_winner_attribution_survives_role_swap(self, monkeypatch):
        monkeypatch.setenv("REPRO_RACE_STALL", "smt")
        result = race_backends(sat_spec(), backends=("smt", "milp"))
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert result.statistics["portfolio_winner"] == "milp"


class TestCrashReporting:
    def test_unprintable_exception_still_yields_structured_error(
        self, monkeypatch
    ):
        # _UnprintableError's __str__ and __reduce__ both raise; the
        # child must still deliver a plain-string report to the parent
        monkeypatch.setenv("REPRO_RACE_CRASH", "smt")
        result = race_backends(sat_spec(), backends=("smt", "milp"))
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert result.statistics["portfolio_winner"] == "milp"

    def test_all_contenders_crashing_reports_each_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_RACE_CRASH", "smt")
        result = race_backends(sat_spec(), backends=("smt", "bogus_b"))
        assert result.outcome is VerificationOutcome.UNKNOWN
        assert result.statistics["portfolio_crashed"] == 2
        errors = result.statistics["portfolio_errors"]
        assert errors["smt"] == "_UnprintableError: <unprintable exception>"
        assert "bogus_b" in errors

    def test_config_race_crash_is_attributed_to_the_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_RACE_CRASH", "config:0")
        result = race_configs(sat_spec(), n=2)
        # the surviving contender still settles the instance
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        tokens = [c.token() for c in diversified_configs(2)]
        assert result.statistics["portfolio_winner_config"] == tokens[1]
        errors = result.statistics.get("portfolio_errors", {})
        if errors:  # the crash may land after the winner already broke out
            assert errors[tokens[0]].startswith("_UnprintableError")

    def test_config_race_total_crash_is_inconclusive(self, monkeypatch):
        # one contender crashes unprintably, the other is parked; the
        # race must time out inconclusive with the crash attributed
        monkeypatch.setenv("REPRO_RACE_CRASH", "config:0")
        monkeypatch.setenv("REPRO_RACE_STALL", "config:1")
        result = race_configs(sat_spec(), n=2, timeout=2.0)
        assert result.outcome is VerificationOutcome.UNKNOWN
        assert result.statistics["portfolio_inconclusive"] == 1
        assert result.statistics["portfolio_crashed"] == 1
        tokens = [c.token() for c in diversified_configs(2)]
        assert result.statistics["portfolio_errors"][tokens[0]] == (
            "_UnprintableError: <unprintable exception>"
        )
        assert result.statistics["portfolio_losers_cancelled"] >= 1


class TestDeterministicTie:
    def test_simultaneous_finishers_attribute_a_single_winner(self):
        # both contenders solve the same easy instance near-instantly; the
        # parent must pick exactly one winner and label it consistently
        for _ in range(3):
            result = race_backends(sat_spec(), backends=("smt", "milp"))
            assert result.outcome is VerificationOutcome.ATTACK_EXISTS
            winner = result.statistics["portfolio_winner"]
            assert winner in ("smt", "milp")
            assert result.backend == winner

    def test_config_tie_winner_matches_replayable_config(self):
        capture = {}
        result = race_configs(sat_spec(), n=2, capture=capture)
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert (
            result.statistics["portfolio_winner_config"]
            == capture["winner_config"]
        )
        tokens = {c.token() for c in diversified_configs(2)}
        assert capture["winner_config"] in tokens


class TestWinnerAttributionMetrics:
    def test_executor_counts_races_and_wins_by_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_RACE_STALL", "milp")
        races_before = _M_PORTFOLIO_RACES.value()
        wins_before = _M_PORTFOLIO_WINS.value(backend="smt")
        results = verify_many(
            [sat_spec()], RuntimeOptions(jobs=1, portfolio=True, cache=None)
        )
        assert results[0].outcome is VerificationOutcome.ATTACK_EXISTS
        assert _M_PORTFOLIO_RACES.value() == races_before + 1
        assert _M_PORTFOLIO_WINS.value(backend="smt") == wins_before + 1

    def test_single_backend_race_still_attributes_winner(self):
        result = race_backends(sat_spec(), backends=("smt",))
        assert result.statistics["portfolio_winner"] == "smt"
