"""Portfolio racing edge cases: total failure, cancellation, attribution."""

import pytest

from repro.core.spec import AttackGoal, AttackSpec
from repro.core.verification import VerificationOutcome
from repro.grid.cases import ieee14
from repro.runtime import RuntimeOptions, race_backends, verify_many
from repro.runtime.executor import _M_PORTFOLIO_RACES, _M_PORTFOLIO_WINS


def sat_spec():
    return AttackSpec.default(ieee14(), goal=AttackGoal.states(9))


class TestTotalFailure:
    def test_every_contender_crashing_is_inconclusive_not_fatal(self):
        result = race_backends(sat_spec(), backends=("bogus_a", "bogus_b"))
        assert result.outcome is VerificationOutcome.UNKNOWN
        assert result.backend == "portfolio"
        assert result.statistics["portfolio_inconclusive"] == 1
        assert result.attack is None

    def test_one_crashing_contender_does_not_spoil_the_race(self):
        result = race_backends(sat_spec(), backends=("bogus_a", "smt"))
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert result.statistics["portfolio_winner"] == "smt"


class TestLoserCancellation:
    def test_stalled_loser_is_terminated_and_counted(self, monkeypatch):
        # the hook parks the MILP child, so SMT must win and the parked
        # contender must be observed getting cancelled
        monkeypatch.setenv("REPRO_RACE_STALL", "milp")
        result = race_backends(sat_spec(), backends=("smt", "milp"))
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert result.statistics["portfolio_winner"] == "smt"
        assert result.statistics["portfolio_losers_cancelled"] >= 1

    def test_winner_attribution_survives_role_swap(self, monkeypatch):
        monkeypatch.setenv("REPRO_RACE_STALL", "smt")
        result = race_backends(sat_spec(), backends=("smt", "milp"))
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert result.statistics["portfolio_winner"] == "milp"


class TestWinnerAttributionMetrics:
    def test_executor_counts_races_and_wins_by_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_RACE_STALL", "milp")
        races_before = _M_PORTFOLIO_RACES.value()
        wins_before = _M_PORTFOLIO_WINS.value(backend="smt")
        results = verify_many(
            [sat_spec()], RuntimeOptions(jobs=1, portfolio=True, cache=None)
        )
        assert results[0].outcome is VerificationOutcome.ATTACK_EXISTS
        assert _M_PORTFOLIO_RACES.value() == races_before + 1
        assert _M_PORTFOLIO_WINS.value(backend="smt") == wins_before + 1

    def test_single_backend_race_still_attributes_winner(self):
        result = race_backends(sat_spec(), backends=("smt",))
        assert result.statistics["portfolio_winner"] == "smt"
