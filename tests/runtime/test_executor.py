"""Batch executor: parallel == serial, dedup, timeouts, cache wiring."""

import pytest

import repro.runtime.executor as executor_module
from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.synthesis import SynthesisSettings, synthesize_architecture
from repro.grid.cases import ieee14
from repro.runtime import (
    ResultCache,
    RuntimeOptions,
    synthesize_many,
    verify_many,
    verify_one,
)


def batch_specs():
    grid = ieee14()
    return [
        AttackSpec.default(grid, goal=AttackGoal.states(bus))
        for bus in (4, 9, 13)
    ]


class TestResultMetrics:
    def test_solver_stats_fold_into_registry(self):
        fill_gauge = executor_module._M_SOLVER_FILL_RATIO
        conflict_counter = executor_module._M_SOLVER_CONFLICTS
        before = conflict_counter.value()
        results = verify_many(batch_specs()[:1], RuntimeOptions(jobs=1))
        stats = results[0].statistics
        # the tableau sparsity stats travel home in the result and land
        # in the registry: fill ratio as a last-solve gauge, conflicts
        # (and friends) as running counters
        assert 0.0 < stats["fill_ratio"] <= 1.0
        assert stats["rows_nnz"] > 0
        assert fill_gauge.value() == stats["fill_ratio"]
        assert conflict_counter.value() == before + stats["conflicts"]


class TestOptions:
    def test_effective_jobs_clamps_to_tasks(self):
        assert RuntimeOptions(jobs=8).effective_jobs(3) == 3
        assert RuntimeOptions(jobs=2).effective_jobs(10) == 2

    def test_zero_means_all_cores(self):
        import os

        assert RuntimeOptions(jobs=0).effective_jobs(128) == (os.cpu_count() or 1)

    def test_backend_label(self):
        assert RuntimeOptions(backend="milp").backend_label() == "milp"
        assert RuntimeOptions(portfolio=True).backend_label() == "portfolio"


class TestVerifyMany:
    def test_preserves_input_order(self):
        specs = batch_specs()
        results = verify_many(specs)
        assert len(results) == len(specs)
        for spec, result in zip(specs, results):
            alone = verify_one(spec)
            assert result.outcome == alone.outcome
            assert result.attack == alone.attack

    def test_parallel_matches_serial_bit_for_bit(self):
        specs = batch_specs()
        serial = verify_many(specs, RuntimeOptions(jobs=1))
        parallel = verify_many(specs, RuntimeOptions(jobs=2))
        for a, b in zip(serial, parallel):
            assert a.outcome == b.outcome
            assert a.backend == b.backend
            assert a.attack == b.attack
            assert a.statistics["conflicts"] == b.statistics["conflicts"]
            assert a.statistics["decisions"] == b.statistics["decisions"]
            assert a.statistics["propagations"] == b.statistics["propagations"]

    def test_identical_specs_solved_once(self, monkeypatch):
        calls = []
        real = executor_module.verify_attack

        def counting(spec, **kwargs):
            calls.append(spec)
            return real(spec, **kwargs)

        monkeypatch.setattr(executor_module, "verify_attack", counting)
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(9))
        results = verify_many([spec, spec, spec])
        assert len(calls) == 1
        assert len(results) == 3
        assert results[0].outcome == results[1].outcome == results[2].outcome
        # statistics dicts are per-result copies, never shared
        results[1].statistics["marker"] = 1
        assert "marker" not in results[0].statistics
        assert "marker" not in results[2].statistics

    def test_task_timeout_yields_unknown(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(9))
        (result,) = verify_many(
            [spec], RuntimeOptions(task_timeout=1e-4)
        )
        assert result.outcome.value == "unknown"
        assert result.statistics.get("task_timeout") == 1

    def test_empty_batch(self):
        assert verify_many([]) == []


class TestCacheWiring:
    def test_second_sweep_hits_cache(self):
        specs = batch_specs()
        cache = ResultCache()
        options = RuntimeOptions(cache=cache)
        first = verify_many(specs, options)
        assert all("cache_hit" not in r.statistics for r in first)
        assert cache.stats.stores == len(specs)

        second = verify_many(specs, options)
        assert all(r.statistics.get("cache_hit") == 1 for r in second)
        assert cache.stats.hits == len(specs)
        for a, b in zip(first, second):
            assert a.outcome == b.outcome
            assert a.attack == b.attack

    def test_unknown_results_not_cached(self):
        cache = ResultCache()
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(9))
        verify_many([spec], RuntimeOptions(cache=cache, task_timeout=1e-4))
        assert cache.stats.stores == 0

    def test_backends_do_not_share_entries(self):
        cache = ResultCache()
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(9))
        verify_many([spec], RuntimeOptions(cache=cache, backend="smt"))
        (milp,) = verify_many([spec], RuntimeOptions(cache=cache, backend="milp"))
        assert "cache_hit" not in milp.statistics
        assert milp.backend == "milp"


class TestSynthesizeMany:
    @pytest.fixture(scope="class")
    def problems(self):
        grid = ieee14()
        settings = SynthesisSettings(max_secured_buses=6)
        return [
            (
                AttackSpec.default(
                    grid,
                    goal=AttackGoal.states(bus),
                    limits=ResourceLimits(max_measurements=10),
                ),
                settings,
            )
            for bus in (9, 13)
        ]

    def test_matches_direct_calls(self, problems):
        batched = synthesize_many(problems, jobs=1)
        for (spec, settings), result in zip(problems, batched):
            direct = synthesize_architecture(spec, settings)
            assert result.feasible == direct.feasible
            assert result.architecture == direct.architecture

    def test_parallel_matches_serial(self, problems):
        serial = synthesize_many(problems, jobs=1)
        parallel = synthesize_many(problems, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.feasible == b.feasible
            assert a.architecture == b.architecture
            assert a.iterations == b.iterations

    def test_empty(self):
        assert synthesize_many([], jobs=4) == []
