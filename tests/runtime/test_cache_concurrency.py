"""The cache's concurrency contract, exercised rather than asserted.

Cross-process: N replica stand-ins hammer one shared directory — the
same keys written, read and evicted concurrently.  The contract is
*valid-or-miss*: a reader sees a complete entry or a miss, never torn
JSON surfacing as an exception or a half-populated result.  In-process:
many threads share one instance (a replica's event loop + its solver
executor threads) without corrupting the LRU or the counters.
"""

import concurrent.futures
import json
import threading

from repro.core.spec import AttackGoal, AttackSpec
from repro.core.verification import verify_attack
from repro.grid.cases import ieee14
from repro.runtime import ResultCache, spec_fingerprint

KEYS = [f"shared-key-{i}" for i in range(6)]


def make_result(bus=9):
    spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(bus))
    return verify_attack(spec)


def _hammer_process(directory, rounds, max_disk_entries, seed):
    """Worker: interleave put/get/evict on the shared directory.

    Returns (reads, hits, anomalies): anomalies are torn/invalid reads
    — any exception out of get(), or a hit whose outcome is wrong.
    """
    expected = make_result()
    cache = ResultCache(directory=directory, max_disk_entries=max_disk_entries)
    reads = hits = anomalies = 0
    for round_index in range(rounds):
        for offset, key in enumerate(KEYS):
            # writers and readers deliberately collide on every key;
            # stagger by seed so the processes interleave differently
            if (round_index + offset + seed) % 2 == 0:
                cache.put(key, expected)
            cache.clear_memory()  # force the disk tier every round
            try:
                hit = cache.get(key)
            except Exception:
                anomalies += 1
                continue
            reads += 1
            if hit is None:
                continue
            hits += 1
            if (
                hit.outcome != expected.outcome
                or hit.attack != expected.attack
                or hit.statistics.get("cache_hit") != 1
            ):
                anomalies += 1
    return reads, hits, anomalies


class TestCrossProcess:
    ROUNDS = 40

    def test_two_processes_hammering_same_keys_see_no_torn_reads(self, tmp_path):
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_hammer_process, str(tmp_path), self.ROUNDS, None, seed)
                for seed in (0, 1)
            ]
            outcomes = [future.result(timeout=300) for future in futures]
        total_reads = sum(reads for reads, _, _ in outcomes)
        total_hits = sum(hits for _, hits, _ in outcomes)
        total_anomalies = sum(anomalies for _, _, anomalies in outcomes)
        assert total_reads == 2 * self.ROUNDS * len(KEYS)
        assert total_anomalies == 0
        # the point of sharing a tier: most collisions are answered
        assert total_hits > total_reads // 2

    def test_concurrent_eviction_never_corrupts_readers(self, tmp_path):
        # max_disk_entries below the live key count: every round prunes
        # entries other processes are actively reading
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(
                    _hammer_process, str(tmp_path), self.ROUNDS, len(KEYS) // 2, seed
                )
                for seed in (0, 1)
            ]
            outcomes = [future.result(timeout=300) for future in futures]
        assert sum(anomalies for _, _, anomalies in outcomes) == 0
        # eviction actually happened under contention
        survivors = list(tmp_path.glob("*.json"))
        assert len(survivors) <= len(KEYS)
        # whatever survived is complete, parseable JSON
        for path in survivors:
            payload = json.loads(path.read_text())
            assert "outcome" in payload and "engine" in payload

    def test_atomic_writes_leave_no_temp_droppings(self, tmp_path):
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_hammer_process, str(tmp_path), 10, None, seed)
                for seed in (0, 1)
            ]
            for future in futures:
                future.result(timeout=300)
        assert not list(tmp_path.glob(".tmp-*"))


class TestThreadSafety:
    def test_many_threads_one_instance(self, tmp_path):
        """Event loop + executor threads share one ResultCache."""
        cache = ResultCache(
            directory=tmp_path, max_memory_entries=4, max_disk_entries=4
        )
        expected = make_result()
        errors = []
        barrier = threading.Barrier(6)

        def worker(seed):
            try:
                barrier.wait(timeout=10)
                for i in range(150):
                    key = KEYS[(i + seed) % len(KEYS)]
                    if i % 3 == 0:
                        cache.put(key, expected)
                    hit = cache.get(key)
                    if hit is not None and hit.outcome != expected.outcome:
                        raise AssertionError("torn in-memory read")
                    len(cache)
                    cache.snapshot()
                    if i % 50 == 0:
                        cache.clear_memory()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        # counters stayed coherent under the lock
        stats = cache.stats
        assert stats.hits + stats.misses == 6 * 150
        assert len(cache) <= 4

    def test_fingerprint_keys_are_process_stable(self):
        """Sanity: the shared tier's keys hash identically everywhere."""
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(9))
        with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_remote_fingerprint).result(timeout=60)
        assert remote == spec_fingerprint(spec)


def _remote_fingerprint():
    spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(9))
    return spec_fingerprint(spec)
