"""Tests for the runtime's warm-session registry and family fingerprints."""

import pytest

from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.verification import verify_attack
from repro.grid.model import Grid, Line
from repro.runtime import (
    RuntimeOptions,
    clear_session_registry,
    family_fingerprint,
    family_spec,
    session_registry_stats,
    verify_many,
    verify_one,
)
from repro.runtime.cache import ResultCache


def path_spec(n=4, target=None):
    grid = Grid(n, [Line(i, i, i + 1, 2.0) for i in range(1, n)])
    return AttackSpec.default(grid, goal=AttackGoal.states(target or n))


@pytest.fixture(autouse=True)
def fresh_registry():
    clear_session_registry()
    yield
    clear_session_registry()


class TestFamilyFingerprint:
    def test_limits_and_targets_do_not_split_families(self):
        spec = path_spec(4)
        same = [
            spec.with_limits(ResourceLimits(max_measurements=2)),
            spec.with_goal(AttackGoal.any()),
            spec.with_goal(AttackGoal.states(2, exclusive=True)),
        ]
        base = family_fingerprint(spec)
        assert all(family_fingerprint(s) == base for s in same)

    def test_structural_changes_split_families(self):
        spec = path_spec(4)
        assert family_fingerprint(spec) != family_fingerprint(path_spec(5))
        assert family_fingerprint(spec) != family_fingerprint(
            spec.with_secured_buses([2])
        )

    def test_family_spec_clears_limits_and_goal(self):
        spec = path_spec(4).with_limits(ResourceLimits(max_measurements=2))
        family = family_spec(spec)
        assert family.limits == ResourceLimits()
        assert not family.goal.target_states
        assert not family.goal.any_state


class TestWarmSessions:
    def test_same_family_batch_opens_one_session(self):
        spec = path_spec(4)
        specs = [
            spec.with_limits(ResourceLimits(max_measurements=k))
            for k in (None, 1, 2, 3, 4, 5)
        ]
        results = verify_many(specs, RuntimeOptions(sessions=True))
        cold = [verify_attack(s) for s in specs]
        assert [r.outcome for r in results] == [c.outcome for c in cold]
        stats = session_registry_stats()
        assert stats["opened"] == 1
        assert stats["reused"] == len(specs) - 1
        assert stats["probes"] == len(specs)

    def test_distinct_families_open_distinct_sessions(self):
        specs = [path_spec(4), path_spec(5)]
        verify_many(specs, RuntimeOptions(sessions=True))
        assert session_registry_stats()["opened"] == 2

    def test_disabled_by_default(self):
        verify_one(path_spec(4), RuntimeOptions())
        stats = session_registry_stats()
        assert stats["opened"] == 0 and stats["probes"] == 0

    def test_session_results_use_private_cache_keyspace(self):
        cache = ResultCache()
        spec = path_spec(4)
        verify_one(spec, RuntimeOptions(cache=cache, sessions=True))
        cold = verify_one(spec, RuntimeOptions(cache=cache))
        # the cold run must not see the session run's cache entry
        assert "cache_hit" not in cold.statistics
        warm_again = verify_one(spec, RuntimeOptions(cache=cache, sessions=True))
        assert warm_again.statistics.get("cache_hit") == 1

    def test_milp_backend_ignores_sessions_flag(self):
        pytest.importorskip("scipy")
        spec = path_spec(4)
        result = verify_one(spec, RuntimeOptions(backend="milp", sessions=True))
        assert result.backend == "milp"
        assert session_registry_stats()["opened"] == 0

    def test_registry_eviction_is_lru(self):
        from repro.runtime import executor

        old_limit = executor.SESSION_REGISTRY_LIMIT
        executor.SESSION_REGISTRY_LIMIT = 2
        try:
            verify_many(
                [path_spec(3), path_spec(4), path_spec(5)],
                RuntimeOptions(sessions=True),
            )
            stats = session_registry_stats()
            assert stats["opened"] == 3
            assert stats["evicted"] == 1
            assert stats["open"] == 2
            # oldest family (n=3) was evicted: touching it re-opens
            verify_one(path_spec(3), RuntimeOptions(sessions=True))
            assert session_registry_stats()["opened"] == 4
        finally:
            executor.SESSION_REGISTRY_LIMIT = old_limit

    def test_describe_reports_sessions(self):
        assert RuntimeOptions(sessions=True).describe()["sessions"] is True
        assert RuntimeOptions().describe()["sessions"] is False
