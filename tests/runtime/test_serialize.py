"""Canonical payload round-trips and fingerprint stability."""

import json

import pytest

from repro.core.casestudy import attack_objective_2, paper_line_attrs, paper_plan
from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.verification import verify_attack
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow
from repro.runtime import (
    attack_from_payload,
    attack_to_payload,
    canonical_json,
    payload_to_spec,
    result_from_payload,
    result_to_payload,
    spec_fingerprint,
    spec_to_payload,
)


def topology_spec():
    return attack_objective_2(secure_measurement_46=True, allow_topology_attack=True)


class TestSpecRoundTrip:
    def test_default_spec(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(9, 10))
        again = payload_to_spec(json.loads(canonical_json(spec_to_payload(spec))))
        assert again.grid.num_buses == 14
        assert again.goal == spec.goal
        assert again.plan.taken == spec.plan.taken
        assert [l.admittance for l in again.grid.lines] == [
            l.admittance for l in spec.grid.lines
        ]

    def test_rich_spec_roundtrip_preserves_fingerprint(self):
        spec = AttackSpec(
            grid=ieee14(),
            plan=paper_plan(ieee14()),
            line_attrs=paper_line_attrs(),
            goal=AttackGoal.states(9, 10, exclusive=True).with_distinct((9, 10)),
            limits=ResourceLimits(max_measurements=16, max_buses=7),
            allow_topology_attack=True,
            strict_knowledge=True,
        )
        again = payload_to_spec(spec_to_payload(spec))
        assert spec_fingerprint(again) == spec_fingerprint(spec)
        assert again.strict_knowledge and again.allow_topology_attack
        assert again.limits == spec.limits

    def test_operating_point_mode_roundtrips(self):
        grid = ieee14()
        flow = solve_dc_flow(grid, nominal_injections(grid))
        spec = AttackSpec.default(
            grid, goal=AttackGoal.states(9), allow_topology_attack=True
        ).with_operating_point(flow)
        again = payload_to_spec(spec_to_payload(spec))
        assert again.base_flows == dict(spec.base_flows)
        assert again.base_angles == dict(spec.base_angles)
        assert spec_fingerprint(again) == spec_fingerprint(spec)

    def test_reconstructed_spec_verifies_identically(self):
        spec = topology_spec()
        again = payload_to_spec(spec_to_payload(spec))
        a = verify_attack(spec)
        b = verify_attack(again)
        assert a.outcome == b.outcome
        assert a.attack == b.attack
        assert a.statistics["conflicts"] == b.statistics["conflicts"]

    def test_unsupported_format_rejected(self):
        payload = spec_to_payload(AttackSpec.default(ieee14()))
        payload["format"] = 99
        with pytest.raises(ValueError, match="format"):
            payload_to_spec(payload)


class TestFingerprint:
    def test_stable_across_calls(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        assert spec_fingerprint(spec) == spec_fingerprint(spec)

    def test_name_does_not_matter(self):
        grid = ieee14()
        renamed = type(grid)(grid.num_buses, grid.lines, name="other-name")
        a = AttackSpec.default(grid, goal=AttackGoal.any())
        b = AttackSpec.default(renamed, goal=AttackGoal.any())
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_problem_changes_change_the_key(self):
        base = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        assert spec_fingerprint(base) != spec_fingerprint(
            base.with_limits(ResourceLimits(max_measurements=5))
        )
        assert spec_fingerprint(base) != spec_fingerprint(
            base.with_goal(AttackGoal.states(9))
        )
        assert spec_fingerprint(base) != spec_fingerprint(
            base.with_secured_buses([2])
        )
        assert spec_fingerprint(base, backend="smt") != spec_fingerprint(
            base, backend="milp"
        )


class TestResultPayloads:
    def test_result_roundtrip(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(9))
        result = verify_attack(spec)
        again = result_from_payload(
            json.loads(json.dumps(result_to_payload(result)))
        )
        assert again.outcome == result.outcome
        assert again.backend == result.backend
        assert again.attack == result.attack
        assert again.statistics == result.statistics

    def test_attack_roundtrip_none(self):
        assert attack_to_payload(None) is None
        assert attack_from_payload(None) is None
