"""Cooperative configuration race: winners, determinism, metrics, knobs."""

import os

import pytest

from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.verification import VerificationOutcome, verify_attack
from repro.grid.cases import ieee14
from repro.runtime import (
    RuntimeOptions,
    attack_to_payload,
    parse_portfolio_mode,
    race_configs,
    replay_config_solo,
    verify_many,
)
from repro.runtime.executor import _M_PORTFOLIO_CLAUSES, _M_PORTFOLIO_CONFIG_WINS
from repro.runtime.portfolio import _sequential_config_race
from repro.smt.sat import SolverConfig, diversified_configs

SEARCH_STATS = ("conflicts", "decisions", "propagations", "learned_literals")


def sat_spec():
    return AttackSpec.default(ieee14(), goal=AttackGoal.states(9))


def unsat_spec():
    return AttackSpec.default(
        ieee14(),
        goal=AttackGoal.states(9),
        limits=ResourceLimits(max_measurements=1),
    )


def assert_replay_matches(spec, result, capture):
    """The determinism contract: winner == solo replay, bit for bit."""
    replay = replay_config_solo(
        spec, capture["winner_config"], capture["import_log"]
    )
    assert replay.outcome is result.outcome
    if result.attack is None:
        assert replay.attack is None
    else:
        assert attack_to_payload(replay.attack) == attack_to_payload(
            result.attack
        )
    for key in SEARCH_STATS:
        assert replay.statistics[key] == result.statistics[key], key
    assert (
        replay.statistics["clauses_imported"]
        == result.statistics["clauses_imported"]
    )


class TestParsePortfolioMode:
    @pytest.mark.parametrize("value", [False, None, "", 0])
    def test_falsy_disables(self, value):
        assert parse_portfolio_mode(value) == (None, 0)

    def test_backends_forms(self):
        assert parse_portfolio_mode(True) == ("backends", 2)
        assert parse_portfolio_mode("backends") == ("backends", 2)

    def test_configs_forms(self):
        assert parse_portfolio_mode("configs") == ("configs", 4)
        assert parse_portfolio_mode("configs:2") == ("configs", 2)
        assert parse_portfolio_mode("configs:8") == ("configs", 8)

    @pytest.mark.parametrize("value", ["configs:0", "configs:-1", "configs:x"])
    def test_bad_sizes_rejected(self, value):
        with pytest.raises(ValueError, match="bad portfolio size"):
            parse_portfolio_mode(value)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown portfolio mode"):
            parse_portfolio_mode("turbo")


class TestRaceConfigs:
    def test_winner_is_conclusive_and_marked(self):
        result = race_configs(sat_spec(), n=2)
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        stats = result.statistics
        assert stats["portfolio"] == 1
        assert stats["portfolio_mode"] == "configs"
        assert stats["portfolio_size"] == 2
        assert stats["portfolio_winner"] == "smt"
        tokens = {c.token() for c in diversified_configs(2)}
        assert stats["portfolio_winner_config"] in tokens
        assert stats["portfolio_clauses_exchanged"] >= 0

    def test_verdict_agrees_with_direct_verification(self):
        spec = sat_spec()
        raced = race_configs(spec, n=2)
        direct = verify_attack(spec, backend="smt")
        assert raced.outcome == direct.outcome

    def test_unsat_verdict_agrees_with_direct_verification(self):
        spec = unsat_spec()
        direct = verify_attack(spec, backend="smt")
        assert direct.outcome is VerificationOutcome.SECURE
        raced = race_configs(spec, n=2)
        assert raced.outcome is VerificationOutcome.SECURE
        assert raced.attack is None

    def test_single_config_degenerates_to_solo_solve(self):
        spec = sat_spec()
        result = race_configs(spec, n=1)
        direct = verify_attack(spec, backend="smt")
        assert result.outcome == direct.outcome
        assert result.statistics["portfolio_size"] == 1
        assert result.statistics["portfolio_winner_config"] == (
            SolverConfig().token()
        )

    def test_duplicate_config_tokens_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            race_configs(
                sat_spec(), configs=[SolverConfig(), SolverConfig()]
            )

    def test_explicit_config_list_is_honored(self):
        configs = [SolverConfig(), SolverConfig(seed=5)]
        result = race_configs(sat_spec(), configs=configs)
        assert result.statistics["portfolio_size"] == 2
        assert result.statistics["portfolio_winner_config"] in {
            c.token() for c in configs
        }

    def test_parent_environment_is_not_poisoned(self):
        before = (
            os.environ.get("REPRO_SAT_CONFIG"),
            os.environ.get("REPRO_SAT_KERNEL"),
        )
        race_configs(sat_spec(), n=2)
        after = (
            os.environ.get("REPRO_SAT_CONFIG"),
            os.environ.get("REPRO_SAT_KERNEL"),
        )
        assert after == before

    def test_collect_all_reports_every_contender(self):
        capture = {}
        result = race_configs(
            sat_spec(), n=2, capture=capture, collect_all=True
        )
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert len(capture["details"]) == 2
        for meta in capture["details"].values():
            assert "runtime_seconds" in meta
            assert "clauses_exported" in meta


class TestDeterminismContract:
    def test_sat_winner_replays_bit_identically(self):
        spec = sat_spec()
        capture = {}
        result = race_configs(spec, n=3, capture=capture)
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert_replay_matches(spec, result, capture)

    def test_unsat_winner_replays_bit_identically(self):
        spec = unsat_spec()
        capture = {}
        result = race_configs(spec, n=3, capture=capture)
        assert result.outcome is VerificationOutcome.SECURE
        assert_replay_matches(spec, result, capture)

    def test_vec_kernel_race_replays_bit_identically(self):
        spec = sat_spec()
        capture = {}
        result = race_configs(spec, n=2, sat_kernel="vec", capture=capture)
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        replay = replay_config_solo(
            spec,
            capture["winner_config"],
            capture["import_log"],
            sat_kernel="vec",
        )
        assert replay.outcome is result.outcome
        for key in SEARCH_STATS:
            assert replay.statistics[key] == result.statistics[key], key


class TestSequentialFallback:
    def test_first_conclusive_config_wins(self):
        result = _sequential_config_race(
            sat_spec(), diversified_configs(2), None, None, None
        )
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert result.statistics["portfolio_mode"] == "configs"
        assert result.statistics["portfolio_winner_config"] == (
            SolverConfig().token()
        )


class TestExecutorIntegration:
    def test_runtime_options_validate_portfolio_eagerly(self):
        with pytest.raises(ValueError):
            RuntimeOptions(portfolio="turbo")

    def test_backend_label_and_describe(self):
        options = RuntimeOptions(portfolio="configs:3")
        assert options.portfolio_mode() == "configs"
        assert options.portfolio_size() == 3
        assert options.backend_label() == "portfolio-configs3"
        described = options.describe()
        assert described["portfolio"] == "configs"
        assert described["portfolio_size"] == 3

    def test_verify_many_routes_to_config_race_and_counts_metrics(self):
        wins_before = {}
        clauses_before = _M_PORTFOLIO_CLAUSES.value()
        results = verify_many(
            [sat_spec()],
            RuntimeOptions(jobs=1, portfolio="configs:2", cache=None),
        )
        assert results[0].outcome is VerificationOutcome.ATTACK_EXISTS
        stats = results[0].statistics
        assert stats["portfolio_mode"] == "configs"
        winner = stats["portfolio_winner_config"]
        assert (
            _M_PORTFOLIO_CONFIG_WINS.value(config=winner)
            >= wins_before.get(winner, 0) + 1
        )
        assert (
            _M_PORTFOLIO_CLAUSES.value()
            == clauses_before + stats["portfolio_clauses_exchanged"]
        )
