"""Portfolio racing: conclusive winners, fallbacks, inconclusive runs."""

import pytest

from repro.core.spec import AttackGoal, AttackSpec
from repro.core.verification import VerificationOutcome, verify_attack
from repro.grid.cases import ieee14
from repro.runtime import race_backends
from repro.runtime.portfolio import _sequential_race


def sat_spec():
    return AttackSpec.default(ieee14(), goal=AttackGoal.states(9))


class TestRace:
    def test_winner_is_conclusive_and_marked(self):
        result = race_backends(sat_spec())
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert result.backend in ("smt", "milp")
        assert result.statistics.get("portfolio") == 1
        assert result.runtime_seconds >= 0

    def test_winner_agrees_with_direct_verification(self):
        spec = sat_spec()
        raced = race_backends(spec)
        direct = verify_attack(spec, backend=raced.backend)
        assert raced.outcome == direct.outcome

    def test_single_backend_degenerates_to_direct_call(self):
        spec = sat_spec()
        result = race_backends(spec, backends=("smt",))
        direct = verify_attack(spec, backend="smt")
        assert result.outcome == direct.outcome
        assert result.attack == direct.attack
        assert result.statistics["portfolio"] == 1

    def test_no_backends_rejected(self):
        with pytest.raises(ValueError):
            race_backends(sat_spec(), backends=())

    def test_timeout_returns_unknown(self):
        result = race_backends(sat_spec(), timeout=1e-6)
        assert result.outcome.value == "unknown"
        assert result.backend == "portfolio"
        assert result.statistics.get("portfolio_inconclusive") == 1


class TestSequentialFallback:
    def test_first_conclusive_answer_wins(self):
        spec = sat_spec()
        result = _sequential_race(spec, ("smt", "milp"), epsilon=None)
        assert result.backend == "smt"
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
        assert result.statistics["portfolio"] == 1

    def test_skips_inconclusive_backend(self):
        spec = sat_spec()
        # a 1-conflict budget makes the SMT engine return UNKNOWN; the
        # race must move on to MILP and return its conclusive answer
        import repro.runtime.portfolio as portfolio_module

        real = portfolio_module.verify_attack

        def budgeted(spec, backend="smt", **kwargs):
            if backend == "smt":
                kwargs["max_conflicts"] = 1
            return real(spec, backend=backend, **kwargs)

        portfolio_module.verify_attack = budgeted
        try:
            result = _sequential_race(spec, ("smt", "milp"), epsilon=None)
        finally:
            portfolio_module.verify_attack = real
        assert result.backend == "milp"
        assert result.outcome is VerificationOutcome.ATTACK_EXISTS
