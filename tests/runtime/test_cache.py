"""Memoizing result cache: LRU memory tier, disk tier, stats."""

import json

from repro.core.spec import AttackGoal, AttackSpec
from repro.core.verification import verify_attack
from repro.grid.cases import ieee14
from repro.runtime import ResultCache, default_cache_dir, spec_fingerprint


def make_result(bus=9):
    spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(bus))
    return spec_fingerprint(spec), verify_attack(spec)


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultCache()
        key, result = make_result()
        assert cache.get(key) is None
        cache.put(key, result)
        hit = cache.get(key)
        assert hit is not None
        assert hit.outcome == result.outcome
        assert hit.statistics.get("cache_hit") == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_original_result_not_mutated_by_hit_marking(self):
        cache = ResultCache()
        key, result = make_result()
        cache.put(key, result)
        cache.get(key)
        assert "cache_hit" not in result.statistics

    def test_lru_eviction(self):
        cache = ResultCache(max_memory_entries=2)
        key, result = make_result()
        for i in range(3):
            cache.put(f"{key}-{i}", result)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(f"{key}-0") is None  # oldest entry evicted
        assert cache.get(f"{key}-2") is not None

    def test_lru_get_refreshes_recency(self):
        cache = ResultCache(max_memory_entries=2)
        key, result = make_result()
        cache.put("a", result)
        cache.put("b", result)
        cache.get("a")  # "a" is now most recent
        cache.put("c", result)  # evicts "b"
        assert cache.get("a") is not None
        assert cache.get("b") is None


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        key, result = make_result()
        first = ResultCache(directory=tmp_path)
        first.put(key, result)

        second = ResultCache(directory=tmp_path)
        hit = second.get(key)
        assert hit is not None
        assert hit.outcome == result.outcome
        assert hit.attack == result.attack
        assert second.stats.disk_hits == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        key, result = make_result()
        ResultCache(directory=tmp_path).put(key, result)
        cache = ResultCache(directory=tmp_path)
        cache.get(key)
        cache.get(key)
        assert cache.stats.disk_hits == 1  # second hit served from memory
        assert cache.stats.hits == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        key, result = make_result()
        cache = ResultCache(directory=tmp_path)
        cache.put(key, result)
        (entry,) = list(tmp_path.glob("*.json"))
        entry.write_text("{not json")
        cache.clear_memory()
        assert cache.get(key) is None

    def test_stale_entry_is_a_miss(self, tmp_path):
        key, result = make_result()
        cache = ResultCache(directory=tmp_path)
        cache.put(key, result)
        (entry,) = list(tmp_path.glob("*.json"))
        data = json.loads(entry.read_text())
        del data["outcome"]  # an entry written by an older schema
        entry.write_text(json.dumps(data))
        cache.clear_memory()
        assert cache.get(key) is None

    def test_stats_as_dict(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        key, result = make_result()
        cache.get(key)
        cache.put(key, result)
        cache.get(key)
        d = cache.stats.as_dict()
        assert d["hits"] == 1 and d["misses"] == 1 and d["stores"] == 1


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro-ufdi"


class TestDiskPruning:
    def _fill(self, cache, key, result, count):
        import os

        for i in range(count):
            cache.put(f"{key}-{i}", result)
            # force strictly increasing mtimes so "oldest" is unambiguous
            path = cache._disk_path(f"{key}-{i}")
            os.utime(path, (1_000_000 + i, 1_000_000 + i))

    def test_oldest_mtime_entries_pruned(self, tmp_path):
        key, result = make_result()
        cache = ResultCache(directory=tmp_path, max_disk_entries=2)
        self._fill(cache, key, result, 4)
        cache._prune_disk()  # utime above reordered ages after the last put
        remaining = sorted(p.stem for p in tmp_path.glob("*.json"))
        assert remaining == [f"{key}-2", f"{key}-3"]
        assert cache.stats.disk_evictions >= 2

    def test_unbounded_without_max_disk_entries(self, tmp_path):
        key, result = make_result()
        cache = ResultCache(directory=tmp_path)
        for i in range(5):
            cache.put(f"{key}-{i}", result)
        assert len(list(tmp_path.glob("*.json"))) == 5
        assert cache.stats.disk_evictions == 0

    def test_disk_evictions_in_as_dict(self, tmp_path):
        key, result = make_result()
        cache = ResultCache(directory=tmp_path, max_disk_entries=1)
        self._fill(cache, key, result, 3)
        cache._prune_disk()
        d = cache.stats.as_dict()
        assert d["disk_evictions"] >= 1
        assert 0.0 <= d["hit_rate"] <= 1.0

    def test_rejects_nonpositive_limit(self):
        import pytest

        with pytest.raises(ValueError):
            ResultCache(max_disk_entries=0)

    def test_snapshot_reports_store_sizes(self, tmp_path):
        key, result = make_result()
        cache = ResultCache(directory=tmp_path, max_disk_entries=8)
        cache.put(key, result)
        cache.get(key)
        snap = cache.snapshot()
        assert snap["memory_entries"] == 1
        assert snap["disk_entries"] == 1
        assert snap["max_disk_entries"] == 8
        assert snap["directory"] == str(tmp_path)
        assert snap["hit_rate"] == 1.0

    def test_memory_only_snapshot_has_no_disk_fields(self):
        cache = ResultCache()
        snap = cache.snapshot()
        assert snap["directory"] is None
        assert "disk_entries" not in snap


class TestStatsRegression:
    def test_hit_rate_is_zero_with_no_lookups(self):
        cache = ResultCache()
        assert cache.hit_rate == 0.0
        assert cache.stats.hit_rate() == 0.0
        assert cache.snapshot()["hit_rate"] == 0.0

    def test_hit_rate_tracks_lookups(self):
        cache = ResultCache()
        key, result = make_result()
        cache.get(key)  # miss
        cache.put(key, result)
        cache.get(key)  # hit
        assert cache.hit_rate == 0.5

    def test_snapshot_is_isolated_from_mutation(self, tmp_path):
        key, result = make_result()
        cache = ResultCache(directory=tmp_path, max_disk_entries=8)
        cache.put(key, result)
        cache.get(key)
        snap = cache.snapshot()
        snap["hit_rate"] = 99.0
        snap["memory_entries"] = -1
        for value in snap.values():
            if isinstance(value, dict):
                value.clear()
        fresh = cache.snapshot()
        assert fresh["hit_rate"] == 1.0
        assert fresh["memory_entries"] == 1
