"""Tests for the security-architecture synthesis loop (Algorithm 1)."""

import pytest

from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.synthesis import (
    SynthesisSettings,
    enumerate_architectures,
    synthesize_architecture,
    synthesize_measurement_architecture,
)
from repro.core.verification import verify_attack
from repro.estimation.measurement import MeasurementPlan
from repro.grid.cases import ieee14
from repro.grid.model import Grid, Line


def path_spec(n=4):
    grid = Grid(n, [Line(i, i, i + 1, 2.0) for i in range(1, n)])
    return AttackSpec.default(grid, goal=AttackGoal.any())


class TestSettingsValidation:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SynthesisSettings(max_secured_buses=-1)

    def test_unknown_blocking_rejected(self):
        with pytest.raises(ValueError, match="blocking"):
            SynthesisSettings(max_secured_buses=1, blocking="magic")


class TestBasicSynthesis:
    def test_path_grid_architecture(self):
        spec = path_spec(4)
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=3))
        assert result.architecture is not None
        check = verify_attack(spec.with_secured_buses(result.architecture))
        assert not check.attack_exists

    def test_budget_zero_fails_when_attacks_exist(self):
        spec = path_spec(4)
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=0))
        assert result.architecture is None

    def test_trivially_secure_model_yields_empty_architecture(self):
        # an attacker with a 0-measurement budget can do nothing
        grid = ieee14()
        spec = AttackSpec.default(
            grid,
            goal=AttackGoal.any(),
            limits=ResourceLimits(max_measurements=0),
        )
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=3))
        assert result.architecture == []

    def test_iterations_counted(self):
        spec = path_spec(4)
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=3))
        assert result.iterations >= 1
        assert result.runtime_seconds > 0

    def test_counterexamples_collected(self):
        spec = path_spec(4)
        result = synthesize_architecture(
            spec,
            SynthesisSettings(max_secured_buses=3),
            collect_counterexamples=True,
        )
        assert len(result.counterexamples) == result.iterations - 1


class TestBlockingModes:
    @pytest.mark.parametrize("blocking", ["counterexample", "subset", "exact"])
    def test_all_modes_agree_on_feasibility(self, blocking):
        spec = path_spec(4)
        result = synthesize_architecture(
            spec, SynthesisSettings(max_secured_buses=3, blocking=blocking)
        )
        assert result.architecture is not None
        check = verify_attack(spec.with_secured_buses(result.architecture))
        assert not check.attack_exists

    @pytest.mark.parametrize("blocking", ["counterexample", "subset"])
    def test_infeasibility_detected(self, blocking):
        spec = path_spec(4)
        result = synthesize_architecture(
            spec, SynthesisSettings(max_secured_buses=0, blocking=blocking)
        )
        assert result.architecture is None

    def test_counterexample_mode_converges_fast(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        fast = synthesize_architecture(
            spec, SynthesisSettings(max_secured_buses=5, blocking="counterexample")
        )
        assert fast.architecture is not None
        assert fast.iterations < 100


class TestConstraints:
    def test_excluded_buses_respected(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        settings = SynthesisSettings(
            max_secured_buses=6, excluded_buses=frozenset({2, 6})
        )
        result = synthesize_architecture(spec, settings)
        assert result.architecture is not None
        assert not set(result.architecture) & {2, 6}

    def test_budget_respected(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=5))
        assert len(result.architecture) <= 5

    def test_neighbor_pruning_excludes_adjacent_pairs(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        result = synthesize_architecture(
            spec, SynthesisSettings(max_secured_buses=6, neighbor_pruning=True)
        )
        arch = result.architecture
        assert arch is not None
        neighbors = {
            (line.from_bus, line.to_bus) for line in spec.grid.lines
        }
        for a in arch:
            for b in arch:
                assert (a, b) not in neighbors

    def test_pruning_off_still_works(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        result = synthesize_architecture(
            spec, SynthesisSettings(max_secured_buses=6, neighbor_pruning=False)
        )
        assert result.architecture is not None


class TestEnumeration:
    def test_enumerated_architectures_all_work(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        architectures = enumerate_architectures(
            spec, SynthesisSettings(max_secured_buses=5), limit=3
        )
        assert architectures
        for arch in architectures:
            check = verify_attack(spec.with_secured_buses(arch))
            assert not check.attack_exists

    def test_enumeration_is_an_antichain(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        architectures = enumerate_architectures(
            spec, SynthesisSettings(max_secured_buses=5), limit=4
        )
        for i, a in enumerate(architectures):
            for j, b in enumerate(architectures):
                if i != j:
                    assert not set(a) <= set(b)

    def test_limit_respected(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        architectures = enumerate_architectures(
            spec, SynthesisSettings(max_secured_buses=5), limit=2
        )
        assert len(architectures) <= 2


class TestMeasurementLevelSynthesis:
    def test_measurement_architecture_works(self):
        spec = path_spec(4)
        result = synthesize_measurement_architecture(spec, max_secured_measurements=6)
        assert result.architecture is not None
        check = verify_attack(
            spec.with_secured_measurements(result.architecture)
        )
        assert not check.attack_exists

    def test_insufficient_measurement_budget(self):
        spec = path_spec(4)
        result = synthesize_measurement_architecture(spec, max_secured_measurements=1)
        assert result.architecture is None

    def test_ieee14_measurement_architecture(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        result = synthesize_measurement_architecture(spec, max_secured_measurements=13)
        assert result.architecture is not None
        assert len(result.architecture) <= 13


class TestCoreMinimization:
    def test_minimized_never_larger_and_still_blocks(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=6))
        assert result.feasible
        assert result.uncored_architecture is not None
        assert len(result.architecture) <= len(result.uncored_architecture)
        assert set(result.architecture) <= set(result.uncored_architecture)
        check = verify_attack(spec.with_secured_buses(result.architecture))
        assert not check.attack_exists

    def test_strictly_smaller_on_ieee14(self):
        # with a generous budget the selector over-provisions; the UNSAT
        # core must strip at least one unused bus on this instance
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=4))
        assert result.feasible
        assert len(result.architecture) < len(result.uncored_architecture)

    def test_disabled_flag_returns_raw_candidate(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        cored = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=6))
        raw = synthesize_architecture(
            spec, SynthesisSettings(max_secured_buses=6, core_minimize=False)
        )
        assert raw.uncored_architecture is None
        # the selection loop is unchanged: the raw candidate is the same
        assert raw.architecture == cored.uncored_architecture

    def test_enumeration_results_stay_valid_with_cores(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        cored = enumerate_architectures(
            spec, SynthesisSettings(max_secured_buses=5), limit=3
        )
        assert cored
        for arch in cored:
            assert not verify_attack(spec.with_secured_buses(arch)).attack_exists
        # still an antichain after core-sharpened blocking
        for i, a in enumerate(cored):
            for j, b in enumerate(cored):
                if i != j:
                    assert not set(a) <= set(b)

    def test_measurement_synthesis_minimized_still_blocks(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        result = synthesize_measurement_architecture(spec, max_secured_measurements=13)
        assert result.feasible
        assert result.uncored_architecture is not None
        assert len(result.architecture) <= len(result.uncored_architecture)
        check = verify_attack(spec.with_secured_measurements(result.architecture))
        assert not check.attack_exists

    def test_infeasible_has_no_uncored(self):
        spec = path_spec(4)
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=0))
        assert result.architecture is None
        assert result.uncored_architecture is None
