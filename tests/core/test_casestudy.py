"""The paper's Section III-I / IV-E case studies as regression tests.

These pin the published results; the benchmark variants in
``benchmarks/bench_casestudy_*.py`` time the same runs.
"""

import pytest

from repro.core.casestudy import (
    INACCESSIBLE_MEASUREMENTS,
    NON_CORE_LINES,
    SECURED_MEASUREMENTS,
    UNKNOWN_ADMITTANCE_LINES,
    UNTAKEN_MEASUREMENTS,
    attack_objective_1,
    attack_objective_2,
    paper_line_attrs,
    paper_plan,
    synthesis_scenario,
)
from repro.core.synthesis import SynthesisSettings, synthesize_architecture
from repro.core.verification import verify_attack


class TestConfiguration:
    def test_plan_counts(self):
        plan = paper_plan()
        assert plan.num_potential == 54
        assert len(plan.taken) == 44
        assert plan.taken.isdisjoint(UNTAKEN_MEASUREMENTS)

    def test_secured_set(self):
        plan = paper_plan()
        assert plan.secured == set(SECURED_MEASUREMENTS)

    def test_line_attrs(self):
        attrs = paper_line_attrs()
        for i in UNKNOWN_ADMITTANCE_LINES:
            assert not attrs[i].knows_admittance
        for i in NON_CORE_LINES:
            assert not attrs[i].fixed
        assert attrs[1].fixed

    def test_scenario_numbers(self):
        with pytest.raises(ValueError):
            synthesis_scenario(4)


class TestObjective1:
    """Published: SAT at 16/7 on buses {4,7,9,10,11,13,14}; UNSAT at
    15 measurements or 6 buses; equal-change SAT at 15/6 with the exact
    published vector."""

    def test_sat_at_16_7(self):
        spec = attack_objective_1(16, 7, distinct=True)
        result = verify_attack(spec)
        assert result.attack_exists
        assert result.attack.compromised_buses(spec.plan) == [4, 7, 9, 10, 11, 13, 14]

    def test_unsat_at_15_measurements(self):
        assert not verify_attack(attack_objective_1(15, 7, True)).attack_exists

    def test_unsat_at_6_buses(self):
        assert not verify_attack(attack_objective_1(16, 6, True)).attack_exists

    def test_equal_change_matches_paper_exactly(self):
        spec = attack_objective_1(15, 6, distinct=False)
        result = verify_attack(spec)
        assert result.attack.altered_measurements == [
            8, 9, 11, 13, 28, 29, 31, 33, 39, 44, 46, 47, 49, 51, 53,
        ]
        assert result.attack.compromised_buses(spec.plan) == [4, 6, 7, 9, 11, 13]

    def test_states_9_10_among_attacked(self):
        result = verify_attack(attack_objective_1(16, 7, True))
        assert {9, 10} <= set(result.attack.attacked_states)

    def test_distinct_changes_differ(self):
        result = verify_attack(attack_objective_1(16, 7, True))
        d = result.attack.state_deltas
        assert d[9] != d[10]


class TestObjective2:
    """Published: unique vector {12, 32, 39, 46, 53}; securing 46 makes
    it UNSAT; topology poisoning revives it via line 13 with
    {12, 13, 32, 33, 39, 53}."""

    def test_exact_vector(self):
        result = verify_attack(attack_objective_2())
        assert result.attack.altered_measurements == [12, 32, 39, 46, 53]
        assert result.attack.attacked_states == [12]

    def test_securing_46_blocks(self):
        assert not verify_attack(attack_objective_2(True)).attack_exists

    def test_topology_poisoning_revives(self):
        result = verify_attack(attack_objective_2(True, True))
        assert result.attack.altered_measurements == [12, 13, 32, 33, 39, 53]
        assert result.attack.excluded_lines == frozenset({13})
        assert result.attack.attacked_states == [12]

    def test_milp_backend_agrees_on_all_three(self):
        for spec, expect in [
            (attack_objective_2(), True),
            (attack_objective_2(True), False),
            (attack_objective_2(True, True), True),
        ]:
            assert verify_attack(spec, backend="milp").attack_exists is expect


class TestSynthesisScenarios:
    """Qualitative published behaviour: a feasible architecture exists,
    tighter budgets are infeasible, and attacker power never shrinks
    the required budget."""

    @pytest.mark.parametrize("scenario", [1, 2, 3])
    def test_feasible_at_4(self, scenario):
        spec = synthesis_scenario(scenario)
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=4))
        assert result.architecture is not None
        check = verify_attack(spec.with_secured_buses(result.architecture))
        assert not check.attack_exists

    @pytest.mark.parametrize("scenario", [1, 2, 3])
    def test_infeasible_at_3(self, scenario):
        spec = synthesis_scenario(scenario)
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=3))
        assert result.architecture is None

    def test_scenario3_architecture_blocks_topology_attacks(self):
        spec = synthesis_scenario(3)
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=4))
        secured = spec.with_secured_buses(result.architecture)
        check = verify_attack(secured)
        assert not check.attack_exists
