"""Tests for encode-once/probe-many verification sessions."""

import pytest

from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.verification import (
    UfdiEncoder,
    VerificationSession,
    verify_attack,
)
from repro.grid.cases import ieee14
from repro.grid.model import Grid, Line


def path_grid(n=4):
    return Grid(n, [Line(i, i, i + 1, 2.0) for i in range(1, n)])


class TestSessionAgreement:
    def test_budget_probes_match_cold_solves(self):
        spec = AttackSpec.default(path_grid(4), goal=AttackGoal.states(4))
        session = VerificationSession(spec)
        for k in (None, 0, 1, 2, 3, 4, 5, 10):
            cold = verify_attack(spec.with_limits(ResourceLimits(max_measurements=k)))
            warm = session.probe(max_measurements=k)
            assert warm.outcome == cold.outcome, k
        assert session.encodes == 1
        assert session.probes == 8

    def test_bus_budget_probes(self):
        spec = AttackSpec.default(path_grid(4), goal=AttackGoal.states(4))
        session = VerificationSession(spec)
        for k in (None, 0, 1, 2, 3):
            cold = verify_attack(spec.with_limits(ResourceLimits(max_buses=k)))
            assert session.probe(max_buses=k).outcome == cold.outcome, k

    def test_goal_probes_match_cold_solves(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        session = VerificationSession(spec)
        goals = [
            AttackGoal.states(5),
            AttackGoal.states(10),
            AttackGoal.any(),
            AttackGoal.states(8, exclusive=True),
            AttackGoal(),  # no requirement: trivially SAT
        ]
        for goal in goals:
            cold = verify_attack(spec.with_goal(goal))
            assert session.probe(goal=goal).outcome == cold.outcome, goal
        assert session.encodes == 1

    def test_probe_spec_uses_spec_limits_and_goal(self):
        base = AttackSpec.default(path_grid(4), goal=AttackGoal.states(4))
        session = VerificationSession(base)
        tight = base.with_limits(ResourceLimits(max_measurements=1))
        assert not session.probe_spec(tight).attack_exists
        loose = base.with_limits(ResourceLimits(max_measurements=6))
        assert session.probe_spec(loose).attack_exists

    def test_sat_probe_extracts_valid_attack(self):
        spec = AttackSpec.default(path_grid(4), goal=AttackGoal.states(4, exclusive=True))
        session = VerificationSession(spec)
        result = session.probe()
        assert result.attack_exists
        # same witness-footprint property as the cold path
        assert result.attack.altered_measurements == [3, 6, 9, 10]

    def test_statistics_carry_session_counters(self):
        spec = AttackSpec.default(path_grid(3), goal=AttackGoal.states(3))
        session = VerificationSession(spec)
        session.probe(max_measurements=0)
        session.probe()
        stats = session.statistics()
        assert stats["encodes"] == 1
        assert stats["session_probes"] == 2
        assert stats["session_unsat_probes"] == 1


class TestSessionFamilies:
    def test_compatible_ignores_limits_and_goal_targets(self):
        base = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        session = VerificationSession(base)
        other = base.with_limits(ResourceLimits(max_measurements=3)).with_goal(
            AttackGoal.any()
        )
        assert session.compatible(other)

    def test_incompatible_grid_rejected(self):
        session = VerificationSession(
            AttackSpec.default(path_grid(4), goal=AttackGoal.any())
        )
        other = AttackSpec.default(path_grid(5), goal=AttackGoal.any())
        assert not session.compatible(other)
        with pytest.raises(ValueError, match="family"):
            session.probe_spec(other)

    def test_incompatible_plan_rejected(self):
        base = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        session = VerificationSession(base)
        assert not session.compatible(base.with_secured_buses([5]))

    def test_distinct_pairs_must_match_statically(self):
        base = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        session = VerificationSession(base)
        probing = AttackGoal(
            target_states=frozenset({8}), distinct_pairs=((8, 9),)
        )
        with pytest.raises(ValueError, match="distinct"):
            session.probe(goal=probing)


class TestEncoderModes:
    def test_budget_override_requires_symbolic_mode(self):
        spec = AttackSpec.default(path_grid(3), goal=AttackGoal.states(3))
        encoder = UfdiEncoder(spec)
        with pytest.raises(RuntimeError, match="symbolic_budgets"):
            encoder.check(max_measurements=2)

    def test_goal_override_requires_symbolic_mode(self):
        spec = AttackSpec.default(path_grid(3), goal=AttackGoal.states(3))
        encoder = UfdiEncoder(spec)
        with pytest.raises(RuntimeError, match="symbolic_goal"):
            encoder.check(goal=AttackGoal.any())

    def test_symbolic_budget_encoder_honours_spec_limits_by_default(self):
        spec = AttackSpec.default(
            path_grid(4),
            goal=AttackGoal.states(4),
            limits=ResourceLimits(max_measurements=1),
        )
        from repro.smt import Result

        encoder = UfdiEncoder(spec, symbolic_budgets=True)
        assert encoder.check() is Result.UNSAT
        assert encoder.check(max_measurements=None) is Result.SAT

    def test_core_uses_budget_distinguishes_structural_unsat(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        session = VerificationSession(spec)
        # budget-caused UNSAT
        assert not session.probe(max_measurements=1).attack_exists
        assert session.core_uses_budget()
        # structurally trivially SAT probe leaves no core claim
        assert session.probe().attack_exists

    def test_core_secured_buses_subset_of_assumed(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        session = VerificationSession(spec, symbolic_security=True)
        secured = [4, 7, 9, 2, 5]
        result = session.probe(secured_buses=secured, max_measurements=4)
        if not result.attack_exists:
            core = session.core_secured_buses()
            assert set(core) <= set(secured)
