"""Tests for synthesis against a list of security requirements."""

import pytest

from repro.core.casestudy import paper_line_attrs, paper_plan
from repro.core.spec import AttackGoal, AttackSpec, LineAttributes, ResourceLimits
from repro.core.synthesis import (
    SynthesisSettings,
    synthesize_against_all,
    synthesize_architecture,
)
from repro.core.verification import verify_attack
from repro.grid.cases import ieee14
from repro.grid.model import Grid, Line


def path_grid(n=4):
    return Grid(n, [Line(i, i, i + 1, 2.0) for i in range(1, n)])


class TestMultiRequirement:
    def test_single_spec_matches_plain_synthesis(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        settings = SynthesisSettings(max_secured_buses=4)
        multi = synthesize_against_all([spec], settings)
        single = synthesize_architecture(spec, settings)
        assert (multi.architecture is None) == (single.architecture is None)
        if multi.architecture is not None:
            check = verify_attack(spec.with_secured_buses(multi.architecture))
            assert not check.attack_exists

    def test_architecture_blocks_every_requirement(self):
        grid = ieee14()
        base = AttackSpec.default(grid)
        requirements = [
            base.with_goal(AttackGoal.states(10)),
            base.with_goal(AttackGoal.states(12, exclusive=True)),
            base.with_goal(AttackGoal.states(8)),
        ]
        result = synthesize_against_all(
            requirements, SynthesisSettings(max_secured_buses=5)
        )
        assert result.architecture is not None
        for spec in requirements:
            check = verify_attack(spec.with_secured_buses(result.architecture))
            assert not check.attack_exists

    def test_joint_requirement_can_cost_more_than_each(self):
        grid = path_grid(5)
        base = AttackSpec.default(grid)
        left = base.with_goal(AttackGoal.states(2, exclusive=True))
        right = base.with_goal(AttackGoal.states(5, exclusive=True))

        def minimum(specs):
            for budget in range(0, 6):
                result = synthesize_against_all(
                    specs, SynthesisSettings(max_secured_buses=budget)
                )
                if result.architecture is not None:
                    return len(result.architecture)
            return None

        joint = minimum([left, right])
        assert joint is not None
        assert joint >= max(minimum([left]), minimum([right]))

    def test_mixed_capabilities(self):
        grid = ieee14()
        plan = paper_plan(grid)
        weak = AttackSpec(
            grid=grid,
            plan=plan,
            line_attrs=paper_line_attrs(),
            goal=AttackGoal.any(),
            limits=ResourceLimits(max_measurements=10),
        )
        topo = AttackSpec(
            grid=grid,
            plan=plan,
            line_attrs=paper_line_attrs(),
            goal=AttackGoal.any(),
            allow_topology_attack=True,
        )
        result = synthesize_against_all(
            [weak, topo], SynthesisSettings(max_secured_buses=5)
        )
        assert result.architecture is not None
        for spec in (weak, topo):
            check = verify_attack(spec.with_secured_buses(result.architecture))
            assert not check.attack_exists

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            synthesize_against_all([], SynthesisSettings(max_secured_buses=1))

    def test_infeasible_joint_requirement(self):
        grid = path_grid(4)
        base = AttackSpec.default(grid)
        specs = [base.with_goal(AttackGoal.any())]
        result = synthesize_against_all(
            specs, SynthesisSettings(max_secured_buses=0)
        )
        assert result.architecture is None


class TestInputValidation:
    def test_mismatched_grids_rejected(self):
        a = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        b = AttackSpec.default(path_grid(4), goal=AttackGoal.any())
        with pytest.raises(ValueError, match="share"):
            synthesize_against_all([a, b], SynthesisSettings(max_secured_buses=2))

    def test_mismatched_measurement_plans_rejected(self):
        grid = ieee14()
        full = AttackSpec.default(grid, goal=AttackGoal.any())
        thinned = full.with_plan(paper_plan(grid, secured=set(), inaccessible=set()))
        assert full.plan.taken != thinned.plan.taken
        with pytest.raises(ValueError, match="share"):
            synthesize_against_all(
                [full, thinned], SynthesisSettings(max_secured_buses=2)
            )

    def test_mismatched_line_admittances_rejected(self):
        grid = ieee14()
        lines = [
            Line(l.index, l.from_bus, l.to_bus, l.admittance * (2.0 if l.index == 1 else 1.0))
            for l in grid.lines
        ]
        retuned = Grid(grid.num_buses, lines, name=grid.name)
        a = AttackSpec.default(grid, goal=AttackGoal.any())
        b = AttackSpec.default(retuned, goal=AttackGoal.any())
        with pytest.raises(ValueError, match="share"):
            synthesize_against_all([a, b], SynthesisSettings(max_secured_buses=2))


class TestParallelParity:
    """jobs=2 must reproduce the serial CEGIS run bit for bit."""

    @pytest.fixture(scope="class")
    def requirements(self):
        grid = ieee14()
        base = AttackSpec.default(grid)
        return [
            base.with_goal(AttackGoal.states(10)),
            base.with_goal(AttackGoal.states(12, exclusive=True)),
            base.with_goal(AttackGoal.states(8)),
        ]

    def test_parallel_bit_identical_to_serial(self, requirements):
        settings = SynthesisSettings(max_secured_buses=5)
        serial = synthesize_against_all(requirements, settings, jobs=1)
        parallel = synthesize_against_all(requirements, settings, jobs=2)
        assert parallel.architecture == serial.architecture
        assert parallel.iterations == serial.iterations
        assert parallel.counterexamples == serial.counterexamples

    def test_parallel_infeasible_matches_serial(self, requirements):
        settings = SynthesisSettings(max_secured_buses=0)
        serial = synthesize_against_all(requirements, settings, jobs=1)
        parallel = synthesize_against_all(requirements, settings, jobs=2)
        assert serial.architecture is None
        assert parallel.architecture is None
        assert parallel.iterations == serial.iterations


class TestUnionOfCores:
    def test_union_core_blocks_every_spec(self):
        base = AttackSpec.default(ieee14())
        requirements = [
            base.with_goal(AttackGoal.states(5)),
            base.with_goal(AttackGoal.states(8)),
            base.with_goal(AttackGoal.states(10)),
        ]
        result = synthesize_against_all(
            requirements, SynthesisSettings(max_secured_buses=6)
        )
        assert result.feasible
        assert result.uncored_architecture is not None
        assert set(result.architecture) <= set(result.uncored_architecture)
        for spec in requirements:
            check = verify_attack(spec.with_secured_buses(result.architecture))
            assert not check.attack_exists

    def test_pool_and_serial_agree_on_minimization(self):
        base = AttackSpec.default(ieee14())
        requirements = [
            base.with_goal(AttackGoal.states(5)),
            base.with_goal(AttackGoal.states(8)),
            base.with_goal(AttackGoal.states(10)),
        ]
        settings = SynthesisSettings(max_secured_buses=6)
        serial = synthesize_against_all(requirements, settings, jobs=1)
        pooled = synthesize_against_all(requirements, settings, jobs=2)
        assert serial.architecture == pooled.architecture
        assert serial.uncored_architecture == pooled.uncored_architecture
        assert serial.iterations == pooled.iterations

    def test_core_minimize_off_keeps_raw_candidate(self):
        base = AttackSpec.default(ieee14())
        requirements = [base.with_goal(AttackGoal.states(8))]
        raw = synthesize_against_all(
            requirements,
            SynthesisSettings(max_secured_buses=6, core_minimize=False),
        )
        assert raw.feasible
        assert raw.uncored_architecture is None
