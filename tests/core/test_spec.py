"""Tests for the attack specification model."""

import pytest

from repro.core.spec import AttackGoal, AttackSpec, LineAttributes, ResourceLimits
from repro.estimation.measurement import MeasurementPlan
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow


class TestLineAttributes:
    def test_defaults(self):
        a = LineAttributes()
        assert a.knows_admittance and a.in_true_topology
        assert not a.fixed and not a.status_secured

    def test_can_exclude_rules(self):
        assert LineAttributes().can_exclude()
        assert not LineAttributes(fixed=True).can_exclude()
        assert not LineAttributes(status_secured=True).can_exclude()
        assert not LineAttributes(in_true_topology=False).can_exclude()

    def test_can_include_rules(self):
        assert LineAttributes(in_true_topology=False).can_include()
        assert not LineAttributes().can_include()
        assert not LineAttributes(
            in_true_topology=False, status_secured=True
        ).can_include()


class TestAttackGoal:
    def test_states_builder(self):
        goal = AttackGoal.states(9, 10)
        assert goal.target_states == frozenset({9, 10})
        assert not goal.exclusive

    def test_exclusive(self):
        assert AttackGoal.states(12, exclusive=True).exclusive

    def test_with_distinct(self):
        goal = AttackGoal.states(9, 10).with_distinct((9, 10))
        assert goal.distinct_pairs == ((9, 10),)

    def test_any(self):
        assert AttackGoal.any().any_state


class TestSpecValidation:
    def test_default_builder(self):
        spec = AttackSpec.default(ieee14())
        assert spec.plan.taken == set(range(1, 55))
        assert spec.reference_bus == 1

    def test_reference_out_of_range(self):
        with pytest.raises(ValueError, match="reference bus"):
            AttackSpec.default(ieee14(), reference_bus=15)

    def test_target_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            AttackSpec.default(ieee14(), goal=AttackGoal.states(99))

    def test_reference_cannot_be_target(self):
        with pytest.raises(ValueError, match="reference"):
            AttackSpec.default(ieee14(), goal=AttackGoal.states(1))

    def test_unknown_line_attr(self):
        with pytest.raises(ValueError, match="unknown line"):
            AttackSpec.default(ieee14(), line_attrs={99: LineAttributes()})

    def test_mismatched_plan_grid(self):
        from repro.grid.cases import ieee30

        with pytest.raises(ValueError, match="match"):
            AttackSpec(grid=ieee14(), plan=MeasurementPlan(ieee30()))

    def test_structurally_equal_grid_accepted(self):
        spec = AttackSpec(grid=ieee14(), plan=MeasurementPlan(ieee14()))
        assert spec.grid.num_buses == 14


class TestAccessors:
    def test_attrs_default(self):
        spec = AttackSpec.default(ieee14())
        assert spec.attrs(3).knows_admittance

    def test_unknown_admittance_lines(self):
        spec = AttackSpec.default(
            ieee14(),
            line_attrs={3: LineAttributes(knows_admittance=False)},
        )
        assert spec.unknown_admittance_lines() == [3]

    def test_topology_attackable_needs_flag(self):
        spec = AttackSpec.default(ieee14())
        assert spec.topology_attackable_lines() == []

    def test_topology_attackable_lines(self):
        attrs = {i: LineAttributes(fixed=i not in (5, 13)) for i in range(1, 21)}
        spec = AttackSpec.default(
            ieee14(), line_attrs=attrs, allow_topology_attack=True
        )
        assert spec.topology_attackable_lines() == [5, 13]


class TestWithers:
    def test_with_secured_buses(self):
        spec = AttackSpec.default(ieee14()).with_secured_buses([6])
        assert {11, 12, 13, 30, 46} <= spec.plan.secured

    def test_with_secured_measurements(self):
        spec = AttackSpec.default(ieee14()).with_secured_measurements([7])
        assert spec.plan.secured == {7}

    def test_with_goal_and_limits(self):
        spec = AttackSpec.default(ieee14())
        spec2 = spec.with_goal(AttackGoal.states(5)).with_limits(
            ResourceLimits(max_measurements=3)
        )
        assert spec2.goal.target_states == frozenset({5})
        assert spec2.limits.max_measurements == 3
        assert spec.goal.target_states == frozenset()  # original untouched

    def test_with_operating_point(self):
        grid = ieee14()
        flow = solve_dc_flow(grid, nominal_injections(grid))
        spec = AttackSpec.default(grid).with_operating_point(flow)
        assert spec.base_flows[1] == pytest.approx(flow.flow(1))
        assert spec.base_angles[5] == pytest.approx(flow.angle(5))
