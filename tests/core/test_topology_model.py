"""Tests for the topology-poisoning constraints of the verification model
(paper Eqs. 7-12), in both abstract and operating-point modes."""

import numpy as np
import pytest

from repro.core.spec import AttackGoal, AttackSpec, LineAttributes
from repro.core.verification import verify_attack
from repro.estimation.measurement import MeasurementPlan
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow
from repro.grid.model import Grid, Line


def attrs_with_free_lines(free, total=20, open_lines=()):
    out = {}
    for i in range(1, total + 1):
        out[i] = LineAttributes(
            in_true_topology=i not in open_lines,
            fixed=(i not in free) and (i not in open_lines),
        )
    return out


class TestEligibilityRules:
    """Eqs. 9-10: only eligible lines can be excluded/included."""

    def test_fixed_lines_never_excluded(self):
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.states(12, exclusive=True),
            line_attrs=attrs_with_free_lines(free={5}),
            allow_topology_attack=True,
        )
        result = verify_attack(spec)
        if result.attack_exists:
            assert result.attack.excluded_lines <= {5}

    def test_status_secured_line_never_excluded(self):
        attrs = attrs_with_free_lines(free={13})
        attrs[13] = LineAttributes(fixed=False, status_secured=True)
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.states(12, exclusive=True),
            line_attrs=attrs,
            allow_topology_attack=True,
        )
        result = verify_attack(spec)
        if result.attack_exists:
            assert not result.attack.excluded_lines

    def test_closed_line_never_included(self):
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.any(),
            line_attrs=attrs_with_free_lines(free={5, 13}),
            allow_topology_attack=True,
        )
        result = verify_attack(spec)
        assert result.attack_exists
        assert not result.attack.included_lines  # nothing is open

    def test_flag_off_means_no_topology_vars(self):
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.any(),
            line_attrs=attrs_with_free_lines(free={5, 13}),
            allow_topology_attack=False,
        )
        result = verify_attack(spec)
        assert not result.attack.uses_topology_poisoning


class TestExclusionSemantics:
    """The paper's Objective-2 revival: exclusion creates new freedom."""

    def test_exclusion_unlocks_blocked_attack(self):
        from repro.core.casestudy import attack_objective_2

        blocked = attack_objective_2(secure_measurement_46=True)
        assert not verify_attack(blocked).attack_exists
        revived = attack_objective_2(
            secure_measurement_46=True, allow_topology_attack=True
        )
        result = verify_attack(revived)
        assert result.attack_exists
        assert result.attack.excluded_lines == frozenset({13})

    def test_excluded_line_flow_measurements_altered(self):
        from repro.core.casestudy import attack_objective_2

        spec = attack_objective_2(
            secure_measurement_46=True, allow_topology_attack=True
        )
        attack = verify_attack(spec).attack
        # line 13's flow measurements (13 and 33) must be altered to
        # fake the zero flow
        assert {13, 33} <= set(attack.altered_measurements)


class TestInclusionSemantics:
    def test_inclusion_attack_on_open_line(self):
        # a 3-bus ring with one open line: including it gives the
        # attacker a phantom path
        grid = Grid(
            3,
            [Line(1, 1, 2, 2.0), Line(2, 2, 3, 2.0), Line(3, 1, 3, 2.0)],
        )
        attrs = {
            1: LineAttributes(fixed=True),
            2: LineAttributes(fixed=True),
            3: LineAttributes(in_true_topology=False),
        }
        spec = AttackSpec.default(
            grid,
            goal=AttackGoal.any(),
            line_attrs=attrs,
            allow_topology_attack=True,
        )
        result = verify_attack(spec)
        assert result.attack_exists

    def test_open_unincludable_line_is_inert(self):
        grid = Grid(
            3,
            [Line(1, 1, 2, 2.0), Line(2, 2, 3, 2.0), Line(3, 1, 3, 2.0)],
        )
        attrs = {
            1: LineAttributes(fixed=True),
            2: LineAttributes(fixed=True),
            3: LineAttributes(in_true_topology=False, status_secured=True),
        }
        spec = AttackSpec.default(
            grid,
            goal=AttackGoal.states(3, exclusive=True),
            line_attrs=attrs,
            allow_topology_attack=True,
        )
        result = verify_attack(spec)
        if result.attack_exists:
            assert not result.attack.included_lines
            # line 3's measurements can never be altered
            assert not {3, 6} & set(result.attack.altered_measurements)


class TestOperatingPointMode:
    def test_exclusion_delta_matches_base_flow(self):
        from repro.core.casestudy import attack_objective_2

        grid = ieee14()
        flow = solve_dc_flow(grid, nominal_injections(grid))
        spec = attack_objective_2(
            secure_measurement_46=True, allow_topology_attack=True
        ).with_operating_point(flow)
        result = verify_attack(spec)
        assert result.attack_exists
        assert result.attack.excluded_lines == frozenset({13})
        # the forward flow measurement of line 13 must move to exactly 0
        delta13 = result.attack.measurement_deltas[13]
        assert delta13 == pytest.approx(-flow.flow(13), abs=1e-9)

    def test_operating_point_attack_replays_cleanly(self):
        from repro.core.casestudy import attack_objective_2
        from repro.estimation.baddata import chi_square_test
        from repro.estimation.measurement import build_h, build_measurements
        from repro.estimation.wls import wls_estimate

        grid = ieee14()
        flow = solve_dc_flow(grid, nominal_injections(grid))
        spec = attack_objective_2(
            secure_measurement_46=True, allow_topology_attack=True
        ).with_operating_point(flow)
        result = verify_attack(spec)
        attack = result.attack
        plan = spec.plan
        noise = 0.01
        z = build_measurements(plan, flow, noise_std=noise, seed=5)
        w = np.full(len(z), 1 / noise**2)
        mapped = set(range(1, 21)) - set(attack.excluded_lines)
        h_pois = build_h(grid, 1, plan.taken_in_order(), mapped_lines=mapped)
        est = wls_estimate(h_pois, attack.apply_to(z, plan), w)
        assert not chi_square_test(est).bad_data_detected
