"""Tests for minimum-cost attack analytics."""

import pytest

from repro.core.mincost import minimum_attack_cost, state_attack_costs
from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.verification import verify_attack
from repro.grid.cases import ieee14
from repro.grid.model import Grid, Line


def path_spec(n=4, target=None):
    grid = Grid(n, [Line(i, i, i + 1, 2.0) for i in range(1, n)])
    goal = AttackGoal.states(target if target else n, exclusive=True)
    return AttackSpec.default(grid, goal=goal)


class TestMinimumCost:
    def test_path_end_state_costs_four(self):
        # attacking the far leaf of a path: line flows (2) + both
        # endpoint injections (2)
        result = minimum_attack_cost(path_spec(4))
        assert result.cost == 4
        assert len(result.attack.altered_measurements) == 4

    def test_cost_is_tight(self):
        # one below the reported cost must be infeasible
        spec = path_spec(4)
        result = minimum_attack_cost(spec)
        below = spec.with_limits(ResourceLimits(max_measurements=result.cost - 1))
        assert not verify_attack(below).attack_exists

    def test_bus_dimension(self):
        result = minimum_attack_cost(path_spec(4), dimension="buses")
        assert result.cost == 2  # measurements live at buses 3 and 4

    def test_leaf_is_cheapest_on_ieee14(self):
        costs = {}
        for bus in (8, 10):
            spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(bus))
            costs[bus] = minimum_attack_cost(spec).cost
        # bus 8 is the only leaf: strictly cheaper than interior bus 10
        assert costs[8] < costs[10]
        assert costs[8] == 4

    def test_infeasible_goal_costs_none(self):
        grid = ieee14()
        from repro.estimation.measurement import MeasurementPlan
        from repro.estimation.observability import basic_measurement_set

        plan = MeasurementPlan(grid)
        protected = basic_measurement_set(plan)
        spec = AttackSpec(
            grid=grid,
            plan=plan.with_secured_measurements(protected),
            goal=AttackGoal.any(),
        )
        result = minimum_attack_cost(spec)
        assert result.cost is None
        assert result.attack is None

    def test_upper_bound_clamps(self):
        result = minimum_attack_cost(path_spec(4), upper_bound=10)
        assert result.cost == 4

    def test_upper_bound_below_minimum_is_infeasible(self):
        # regression: the cheapest attack on the path end costs 4; a cap
        # of 3 must come back infeasible rather than reporting cost 3
        result = minimum_attack_cost(path_spec(4), upper_bound=3)
        assert result.cost is None
        assert result.attack is None

    def test_upper_bound_exactly_at_minimum(self):
        result = minimum_attack_cost(path_spec(4), upper_bound=4)
        assert result.cost == 4
        assert len(result.attack.altered_measurements) == 4

    def test_upper_bound_below_minimum_bus_dimension(self):
        result = minimum_attack_cost(path_spec(4), dimension="buses", upper_bound=1)
        assert result.cost is None

    def test_probe_count_is_logarithmic(self):
        result = minimum_attack_cost(path_spec(6))
        assert result.probes <= 6

    def test_single_encode_for_whole_search(self):
        # the whole binary search must run on one warm session encoding
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        result = minimum_attack_cost(spec)
        assert result.cost == 4
        assert result.encodes == 1
        assert result.probes >= 3

    def test_shared_session_across_searches(self):
        from repro.core.verification import VerificationSession

        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        session = VerificationSession(spec)
        first = minimum_attack_cost(spec, session=session)
        second = minimum_attack_cost(spec.with_goal(AttackGoal.states(10)), session=session)
        assert first.cost == 4
        assert second.cost is not None
        assert session.encodes == 1

    def test_incompatible_session_rejected(self):
        from repro.core.verification import VerificationSession

        session = VerificationSession(path_spec(5))
        with pytest.raises(ValueError, match="session"):
            minimum_attack_cost(path_spec(4), session=session)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError, match="dimension"):
            minimum_attack_cost(path_spec(4), dimension="watts")

    def test_other_dimension_limit_respected(self):
        # cheapest measurement attack while at most 2 buses may be touched
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.states(8),
            limits=ResourceLimits(max_buses=2),
        )
        result = minimum_attack_cost(spec)
        assert result.cost == 4
        assert len(result.attack.compromised_buses(spec.plan)) <= 2


class TestStateCosts:
    def test_reference_excluded(self):
        spec = AttackSpec.default(ieee14())
        costs = state_attack_costs(path_spec(3).with_goal(AttackGoal()))
        assert 1 not in costs

    def test_all_states_costed_on_path(self):
        spec = path_spec(4).with_goal(AttackGoal())
        costs = state_attack_costs(spec)
        assert set(costs) == {2, 3, 4}
        assert all(isinstance(c, int) for c in costs.values())
        # the far leaf (4) is cheapest (smallest footprint)
        assert costs[4] == min(costs.values())

    def test_one_session_for_all_states(self):
        from repro.core.verification import VerificationSession

        spec = path_spec(4).with_goal(AttackGoal())
        session = VerificationSession(spec)
        costs = state_attack_costs(spec, session=session)
        assert set(costs) == {2, 3, 4}
        assert session.encodes == 1
        assert session.probes >= len(costs)
