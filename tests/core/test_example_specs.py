"""The shipped example spec files parse and reproduce the case studies."""

from pathlib import Path

import pytest

from repro.core.io import load_spec_file
from repro.core.verification import verify_attack

SPEC_DIR = Path(__file__).resolve().parents[2] / "examples" / "specs"


class TestShippedSpecs:
    def test_all_files_parse(self):
        files = sorted(SPEC_DIR.glob("*.spec"))
        assert len(files) >= 6
        for path in files:
            spec = load_spec_file(path)
            assert spec.grid.num_buses == 14

    def test_objective1_reproduces(self):
        spec = load_spec_file(SPEC_DIR / "objective1.spec")
        result = verify_attack(spec)
        assert result.attack_exists
        assert result.attack.compromised_buses(spec.plan) == [4, 7, 9, 10, 11, 13, 14]

    def test_objective2_reproduces(self):
        spec = load_spec_file(SPEC_DIR / "objective2.spec")
        result = verify_attack(spec)
        assert result.attack.altered_measurements == [12, 32, 39, 46, 53]

    def test_objective2_topology_reproduces(self):
        spec = load_spec_file(SPEC_DIR / "objective2_topology.spec")
        result = verify_attack(spec)
        assert result.attack.excluded_lines == frozenset({13})

    def test_scenarios_have_any_goal(self):
        for n in (1, 2, 3):
            spec = load_spec_file(SPEC_DIR / f"scenario{n}.spec")
            assert spec.goal.any_state

    def test_cli_runs_on_shipped_spec(self, capsys):
        from repro.cli import main

        rc = main(["verify", str(SPEC_DIR / "objective2.spec")])
        assert rc == 2  # attack exists
        assert "sat" in capsys.readouterr().out
