"""Tests for the text input-file format (paper Section III-H)."""

import pytest

from repro.core.casestudy import attack_objective_1, synthesis_scenario
from repro.core.io import (
    SpecParseError,
    load_spec_file,
    parse_spec,
    save_spec_file,
    write_spec,
)
from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.core.verification import verify_attack
from repro.grid.cases import ieee14

MINIMAL = """
# a 2-bus system
buses 2
line 1 1 2 5.0 1 1 0 0
target 2
"""


class TestParse:
    def test_minimal(self):
        spec = parse_spec(MINIMAL)
        assert spec.grid.num_buses == 2
        assert spec.goal.target_states == frozenset({2})
        assert spec.plan.taken == {1, 2, 3, 4}  # defaults: all taken

    def test_measurement_flags(self):
        spec = parse_spec(
            MINIMAL + "measurement 1 0 0 1\nmeasurement 2 1 1 0\n"
        )
        assert 1 not in spec.plan.taken
        assert spec.plan.is_secured(2)
        assert not spec.plan.is_accessible(2)

    def test_limits(self):
        spec = parse_spec(MINIMAL + "limit measurements 5\nlimit buses 2\n")
        assert spec.limits.max_measurements == 5
        assert spec.limits.max_buses == 2

    def test_goal_keywords(self):
        spec = parse_spec(MINIMAL + "distinct 1 2\nexclusive 1\ntopology_attack 1\n")
        assert spec.goal.distinct_pairs == ((1, 2),)
        assert spec.goal.exclusive
        assert spec.allow_topology_attack

    def test_target_any(self):
        spec = parse_spec("buses 2\nline 1 1 2 5.0 1 1 0 0\ntarget any\n")
        assert spec.goal.any_state

    def test_line_attributes(self):
        spec = parse_spec("buses 2\nline 1 1 2 5.0 0 1 1 1\n")
        attrs = spec.attrs(1)
        assert not attrs.knows_admittance
        assert attrs.fixed and attrs.status_secured

    def test_comments_and_blank_lines(self):
        assert parse_spec("# c\n\n" + MINIMAL).grid.num_buses == 2

    def test_missing_buses_rejected(self):
        with pytest.raises(SpecParseError, match="buses"):
            parse_spec("line 1 1 2 5.0 1 1 0 0")

    def test_missing_lines_rejected(self):
        with pytest.raises(SpecParseError, match="line"):
            parse_spec("buses 2")

    def test_bad_flag_rejected(self):
        with pytest.raises(SpecParseError, match="flag"):
            parse_spec("buses 2\nline 1 1 2 5.0 yes 1 0 0")

    def test_unknown_keyword_rejected(self):
        with pytest.raises(SpecParseError, match="keyword"):
            parse_spec(MINIMAL + "frobnicate 1\n")

    def test_unknown_limit_rejected(self):
        with pytest.raises(SpecParseError, match="limit"):
            parse_spec(MINIMAL + "limit gigawatts 3\n")

    def test_short_row_rejected(self):
        with pytest.raises(SpecParseError):
            parse_spec("buses 2\nline 1 1 2\n")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "make_spec",
        [
            lambda: attack_objective_1(16, 7, True),
            lambda: synthesis_scenario(3),
            lambda: AttackSpec.default(
                ieee14(),
                goal=AttackGoal.states(12, exclusive=True),
                limits=ResourceLimits(max_measurements=9),
            ),
        ],
        ids=["objective1", "scenario3", "custom"],
    )
    def test_write_parse_preserves_verdict(self, make_spec):
        spec = make_spec()
        round_tripped = parse_spec(write_spec(spec))
        original = verify_attack(spec)
        replayed = verify_attack(round_tripped)
        assert original.outcome == replayed.outcome
        if original.attack is not None:
            assert (
                original.attack.altered_measurements
                == replayed.attack.altered_measurements
            )

    def test_round_trip_fields(self):
        spec = attack_objective_1(16, 7, True)
        rt = parse_spec(write_spec(spec))
        assert rt.grid.num_buses == spec.grid.num_buses
        assert rt.plan.taken == spec.plan.taken
        assert rt.plan.secured == spec.plan.secured
        assert rt.plan.inaccessible == spec.plan.inaccessible
        assert rt.goal.target_states == spec.goal.target_states
        assert rt.limits == spec.limits
        for i in range(1, 21):
            assert rt.attrs(i) == spec.attrs(i)

    def test_file_round_trip(self, tmp_path):
        spec = synthesis_scenario(1)
        path = tmp_path / "scenario1.spec"
        save_spec_file(spec, path)
        loaded = load_spec_file(path)
        assert loaded.limits.max_measurements == 12
