"""Systematic semantics matrix for the verification model.

A 5-bus path grid (1-2-3-4-5, every potential measurement taken) where
each attack attribute's effect is hand-computable.  Attacking the far
leaf state 5 *exclusively* requires altering exactly line 4's two flow
measurements and the two endpoint injections: measurements {4, 8, 12, 13}
residing at buses {4, 5}.  The matrix crosses knowledge, access,
security, resource limits and topology capability against that known
footprint.
"""

import itertools

import pytest

from repro.core.spec import AttackGoal, AttackSpec, LineAttributes, ResourceLimits
from repro.core.verification import verify_attack
from repro.estimation.measurement import MeasurementPlan
from repro.grid.model import Grid, Line

# path grid: l = 4 lines, b = 5 buses, m = 13 potential measurements
#   forward flows 1-4, backward flows 5-8, injections 9-13
GRID = Grid(5, [Line(i, i, i + 1, 2.0) for i in range(1, 5)])
FOOTPRINT = {4, 8, 12, 13}  # line 4 fwd, line 4 bwd, bus 4 inj, bus 5 inj
GOAL = AttackGoal.states(5, exclusive=True)


def make_spec(**kwargs):
    plan = kwargs.pop("plan", None) or MeasurementPlan(GRID)
    return AttackSpec(grid=GRID, plan=plan, goal=GOAL, **kwargs)


class TestBaselineFootprint:
    def test_footprint_is_exact(self):
        result = verify_attack(make_spec())
        assert result.attack_exists
        assert set(result.attack.altered_measurements) == FOOTPRINT
        assert result.attack.compromised_buses(MeasurementPlan(GRID)) == [4, 5]


class TestSingleAttributeEffects:
    @pytest.mark.parametrize("blocked", sorted(FOOTPRINT))
    def test_any_secured_footprint_measurement_blocks(self, blocked):
        plan = MeasurementPlan(GRID, secured={blocked})
        assert not verify_attack(make_spec(plan=plan)).attack_exists

    @pytest.mark.parametrize("blocked", sorted(FOOTPRINT))
    def test_any_inaccessible_footprint_measurement_blocks(self, blocked):
        plan = MeasurementPlan(GRID, inaccessible={blocked})
        assert not verify_attack(make_spec(plan=plan)).attack_exists

    @pytest.mark.parametrize("irrelevant", [1, 2, 5, 6, 9, 10, 11])
    def test_protection_outside_footprint_is_harmless(self, irrelevant):
        plan = MeasurementPlan(GRID, secured={irrelevant})
        assert verify_attack(make_spec(plan=plan)).attack_exists

    def test_untaken_footprint_measurement_shrinks_footprint(self):
        plan = MeasurementPlan(GRID, taken=set(range(1, 14)) - {4})
        result = verify_attack(make_spec(plan=plan))
        assert result.attack_exists
        assert set(result.attack.altered_measurements) == FOOTPRINT - {4}

    def test_unknown_admittance_of_line_4_blocks(self):
        spec = make_spec(line_attrs={4: LineAttributes(knows_admittance=False)})
        assert not verify_attack(spec).attack_exists

    def test_unknown_admittance_elsewhere_is_harmless(self):
        spec = make_spec(
            line_attrs={
                1: LineAttributes(knows_admittance=False),
                2: LineAttributes(knows_admittance=False),
            }
        )
        assert verify_attack(spec).attack_exists

    @pytest.mark.parametrize(
        "tcz,expected", [(3, False), (4, True), (13, True)]
    )
    def test_measurement_budget_boundary(self, tcz, expected):
        spec = make_spec(limits=ResourceLimits(max_measurements=tcz))
        assert verify_attack(spec).attack_exists is expected

    @pytest.mark.parametrize("tcb,expected", [(1, False), (2, True)])
    def test_bus_budget_boundary(self, tcb, expected):
        spec = make_spec(limits=ResourceLimits(max_buses=tcb))
        assert verify_attack(spec).attack_exists is expected


class TestAttributeInteractions:
    def test_secured_plus_topology_attack_reroutes(self):
        # securing meas 4 blocks the plain attack; allowing exclusion of
        # line 4 cannot help (its flow must then read zero: same meters),
        # but excluding line 3 re-routes the consistency obligations
        plan = MeasurementPlan(GRID, secured={4})
        attrs = {i: LineAttributes(fixed=i != 3) for i in range(1, 5)}
        blocked = make_spec(plan=plan, line_attrs=attrs)
        assert not verify_attack(blocked).attack_exists
        spec = make_spec(plan=plan, line_attrs=attrs, allow_topology_attack=True)
        result = verify_attack(spec)
        if result.attack_exists:  # exclusion of line 3 islands buses 4-5
            assert result.attack.excluded_lines == frozenset({3})

    def test_budget_and_knowledge_compose(self):
        # enough budget but no knowledge -> unsat; knowledge but no
        # budget -> unsat; both -> sat
        attrs_bad = {4: LineAttributes(knows_admittance=False)}
        assert not verify_attack(
            make_spec(line_attrs=attrs_bad, limits=ResourceLimits(max_measurements=4))
        ).attack_exists
        assert not verify_attack(
            make_spec(limits=ResourceLimits(max_measurements=3))
        ).attack_exists
        assert verify_attack(
            make_spec(limits=ResourceLimits(max_measurements=4))
        ).attack_exists

    @pytest.mark.parametrize(
        "secured,inaccessible",
        list(itertools.combinations(sorted(FOOTPRINT), 2)),
    )
    def test_double_protection_still_blocks(self, secured, inaccessible):
        plan = MeasurementPlan(GRID, secured={secured}, inaccessible={inaccessible})
        assert not verify_attack(make_spec(plan=plan)).attack_exists

    def test_all_footprint_untaken_means_free_attack(self):
        plan = MeasurementPlan(GRID, taken=set(range(1, 14)) - FOOTPRINT)
        result = verify_attack(make_spec(plan=plan))
        assert result.attack_exists
        assert result.attack.altered_measurements == []

    def test_non_exclusive_goal_opens_island_shift(self):
        # without exclusivity, cutting at line 1 moves states {2..5}
        # together: footprint {1, 5, 9, 10} also works, so a tighter
        # 2-bus budget at buses {1, 2} becomes available
        spec = AttackSpec(
            grid=GRID,
            plan=MeasurementPlan(GRID),
            goal=AttackGoal.states(5),
            limits=ResourceLimits(max_buses=2),
        )
        result = verify_attack(spec)
        assert result.attack_exists


class TestBackendsAgreeOnMatrix:
    @pytest.mark.parametrize("blocked", sorted(FOOTPRINT))
    def test_milp_agrees_on_blocked_cases(self, blocked):
        plan = MeasurementPlan(GRID, secured={blocked})
        spec = make_spec(plan=plan)
        assert not verify_attack(spec, backend="milp").attack_exists

    def test_milp_agrees_on_baseline(self):
        result = verify_attack(make_spec(), backend="milp")
        assert result.attack_exists
        assert set(result.attack.altered_measurements) == FOOTPRINT
