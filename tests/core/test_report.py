"""Tests for result reporting."""

from repro.core.casestudy import attack_objective_2, synthesis_scenario
from repro.core.report import format_attack, format_synthesis, format_verification
from repro.core.synthesis import SynthesisSettings, synthesize_architecture
from repro.core.verification import verify_attack


class TestFormatAttack:
    def test_mentions_measurements_and_states(self):
        spec = attack_objective_2()
        result = verify_attack(spec)
        text = format_attack(result.attack, spec)
        for meas in (12, 32, 39, 46, 53):
            assert f"z{meas}:" in text
        assert "bus  12" in text
        assert "compromised buses: [6, 12, 13]" in text

    def test_mentions_topology_changes(self):
        spec = attack_objective_2(True, True)
        result = verify_attack(spec)
        text = format_attack(result.attack, spec)
        assert "line 13 (6-13) excluded" in text


class TestFormatVerification:
    def test_sat_report(self):
        spec = attack_objective_2()
        text = format_verification(verify_attack(spec), spec)
        assert "sat" in text
        assert "UFDI attack vector" in text

    def test_unsat_report(self):
        spec = attack_objective_2(secure_measurement_46=True)
        text = format_verification(verify_attack(spec), spec)
        assert "unsat" in text
        assert "no attack vector" in text


class TestFormatSynthesis:
    def test_feasible_report(self):
        spec = synthesis_scenario(1)
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=4))
        text = format_synthesis(result, spec)
        assert "secure buses" in text
        assert "protects measurements" in text

    def test_infeasible_report(self):
        spec = synthesis_scenario(1)
        result = synthesize_architecture(spec, SynthesisSettings(max_secured_buses=1))
        text = format_synthesis(result, spec)
        assert "no security architecture" in text
