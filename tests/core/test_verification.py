"""Tests for the UFDI verification model.

Checks both the constraint semantics (each attack attribute behaves per
its paper equation) and the consistency of extracted attack vectors.
"""

import pytest

from repro.core.spec import AttackGoal, AttackSpec, LineAttributes, ResourceLimits
from repro.core.verification import (
    UfdiEncoder,
    VerificationOutcome,
    verify_attack,
)
from repro.estimation.measurement import MeasurementPlan
from repro.grid.cases import ieee14
from repro.grid.model import Grid, Line


def path_grid(n=4, admittance=2.0):
    """1 - 2 - ... - n, a path: every attack footprint is obvious."""
    lines = [Line(i, i, i + 1, admittance) for i in range(1, n)]
    return Grid(n, lines)


class TestBasicFeasibility:
    def test_unconstrained_single_state_attack(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(10))
        result = verify_attack(spec)
        assert result.attack_exists
        assert 10 in result.attack.attacked_states

    def test_no_goal_is_trivially_sat(self):
        spec = AttackSpec.default(ieee14())
        result = verify_attack(spec)
        assert result.attack_exists  # the empty attack satisfies it

    def test_any_state_goal(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        result = verify_attack(spec)
        assert result.attack_exists
        assert result.attack.attacked_states


class TestMeasurementCoupling:
    """Eqs. 15-16: cz <-> taken and delta != 0."""

    def test_path_grid_footprint(self):
        # attacking the far end of a 4-bus path must alter the last
        # line's flows and the adjacent injections
        grid = path_grid(4)
        spec = AttackSpec.default(grid, goal=AttackGoal.states(4, exclusive=True))
        result = verify_attack(spec)
        assert result.attack_exists
        # line 3 (3-4): fwd 3, bwd 6; injections at 3 and 4: 9+3=... m numbering:
        # l=3: fwd 1..3, bwd 4..6, bus 7..10
        assert result.attack.altered_measurements == [3, 6, 9, 10]

    def test_untaken_measurements_need_no_alteration(self):
        grid = path_grid(4)
        plan = MeasurementPlan(grid, taken={1, 2, 4, 5, 7, 8, 9, 10})  # line 3 flows untaken
        spec = AttackSpec(grid=grid, plan=plan, goal=AttackGoal.states(4, exclusive=True))
        result = verify_attack(spec)
        assert result.attack_exists
        assert result.attack.altered_measurements == [9, 10]

    def test_secured_measurement_blocks(self):
        grid = path_grid(4)
        plan = MeasurementPlan(grid, secured={3})
        spec = AttackSpec(grid=grid, plan=plan, goal=AttackGoal.states(4, exclusive=True))
        assert not verify_attack(spec).attack_exists

    def test_inaccessible_measurement_blocks(self):
        grid = path_grid(4)
        plan = MeasurementPlan(grid, inaccessible={3})
        spec = AttackSpec(grid=grid, plan=plan, goal=AttackGoal.states(4, exclusive=True))
        assert not verify_attack(spec).attack_exists

    def test_secured_but_untaken_is_irrelevant(self):
        grid = path_grid(4)
        plan = MeasurementPlan(
            grid, taken={1, 2, 4, 5, 7, 8, 9, 10}, secured={3}
        )
        spec = AttackSpec(grid=grid, plan=plan, goal=AttackGoal.states(4, exclusive=True))
        assert verify_attack(spec).attack_exists


class TestKnowledge:
    """Eqs. 17-18."""

    def test_unknown_admittance_blocks_local_attack(self):
        grid = path_grid(4)
        spec = AttackSpec.default(
            grid,
            goal=AttackGoal.states(4, exclusive=True),
            line_attrs={3: LineAttributes(knows_admittance=False)},
        )
        assert not verify_attack(spec).attack_exists

    def test_unknown_admittance_elsewhere_is_harmless(self):
        grid = path_grid(4)
        spec = AttackSpec.default(
            grid,
            goal=AttackGoal.states(4, exclusive=True),
            line_attrs={1: LineAttributes(knows_admittance=False)},
        )
        assert verify_attack(spec).attack_exists

    def test_unknown_admittance_with_untaken_flows_is_harmless(self):
        # paper semantics: knowledge only gates *measurement alteration*;
        # if the unknown line's flow measurements aren't taken, the
        # attack goes through
        grid = path_grid(4)
        plan = MeasurementPlan(grid, taken={1, 2, 4, 5, 7, 8, 9, 10})
        spec = AttackSpec(
            grid=grid,
            plan=plan,
            goal=AttackGoal.states(4, exclusive=True),
            line_attrs={3: LineAttributes(knows_admittance=False)},
        )
        assert verify_attack(spec).attack_exists

    def test_strict_knowledge_mode_blocks_even_untaken(self):
        grid = path_grid(4)
        plan = MeasurementPlan(grid, taken={1, 2, 4, 5, 7, 8, 9, 10})
        spec = AttackSpec(
            grid=grid,
            plan=plan,
            goal=AttackGoal.states(4, exclusive=True),
            line_attrs={3: LineAttributes(knows_admittance=False)},
            strict_knowledge=True,
        )
        assert not verify_attack(spec).attack_exists


class TestResourceLimits:
    """Eqs. 22-24."""

    def test_measurement_budget_boundary(self):
        grid = path_grid(4)
        goal = AttackGoal.states(4, exclusive=True)
        sat = AttackSpec.default(
            grid, goal=goal, limits=ResourceLimits(max_measurements=4)
        )
        unsat = AttackSpec.default(
            grid, goal=goal, limits=ResourceLimits(max_measurements=3)
        )
        assert verify_attack(sat).attack_exists
        assert not verify_attack(unsat).attack_exists

    def test_bus_budget_boundary(self):
        grid = path_grid(4)
        goal = AttackGoal.states(4, exclusive=True)
        # footprint buses: 3 (fwd of line 3 + injection) and 4
        sat = AttackSpec.default(grid, goal=goal, limits=ResourceLimits(max_buses=2))
        unsat = AttackSpec.default(grid, goal=goal, limits=ResourceLimits(max_buses=1))
        assert verify_attack(sat).attack_exists
        assert not verify_attack(unsat).attack_exists

    def test_reported_attack_respects_limits(self):
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.states(10),
            limits=ResourceLimits(max_measurements=9, max_buses=4),
        )
        result = verify_attack(spec)
        assert result.attack_exists
        assert len(result.attack.altered_measurements) <= 9
        assert len(result.attack.compromised_buses(spec.plan)) <= 4


class TestGoals:
    """Eqs. 25-26."""

    def test_exclusive_goal_restricts_states(self):
        spec = AttackSpec.default(
            ieee14(), goal=AttackGoal.states(12, exclusive=True)
        )
        result = verify_attack(spec)
        assert result.attack.attacked_states == [12]

    def test_distinct_pair(self):
        spec = AttackSpec.default(
            ieee14(), goal=AttackGoal.states(9, 10).with_distinct((9, 10))
        )
        result = verify_attack(spec)
        assert result.attack_exists
        d9 = result.attack.state_deltas.get(9, 0.0)
        d10 = result.attack.state_deltas.get(10, 0.0)
        assert abs(d9 - d10) > 1e-9

    def test_impossible_exclusive_goal(self):
        # the paper's structural fact (Section III-I): under the
        # Table II/III configuration, states 9 and 10 cannot be
        # attacked alone — other states necessarily move too
        from repro.core.casestudy import paper_line_attrs, paper_plan

        from repro.grid.cases import ieee14 as grid_builder

        grid = grid_builder()
        spec = AttackSpec(
            grid=grid,
            plan=paper_plan(grid),
            line_attrs=paper_line_attrs(),
            goal=AttackGoal.states(9, 10, exclusive=True),
        )
        assert not verify_attack(spec).attack_exists


class TestExtractionConsistency:
    def test_deltas_balance_at_buses(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(10))
        result = verify_attack(spec)
        attack = result.attack
        grid, plan = spec.grid, spec.plan
        # bus measurement delta equals incoming minus outgoing flow deltas
        for j in grid.buses:
            total = 0.0
            for line in grid.lines_at(j):
                fwd = attack.measurement_deltas.get(line.index, 0.0)
                sign = 1.0 if line.to_bus == j else -1.0
                total += sign * fwd
            bus_delta = attack.measurement_deltas.get(plan.bus_index(j), 0.0)
            assert bus_delta == pytest.approx(total, abs=1e-9)

    def test_backward_is_negated_forward(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(10))
        attack = verify_attack(spec).attack
        for i in range(1, 21):
            fwd = attack.measurement_deltas.get(i, 0.0)
            bwd = attack.measurement_deltas.get(20 + i, 0.0)
            assert fwd == pytest.approx(-bwd, abs=1e-9)

    def test_statistics_populated(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(10))
        result = verify_attack(spec)
        assert result.statistics["sat_variables"] > 0
        assert result.runtime_seconds > 0

    def test_unknown_backend_rejected(self):
        spec = AttackSpec.default(ieee14())
        with pytest.raises(ValueError, match="backend"):
            verify_attack(spec, backend="quantum")

    def test_max_conflicts_unknown(self):
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.states(9, 10).with_distinct((9, 10)),
            limits=ResourceLimits(max_measurements=15, max_buses=6),
        )
        result = verify_attack(spec, max_conflicts=1)
        assert result.outcome in (
            VerificationOutcome.UNKNOWN,
            VerificationOutcome.SECURE,
        )


class TestEncoderReuse:
    def test_symbolic_security_assumptions(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(12, exclusive=True))
        encoder = UfdiEncoder(spec, symbolic_security=True)
        from repro.smt import Result

        assert encoder.check() is Result.SAT
        attack = encoder.extract_attack()
        buses = attack.compromised_buses(spec.plan)
        # securing every compromised bus kills this vector; iterating
        # reaches UNSAT or a different vector — check one step
        outcome = encoder.check(secured_buses=buses)
        if outcome is Result.SAT:
            new_attack = encoder.extract_attack()
            assert set(new_attack.compromised_buses(spec.plan)) != set(buses)
        # the solver state stays reusable
        assert encoder.check() is Result.SAT
