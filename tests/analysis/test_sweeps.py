"""Tests for the shared sweep configurations."""

import pytest

from repro.analysis.sweeps import default_targets, measurement_subset, spec_for_case
from repro.core.verification import verify_attack
from repro.estimation.measurement import MeasurementPlan
from repro.estimation.observability import analyze_observability
from repro.grid.cases import ieee14, ieee30, load_case


class TestDefaultTargets:
    def test_count_and_range(self):
        grid = ieee30()
        targets = default_targets(grid, 3)
        assert len(targets) == 3
        assert all(2 <= t <= 30 for t in targets)

    def test_deterministic(self):
        grid = ieee14()
        assert default_targets(grid) == default_targets(grid)

    def test_no_duplicates(self):
        for name in ("ieee14", "ieee30", "ieee57"):
            targets = default_targets(load_case(name), 3)
            assert len(set(targets)) == 3


class TestMeasurementSubset:
    def test_fraction_respected(self):
        grid = ieee30()
        taken = measurement_subset(grid, 0.7)
        assert len(taken) == pytest.approx(0.7 * 112, abs=1)

    def test_always_observable(self):
        grid = ieee30()
        for fraction in (0.5, 0.6, 0.8, 1.0):
            taken = measurement_subset(grid, fraction, seed=3)
            plan = MeasurementPlan(grid, taken=set(taken))
            assert analyze_observability(plan).observable

    def test_deterministic_per_seed(self):
        grid = ieee14()
        assert measurement_subset(grid, 0.6, seed=1) == measurement_subset(
            grid, 0.6, seed=1
        )

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            measurement_subset(ieee14(), 0.0)
        with pytest.raises(ValueError):
            measurement_subset(ieee14(), 1.5)

    def test_includes_all_injections(self):
        grid = ieee14()
        taken = measurement_subset(grid, 0.5)
        assert set(range(41, 55)) <= taken


class TestSpecForCase:
    def test_defaults(self):
        spec = spec_for_case("ieee14")
        assert spec.grid.num_buses == 14
        assert spec.goal.target_states  # a default target was chosen

    def test_explicit_target(self):
        spec = spec_for_case("ieee14", target_bus=9)
        assert spec.goal.target_states == frozenset({9})

    def test_any_state(self):
        spec = spec_for_case("ieee14", any_state=True)
        assert spec.goal.any_state

    def test_limits_passed_through(self):
        spec = spec_for_case("ieee14", max_measurements=7, max_buses=3)
        assert spec.limits.max_measurements == 7
        assert spec.limits.max_buses == 3

    def test_sweep_instances_are_verifiable(self):
        spec = spec_for_case("ieee14", measurement_fraction=0.7)
        assert verify_attack(spec).attack_exists


class TestBudgetSweep:
    def test_matches_cold_solves_with_one_encode(self):
        from repro.analysis.sweeps import budget_sweep
        from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits

        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        budgets = [None, 1, 2, 3, 4, 6]
        rows = budget_sweep(spec, budgets)
        assert [b for b, _ in rows] == budgets
        for budget, result in rows:
            cold = verify_attack(
                spec.with_limits(ResourceLimits(max_measurements=budget))
            )
            assert result.outcome == cold.outcome
            assert result.statistics["encodes"] == 1

    def test_bus_dimension_and_shared_session(self):
        from repro.analysis.sweeps import budget_sweep
        from repro.core.spec import AttackGoal, AttackSpec
        from repro.core.verification import VerificationSession

        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        session = VerificationSession(spec)
        budget_sweep(spec, [1, 2, 3], dimension="buses", session=session)
        budget_sweep(spec, [None, 4], session=session)
        assert session.encodes == 1
        assert session.probes == 5

    def test_invalid_dimension(self):
        from repro.analysis.sweeps import budget_sweep
        from repro.core.spec import AttackGoal, AttackSpec

        spec = AttackSpec.default(ieee14(), goal=AttackGoal.states(8))
        with pytest.raises(ValueError, match="dimension"):
            budget_sweep(spec, [1], dimension="watts")


class TestVerificationSweepSessions:
    def test_serial_sweep_encodes_each_case_once(self):
        from repro.analysis.sweeps import verification_sweep

        rows = verification_sweep(["ieee14"], targets_per_case=3)
        assert len(rows) == 3
        for _name, _target, result in rows:
            assert result.statistics["encodes"] == 1
        # all three targets were probed on the same session
        assert rows[-1][2].statistics["session_probes"] == 3
