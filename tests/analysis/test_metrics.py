"""Tests for the Table IV model metrics."""

from repro.analysis.metrics import model_metrics
from repro.analysis.sweeps import spec_for_case


class TestModelMetrics:
    def test_both_models_measured(self):
        metrics = model_metrics(spec_for_case("ieee14", any_state=True))
        assert set(metrics) == {"verification", "candidate_selection"}

    def test_verification_dominates(self):
        metrics = model_metrics(spec_for_case("ieee14", any_state=True))
        v, c = metrics["verification"], metrics["candidate_selection"]
        assert v.peak_memory_mb > c.peak_memory_mb
        assert v.sat_variables > 0
        assert v.theory_atoms > 0
        assert c.theory_atoms == 0

    def test_growth_with_system_size(self):
        m14 = model_metrics(spec_for_case("ieee14", any_state=True))
        m30 = model_metrics(spec_for_case("ieee30", any_state=True))
        assert (
            m30["verification"].sat_variables > m14["verification"].sat_variables
        )
        assert (
            m30["verification"].peak_memory_mb > m14["verification"].peak_memory_mb
        )

    def test_roughly_linear_growth(self):
        # Table IV's claim: memory grows about linearly in bus count
        m14 = model_metrics(spec_for_case("ieee14", any_state=True))
        m57 = model_metrics(spec_for_case("ieee57", any_state=True))
        ratio = (
            m57["verification"].sat_variables / m14["verification"].sat_variables
        )
        size_ratio = 57 / 14
        assert ratio < 2.5 * size_ratio  # clearly sub-quadratic
