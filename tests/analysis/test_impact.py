"""Tests for attack impact analysis."""

import numpy as np
import pytest

from repro.analysis.impact import attack_impact
from repro.attacks.liu import perfect_knowledge_attack
from repro.core.spec import AttackGoal, AttackSpec
from repro.core.verification import verify_attack
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow


@pytest.fixture
def setting():
    grid = ieee14()
    spec = AttackSpec.default(grid, goal=AttackGoal.states(10))
    flow = solve_dc_flow(grid, nominal_injections(grid))
    return spec, flow


class TestImpact:
    def test_state_shift_matches_attack(self, setting):
        spec, flow = setting
        attack = perfect_knowledge_attack(spec.plan, {10: 0.1})
        impact = attack_impact(spec, attack, flow)
        assert impact.state_shift[10] == pytest.approx(0.1, abs=1e-8)
        assert impact.state_shift[1] == 0.0
        assert abs(impact.state_shift[3]) < 1e-8

    def test_formal_attack_impact(self, setting):
        spec, flow = setting
        result = verify_attack(spec)
        impact = attack_impact(spec, result.attack.scaled(0.02), flow)
        assert impact.state_shift[10] != 0.0

    def test_flow_shift_consistent_with_states(self, setting):
        spec, flow = setting
        attack = perfect_knowledge_attack(spec.plan, {10: 0.1})
        impact = attack_impact(spec, attack, flow)
        line16 = spec.grid.line(16)  # 9-10
        expected = line16.admittance * (
            impact.state_shift[9] - impact.state_shift[10]
        )
        assert impact.flow_shift[16] == pytest.approx(expected, abs=1e-8)

    def test_load_shift_sums_to_zero(self, setting):
        # shifting flows moves apparent load around, it cannot create power
        spec, flow = setting
        attack = perfect_knowledge_attack(spec.plan, {10: 0.1, 12: -0.05})
        impact = attack_impact(spec, attack, flow)
        assert sum(impact.load_shift.values()) == pytest.approx(0.0, abs=1e-8)

    def test_aggregates(self, setting):
        spec, flow = setting
        attack = perfect_knowledge_attack(spec.plan, {10: 0.1})
        impact = attack_impact(spec, attack, flow)
        assert impact.max_flow_shift > 0
        assert impact.total_load_shift > 0

    def test_empty_attack_no_impact(self, setting):
        from repro.attacks.vector import AttackVector

        spec, flow = setting
        impact = attack_impact(spec, AttackVector(), flow)
        assert impact.max_flow_shift == pytest.approx(0.0, abs=1e-9)
