"""Tests for the security metrics module."""

import pytest

from repro.analysis.security_metrics import bus_criticality, security_metrics
from repro.core.spec import AttackGoal, AttackSpec
from repro.grid.cases import ieee14
from repro.grid.model import Grid, Line


def path_spec(n=4):
    grid = Grid(n, [Line(i, i, i + 1, 2.0) for i in range(1, n)])
    return AttackSpec.default(grid, goal=AttackGoal.any())


class TestSecurityMetrics:
    def test_path_grid_report(self):
        report = security_metrics(path_spec(4))
        assert set(report.state_costs) == {2, 3, 4}
        # non-exclusive goals admit island shifts: cutting the grid at
        # line 1 moves every state beyond it for the same 4 injections,
        # so all three states tie at the minimum
        assert report.state_costs == {2: 4, 3: 4, 4: 4}
        assert report.weakest_states == [2, 3, 4]
        assert report.grid_attack_cost == 4

    def test_exposure_counts(self):
        report = security_metrics(path_spec(3))
        # every minimal attack uses some measurement at least once
        assert report.measurement_exposure
        assert all(v >= 1 for v in report.measurement_exposure.values())

    def test_ieee14_leaf_is_weakest(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        report = security_metrics(spec)
        assert report.weakest_states == [8]  # the only leaf bus
        assert report.state_costs[8] == 4

    def test_immune_grid(self):
        from repro.estimation.measurement import MeasurementPlan
        from repro.estimation.observability import basic_measurement_set

        grid = ieee14()
        plan = MeasurementPlan(grid)
        protected = basic_measurement_set(plan)
        spec = AttackSpec(
            grid=grid,
            plan=plan.with_secured_measurements(protected),
            goal=AttackGoal.any(),
        )
        report = security_metrics(spec)
        assert all(c is None for c in report.state_costs.values())
        assert report.grid_attack_cost is None
        assert report.weakest_states == []


class TestBusCriticality:
    def test_securing_raises_cost(self):
        spec = path_spec(4)
        base = security_metrics(spec).grid_attack_cost
        crit = bus_criticality(spec, buses=[3, 4])
        for bus, new_cost in crit.items():
            assert new_cost is None or new_cost >= base

    def test_leaf_neighbor_matters_on_ieee14(self):
        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        crit = bus_criticality(spec, buses=[7, 8])
        # securing bus 7 or 8 blocks the cheapest (bus-8) attack, so the
        # grid cost rises above 4 either way
        for new_cost in crit.values():
            assert new_cost is None or new_cost > 4

    def test_symbolic_path_matches_plan_modification(self):
        # the default path secures buses by assumption on one symbolic
        # session; it must agree with re-encoding a modified plan
        from repro.core.mincost import minimum_attack_cost

        spec = AttackSpec.default(ieee14(), goal=AttackGoal.any())
        buses = [2, 5, 8]
        symbolic = bus_criticality(spec, buses=buses)
        for bus in buses:
            modified = spec.with_secured_buses([bus])
            assert symbolic[bus] == minimum_attack_cost(modified).cost
