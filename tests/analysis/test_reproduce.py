"""Smoke tests for the one-shot evaluation reproducer."""

import pytest

from repro.analysis import reproduce


class TestSections:
    def test_case_studies_print_expected_verdicts(self, capsys):
        reproduce.case_studies()
        out = capsys.readouterr().out
        assert out.count("sat") >= 7  # every row reports a verdict
        assert "unsat" in out
        assert "excluded=[13]" in out  # the topology-poisoning revival

    def test_figure_4a_rows(self, capsys):
        reproduce.figure_4a(["ieee14"])
        out = capsys.readouterr().out
        assert "ieee14" in out
        assert "avg" in out

    def test_figure_4d_asserts_verdicts(self, capsys):
        reproduce.figure_4d(["ieee14"])
        out = capsys.readouterr().out
        assert "sat (s)" in out

    def test_table_4_rows(self, capsys):
        reproduce.table_4(["ieee14"])
        out = capsys.readouterr().out
        assert "verification" in out
        assert "candidate_selection" in out


class TestSynthesisSections:
    def test_scenarios_section(self, capsys):
        reproduce.scenarios()
        out = capsys.readouterr().out
        assert out.count("minimum budget") == 3
        assert "infeasible" in out
