"""Facade-level tests for the SMT solver, including differential tests
against boolean enumeration + linprog on random mixed formulas."""

import itertools
import random
from fractions import Fraction

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.smt import (
    And,
    Not,
    Or,
    Result,
    Solver,
    eq,
    ge,
    iff,
    implies,
    le,
    neq_with_eps,
)

F = Fraction


class TestBooleanLayer:
    def test_sat_and_model(self):
        s = Solver()
        a, b = s.bool_var("a"), s.bool_var("b")
        s.add(Or(a, b), Not(a))
        assert s.check() is Result.SAT
        m = s.model()
        assert not m.value(a) and m.value(b)

    def test_unsat(self):
        s = Solver()
        a = s.bool_var("a")
        s.add(a, Not(a))
        assert s.check() is Result.UNSAT

    def test_model_requires_sat(self):
        s = Solver()
        a = s.bool_var("a")
        s.add(a, Not(a))
        s.check()
        with pytest.raises(RuntimeError):
            s.model()

    def test_iff(self):
        s = Solver()
        a, b = s.bool_var("a"), s.bool_var("b")
        s.add(iff(a, b), a)
        assert s.check() is Result.SAT
        assert s.model().value(b)

    def test_unconstrained_bool_defaults_false_in_model(self):
        s = Solver()
        a = s.bool_var("a")
        b = s.bool_var("b")
        s.add(a)
        assert s.check() is Result.SAT
        assert s.model().value(b) in (True, False)  # defined either way


class TestArithmeticLayer:
    def test_equality_chain(self):
        s = Solver()
        x, y, z = s.real_var("x"), s.real_var("y"), s.real_var("z")
        s.add(eq(x + y, 10), eq(y + z, 5), eq(z, 1), ge(x, 0))
        assert s.check() is Result.SAT
        m = s.model()
        assert m.real_value(z) == 1
        assert m.real_value(y) == 4
        assert m.real_value(x) == 6

    def test_exact_rationals(self):
        s = Solver()
        x = s.real_var("x")
        s.add(eq(x * 3, 1))
        assert s.check() is Result.SAT
        assert s.model().real_value(x) == F(1, 3)

    def test_strict_via_negation(self):
        s = Solver()
        x = s.real_var("x")
        s.add(Not(le(x, 5)), le(x, 6))
        assert s.check() is Result.SAT
        v = s.model().real_value(x)
        assert 5 < v <= 6

    def test_strict_window_conflict(self):
        s = Solver()
        x = s.real_var("x")
        s.add(Not(le(x, 5)), Not(ge(x, 5)))
        assert s.check() is Result.UNSAT

    def test_neq_with_eps_both_branches(self):
        for force in ("pos", "neg"):
            s = Solver()
            x = s.real_var("x")
            s.add(neq_with_eps(x, 1))
            if force == "pos":
                s.add(ge(x, 0))
                assert s.check() is Result.SAT
                assert s.model().real_value(x) >= 1
            else:
                s.add(le(x, 0))
                assert s.check() is Result.SAT
                assert s.model().real_value(x) <= -1

    def test_eval_expr(self):
        s = Solver()
        x, y = s.real_var("x"), s.real_var("y")
        s.add(eq(x, 2), eq(y, 3))
        s.check()
        assert s.model().eval_expr(2 * x + y - 1) == 6


class TestMixed:
    def test_implication_into_arithmetic(self):
        s = Solver()
        p = s.bool_var("p")
        x = s.real_var("x")
        s.add(implies(p, ge(x, 10)), implies(Not(p), le(x, -10)), ge(x, 0))
        assert s.check() is Result.SAT
        m = s.model()
        assert m.value(p) and m.real_value(x) >= 10

    def test_arithmetic_forces_boolean(self):
        s = Solver()
        p = s.bool_var("p")
        x = s.real_var("x")
        s.add(iff(p, ge(x, 5)), eq(x, 7))
        assert s.check() is Result.SAT
        assert s.model().value(p)

    def test_cardinality_with_arithmetic(self):
        s = Solver()
        xs = s.real_vars("x", 5)
        bs = s.bool_vars("b", 5)
        for x, b in zip(xs, bs):
            s.add(implies(b, ge(x, 1)), implies(Not(b), eq(x, 0)))
        total = xs[0] + xs[1] + xs[2] + xs[3] + xs[4]
        s.add(ge(total, 3))
        s.add_at_most(bs, 3)
        assert s.check() is Result.SAT
        m = s.model()
        assert sum(m.value(b) for b in bs) <= 3
        assert m.eval_expr(total) >= 3

    def test_at_most_zero(self):
        s = Solver()
        bs = s.bool_vars("b", 3)
        s.add_at_most(bs, 0)
        s.add(Or(*bs))
        assert s.check() is Result.UNSAT

    def test_add_exactly(self):
        s = Solver()
        bs = s.bool_vars("b", 4)
        s.add_exactly(bs, 2)
        assert s.check() is Result.SAT
        assert sum(s.model().value(b) for b in bs) == 2


class TestIncremental:
    def test_push_pop_restores_sat(self):
        s = Solver()
        x = s.real_var("x")
        s.add(ge(x, 0))
        assert s.check() is Result.SAT
        s.push()
        s.add(le(x, -1))
        assert s.check() is Result.UNSAT
        s.pop()
        assert s.check() is Result.SAT

    def test_nested_push_pop(self):
        s = Solver()
        a, b = s.bool_var("a"), s.bool_var("b")
        s.add(Or(a, b))
        s.push()
        s.add(Not(a))
        s.push()
        s.add(Not(b))
        assert s.check() is Result.UNSAT
        s.pop()
        assert s.check() is Result.SAT
        assert s.model().value(b)
        s.pop()
        assert s.check() is Result.SAT

    def test_pop_without_push(self):
        s = Solver()
        with pytest.raises(RuntimeError):
            s.pop()

    def test_assumptions(self):
        s = Solver()
        a = s.bool_var("a")
        x = s.real_var("x")
        s.add(implies(a, ge(x, 5)), le(x, 3))
        assert s.check(assumptions=[a]) is Result.UNSAT
        assert s.check(assumptions=[Not(a)]) is Result.SAT
        assert s.check() is Result.SAT  # assumptions don't persist

    def test_adding_after_check(self):
        s = Solver()
        x = s.real_var("x")
        s.add(ge(x, 0))
        assert s.check() is Result.SAT
        s.add(le(x, -1))
        assert s.check() is Result.UNSAT

    def test_statistics_shape(self):
        s = Solver()
        x = s.real_var("x")
        s.add(ge(x, 0))
        s.check()
        stats = s.statistics()
        for key in ("sat_variables", "clauses", "simplex_rows", "conflicts"):
            assert key in stats


class TestDifferentialMixed:
    """Random mixed bool+LRA formulas vs enumeration + linprog."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_guarded_systems(self, seed):
        rng = random.Random(1000 + seed)
        nv, nb = rng.randint(1, 3), rng.randint(1, 3)
        s = Solver()
        xs = s.real_vars("x", nv)
        bs = s.bool_vars("b", nb)
        guarded = []
        for _ in range(rng.randint(2, 7)):
            bi = rng.randrange(nb)
            pol = rng.random() < 0.5
            coeffs = [rng.randint(-2, 2) for _ in range(nv)]
            if all(c == 0 for c in coeffs):
                coeffs[0] = 1
            bound = rng.randint(-4, 4)
            use_le = rng.random() < 0.5
            expr = sum((c * x for c, x in zip(coeffs, xs)), start=0 * xs[0])
            atom = le(expr, bound) if use_le else ge(expr, bound)
            antecedent = bs[bi] if pol else Not(bs[bi])
            s.add(implies(antecedent, atom))
            guarded.append((bi, pol, coeffs, bound, use_le))
        got = s.check()
        feasible = False
        for bits in itertools.product([False, True], repeat=nb):
            a_ub, b_ub = [], []
            for bi, pol, coeffs, bound, use_le in guarded:
                if bits[bi] == pol:
                    if use_le:
                        a_ub.append(coeffs)
                        b_ub.append(bound)
                    else:
                        a_ub.append([-c for c in coeffs])
                        b_ub.append(-bound)
            if not a_ub:
                feasible = True
                break
            res = linprog(
                c=[0.0] * nv,
                A_ub=np.array(a_ub, dtype=float),
                b_ub=np.array(b_ub, dtype=float),
                bounds=[(None, None)] * nv,
                method="highs",
            )
            if res.status == 0:
                feasible = True
                break
        assert (got is Result.SAT) == feasible
