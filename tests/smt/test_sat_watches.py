"""Guards for the flat watch-list layout, Luby restarts and DB reduction.

The watch lists moved from a dict keyed by signed literal to a flat list
indexed by ``2*var + (lit < 0)``.  The refactor must not change the
search at all, so the golden statistics below — captured on the
dict-keyed implementation — pin the full before/after behaviour:
identical conflicts, decisions, propagations and learned literals on
fixed hard instances.
"""

import pytest

from repro.smt.sat import SatSolver, luby

from tests.smt.test_sat_internals import hard_random_instance

# (seed, expected) with expected =
#   (sat?, conflicts, decisions, propagations, learned_literals)
GOLDEN_SEARCH_STATS = [
    (1, (True, 10, 19, 143, 40)),
    (2, (False, 43, 45, 474, 140)),
    (3, (False, 36, 39, 376, 108)),
]


def assert_watch_invariant(solver):
    """Every 2+-literal clause is watched exactly on -clause[0], -clause[1]."""
    locations = {}
    for index, watchlist in enumerate(solver.watches):
        for clause in watchlist:
            locations.setdefault(id(clause), []).append(index)
    for clause in solver.clauses + solver.learnts:
        if len(clause) < 2:
            continue
        expected = [
            solver._watch_index(-clause[0]),
            solver._watch_index(-clause[1]),
        ]
        assert sorted(locations.get(id(clause), [])) == sorted(expected)


class TestLuby:
    def test_first_fifteen_values(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_powers_at_complete_subsequences(self):
        # luby(2^k - 1) == 2^(k-1)
        for k in range(1, 10):
            assert luby((1 << k) - 1) == 1 << (k - 1)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            luby(0)


class TestFlatWatchLayout:
    def test_index_mapping(self):
        solver = SatSolver()
        solver.ensure_vars(3)
        assert solver._watch_index(1) == 2
        assert solver._watch_index(-1) == 3
        assert solver._watch_index(3) == 6
        assert solver._watch_index(-3) == 7
        assert len(solver.watches) == 2 * 3 + 2  # padding for var 0

    def test_new_var_extends_watches(self):
        solver = SatSolver()
        before = len(solver.watches)
        solver.new_var()
        assert len(solver.watches) == before + 2

    def test_invariant_after_solving(self):
        solver = hard_random_instance(1)
        assert solver.solve() is True
        assert_watch_invariant(solver)

    @pytest.mark.parametrize("seed,expected", GOLDEN_SEARCH_STATS)
    def test_search_statistics_unchanged_by_refactor(self, seed, expected):
        sat, conflicts, decisions, propagations, learned = expected
        solver = hard_random_instance(seed)
        assert solver.solve() is sat
        assert solver.stats["conflicts"] == conflicts
        assert solver.stats["decisions"] == decisions
        assert solver.stats["propagations"] == propagations
        assert solver.stats["learned_literals"] == learned


class TestReduceDb:
    def test_solve_reduce_resolve_still_finds_model(self):
        solver = hard_random_instance(6, n=60)
        assert solver.solve() is True
        solver.cancel_until(0)
        solver._reduce_db()
        assert_watch_invariant(solver)
        assert solver.solve() is True
        for clause in solver.clauses:
            assert any(
                solver.assign[abs(l)] == (1 if l > 0 else -1) for l in clause
            )

    def test_reduction_drops_only_unlocked_long_learnts(self):
        solver = hard_random_instance(3, n=80)
        solver.solve()
        solver.cancel_until(0)
        before = list(solver.learnts)
        solver._reduce_db()
        kept = {id(c) for c in solver.learnts}
        for clause in before:
            if len(clause) <= 2:
                assert id(clause) in kept  # binary clauses are never dropped
        assert_watch_invariant(solver)
