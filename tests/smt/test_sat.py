"""Unit and property tests for the CDCL SAT core."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.sat import SatSolver, luby


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any((l > 0) == bits[abs(l) - 1] for l in c) for c in clauses):
            return True
    return False


def make_solver(num_vars, clauses):
    solver = SatSolver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        if not solver.add_clause(clause):
            return solver, False
    return solver, True


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestBasics:
    def test_empty_instance_is_sat(self):
        solver = SatSolver()
        assert solver.solve() is True

    def test_unit_clause(self):
        solver, ok = make_solver(1, [[1]])
        assert ok and solver.solve() is True
        assert solver.assign[1] == 1

    def test_contradictory_units(self):
        solver, ok = make_solver(1, [[1], [-1]])
        assert not ok or solver.solve() is False

    def test_simple_implication_chain(self):
        solver, ok = make_solver(3, [[1], [-1, 2], [-2, 3]])
        assert ok and solver.solve() is True
        assert solver.assign[3] == 1

    def test_pigeonhole_2_into_1(self):
        # two pigeons, one hole: p1 and p2 both in hole, not together
        solver, ok = make_solver(2, [[1], [2], [-1, -2]])
        assert solver.solve() is False

    def test_tautology_ignored(self):
        solver, ok = make_solver(2, [[1, -1], [2]])
        assert ok and solver.solve() is True

    def test_duplicate_literals_collapsed(self):
        solver, ok = make_solver(1, [[1, 1, 1]])
        assert ok and solver.solve() is True

    def test_solver_reusable_after_unsat_assumptions(self):
        solver, ok = make_solver(2, [[1, 2]])
        assert solver.solve(assumptions=[-1, -2]) is False
        assert solver.ok
        assert solver.solve() is True

    def test_assumption_conflicting_with_units(self):
        solver, ok = make_solver(1, [[1]])
        assert solver.solve(assumptions=[-1]) is False
        assert solver.solve(assumptions=[1]) is True

    def test_pigeonhole_4_into_3_unsat(self):
        # PHP(4,3): var p_{i,h} = 3*(i-1)+h, pigeons 1..4, holes 1..3
        clauses = []
        def var(i, h):
            return 3 * (i - 1) + h
        for i in range(1, 5):
            clauses.append([var(i, h) for h in range(1, 4)])
        for h in range(1, 4):
            for i in range(1, 5):
                for j in range(i + 1, 5):
                    clauses.append([-var(i, h), -var(j, h)])
        solver, ok = make_solver(12, clauses)
        assert solver.solve() is False

    def test_conflict_budget_returns_none(self):
        clauses = []
        def var(i, h):
            return 5 * (i - 1) + h
        for i in range(1, 7):
            clauses.append([var(i, h) for h in range(1, 6)])
        for h in range(1, 6):
            for i in range(1, 7):
                for j in range(i + 1, 7):
                    clauses.append([-var(i, h), -var(j, h)])
        solver, ok = make_solver(30, clauses)
        solver.conflict_budget = 3
        assert solver.solve() is None


class TestRandomizedAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_3cnf(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 9)
        m = rng.randint(3, 40)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(rng.randint(1, 3))]
            for _ in range(m)
        ]
        solver, ok = make_solver(n, clauses)
        got = solver.solve() if ok else False
        assert got == brute_force_sat(n, clauses)
        if got:
            for clause in clauses:
                assert any(
                    solver.assign[abs(l)] == (1 if l > 0 else -1) for l in clause
                )


@settings(max_examples=150, deadline=None)
@given(
    st.integers(2, 8).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.lists(
                    st.integers(1, n).map(lambda v: v)
                    .flatmap(lambda v: st.sampled_from([v, -v])),
                    min_size=1,
                    max_size=4,
                ),
                min_size=1,
                max_size=30,
            ),
        )
    )
)
def test_hypothesis_cnf_matches_brute_force(case):
    n, clauses = case
    solver, ok = make_solver(n, clauses)
    got = solver.solve() if ok else False
    assert got == brute_force_sat(n, clauses)
