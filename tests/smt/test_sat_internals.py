"""Tests for CDCL internals: restarts, clause DB reduction, statistics."""

import random

import pytest

from repro.smt.sat import SatSolver


def hard_random_instance(seed, n=40, ratio=4.2):
    """A near-threshold random 3-CNF (hard enough to cause conflicts)."""
    rng = random.Random(seed)
    m = int(n * ratio)
    solver = SatSolver()
    solver.ensure_vars(n)
    for _ in range(m):
        clause = []
        while len(clause) < 3:
            lit = rng.choice([1, -1]) * rng.randint(1, n)
            if lit not in clause and -lit not in clause:
                clause.append(lit)
        if not solver.add_clause(clause):
            break
    return solver


class TestStatistics:
    def test_counters_advance(self):
        solver = hard_random_instance(1)
        solver.solve()
        stats = solver.stats
        assert stats["decisions"] > 0
        assert stats["propagations"] > 0

    def test_conflicts_on_unsat_core(self):
        solver = SatSolver()
        solver.ensure_vars(12)
        # PHP(4,3)
        def var(i, h):
            return 3 * (i - 1) + h
        for i in range(1, 5):
            solver.add_clause([var(i, h) for h in range(1, 4)])
        for h in range(1, 4):
            for i in range(1, 5):
                for j in range(i + 1, 5):
                    solver.add_clause([-var(i, h), -var(j, h)])
        assert solver.solve() is False
        assert solver.stats["conflicts"] > 0
        assert solver.stats["learned_literals"] > 0


class TestRestarts:
    def test_restarts_happen_on_hard_instances(self):
        # PHP(7,6) generates hundreds of conflicts -> several restarts
        n_pigeons, n_holes = 7, 6
        solver = SatSolver()
        solver.ensure_vars(n_pigeons * n_holes)

        def var(i, h):
            return n_holes * (i - 1) + h

        for i in range(1, n_pigeons + 1):
            solver.add_clause([var(i, h) for h in range(1, n_holes + 1)])
        for h in range(1, n_holes + 1):
            for i in range(1, n_pigeons + 1):
                for j in range(i + 1, n_pigeons + 1):
                    solver.add_clause([-var(i, h), -var(j, h)])
        assert solver.solve() is False
        assert solver.stats["restarts"] >= 1

    def test_solution_correct_despite_restarts(self):
        solver = hard_random_instance(7, n=60)
        result = solver.solve()
        if result:
            for clause in solver.clauses:
                assert any(
                    solver.assign[abs(l)] == (1 if l > 0 else -1) for l in clause
                )


class TestClauseDatabase:
    def test_learnts_grow_then_reduce(self):
        solver = hard_random_instance(3, n=80)
        solver.solve()
        # after a full solve the DB was maintained: all learnt clauses
        # remain watched consistently (resolvable watches invariant)
        for clause in solver.learnts:
            assert len(clause) >= 1

    def test_reduce_db_keeps_reasons(self):
        solver = hard_random_instance(5, n=60)
        solver.conflict_budget = 300
        solver.solve()
        # force an explicit reduction and ensure watch lists stay sane
        solver._reduce_db()
        for index, watchlist in enumerate(solver.watches):
            var, negated = index >> 1, index & 1
            lit = -var if negated else var
            for clause in watchlist:
                assert lit in (-clause[0], -clause[1])


class TestIncrementalReuse:
    def test_add_clause_after_solve(self):
        solver = SatSolver()
        solver.ensure_vars(3)
        solver.add_clause([1, 2])
        assert solver.solve() is True
        solver.cancel_until(0)
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() is False

    def test_alternating_assumption_polarity(self):
        solver = SatSolver()
        solver.ensure_vars(2)
        solver.add_clause([1, 2])
        for _ in range(5):
            assert solver.solve(assumptions=[1]) is True
            assert solver.solve(assumptions=[-1]) is True
            assert solver.solve(assumptions=[-1, -2]) is False

    def test_budget_then_full_solve(self):
        solver = hard_random_instance(11, n=70)
        solver.conflict_budget = 1
        first = solver.solve()
        solver.conflict_budget = None
        second = solver.solve()
        assert second in (True, False)
        if first is not None:
            assert first == second
