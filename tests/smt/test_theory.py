"""Direct tests for the LRA theory adapter."""

from fractions import Fraction

import pytest

from repro.smt.cnf import CnfBuilder
from repro.smt.terms import RealVar, ge, le
from repro.smt.theory import LraTheory

F = Fraction


def make_atom(builder, term):
    sat_var = builder.literal_for(term)
    return sat_var, builder.atom_of_var[sat_var]


class TestRegistration:
    def test_single_variable_atom_binds_directly(self):
        builder = CnfBuilder()
        theory = LraTheory()
        x = RealVar("x", 0)
        sat_var, atom = make_atom(builder, le(x, 5))
        theory.register_atom(sat_var, atom)
        # one simplex variable (the real), no rows
        assert theory.simplex.num_vars == 1
        assert theory.simplex.rows == {}

    def test_multi_variable_atom_creates_slack_row(self):
        builder = CnfBuilder()
        theory = LraTheory()
        x, y = RealVar("x", 0), RealVar("y", 1)
        sat_var, atom = make_atom(builder, le(x + y, 5))
        theory.register_atom(sat_var, atom)
        assert theory.simplex.num_vars == 3  # x, y, slack
        assert len(theory.simplex.rows) == 1

    def test_same_form_shares_slack(self):
        builder = CnfBuilder()
        theory = LraTheory()
        x, y = RealVar("x", 0), RealVar("y", 1)
        v1, a1 = make_atom(builder, le(x + y, 5))
        v2, a2 = make_atom(builder, ge(x + y, 1))
        theory.register_atom(v1, a1)
        theory.register_atom(v2, a2)
        assert len(theory.simplex.rows) == 1

    def test_scaled_form_shares_slack(self):
        builder = CnfBuilder()
        theory = LraTheory()
        x, y = RealVar("x", 0), RealVar("y", 1)
        v1, a1 = make_atom(builder, le(x + y, 5))
        v2, a2 = make_atom(builder, le(2 * x + 2 * y, 10))
        assert v1 == v2  # interned at the CNF layer already


class TestAssertions:
    def setup_method(self):
        self.builder = CnfBuilder()
        self.theory = LraTheory()
        x = RealVar("x", 0)
        self.x = x
        self.le5_var, atom = make_atom(self.builder, le(x, 5))
        self.theory.register_atom(self.le5_var, atom)
        self.ge3_var, atom = make_atom(self.builder, ge(x, 3))
        self.theory.register_atom(self.ge3_var, atom)

    def test_compatible_bounds(self):
        assert self.theory.assert_lit(self.le5_var, 0) is None
        assert self.theory.assert_lit(self.ge3_var, 1) is None
        assert self.theory.check() is None
        values = self.theory.real_values()
        assert F(3) <= values[0] <= F(5)

    def test_conflicting_bounds_explained(self):
        # x <= 5 and not (x >= 3) is fine; x >= 3 and not (x <= 5)... use
        # a real conflict: x <= 5 asserted, then x >= 6 via negated le
        assert self.theory.assert_lit(self.le5_var, 0) is None
        ge6_var, atom = make_atom(self.builder, ge(self.x, 6))
        self.theory.register_atom(ge6_var, atom)
        conflict = self.theory.assert_lit(ge6_var, 1)
        assert conflict is not None
        assert set(conflict) == {self.le5_var, ge6_var}

    def test_negated_literal_asserts_strict_opposite(self):
        # not (x <= 5)  =>  x > 5; with x <= 5 already asserted: conflict
        assert self.theory.assert_lit(self.le5_var, 0) is None
        conflict = self.theory.assert_lit(-self.le5_var, 1)
        assert conflict is not None

    def test_backtracking_releases_bounds(self):
        assert self.theory.assert_lit(self.le5_var, 0) is None
        assert self.theory.assert_lit(self.ge3_var, 1) is None
        self.theory.backtrack_to(1)  # keep only trail index 0
        ge6_var, atom = make_atom(self.builder, ge(self.x, 6))
        self.theory.register_atom(ge6_var, atom)
        # x >= 6 conflicts with x <= 5 (still asserted at index 0)
        assert self.theory.assert_lit(ge6_var, 2) is not None
        self.theory.backtrack_to(0)
        # now nothing is asserted: x >= 6 is fine
        assert self.theory.assert_lit(ge6_var, 3) is None
        assert self.theory.check() is None

    def test_is_theory_var(self):
        assert self.theory.is_theory_var(self.le5_var)
        assert not self.theory.is_theory_var(99)


class TestPropagation:
    """Row-implied bound propagation (integer kernel only)."""

    def setup_method(self):
        self.builder = CnfBuilder()
        self.theory = LraTheory(propagate=True)
        x, y = RealVar("x", 0), RealVar("y", 1)
        self.a_var, atom = make_atom(self.builder, ge(x, 1))
        self.theory.register_atom(self.a_var, atom)
        self.b_var, atom = make_atom(self.builder, ge(y, 1))
        self.theory.register_atom(self.b_var, atom)
        # two atoms over the shared slack row  s = x + y
        self.c_var, atom = make_atom(self.builder, ge(x + y, 2))
        self.theory.register_atom(self.c_var, atom)
        self.d_var, atom = make_atom(self.builder, le(x + y, 1))
        self.theory.register_atom(self.d_var, atom)

    def _value_fn(self, assigned):
        return lambda lit: assigned.get(abs(lit), 0) * (1 if lit > 0 else -1)

    def _assert_bounds(self):
        assert self.theory.assert_lit(self.a_var, 0) is None
        assert self.theory.assert_lit(self.b_var, 1) is None
        assert self.theory.check() is None

    def test_entailed_atoms_with_explanations(self):
        # x >= 1 and y >= 1 imply x + y >= 2 and refute x + y <= 1
        self._assert_bounds()
        implied, conflict = self.theory.propagate(
            self._value_fn({self.a_var: 1, self.b_var: 1})
        )
        assert conflict is None
        by_lit = {lit: expl for lit, expl in implied}
        assert set(by_lit) == {self.c_var, -self.d_var}
        for expl in by_lit.values():
            assert set(expl) == {self.a_var, self.b_var}
        assert self.theory.stats["implied_bounds"] == 2
        assert self.theory.stats["prop_calls"] == 1

    def test_false_entailed_literal_becomes_conflict(self):
        self._assert_bounds()
        implied, conflict = self.theory.propagate(
            self._value_fn({self.a_var: 1, self.b_var: 1, self.c_var: -1})
        )
        assert implied == []
        assert conflict is not None
        assert conflict[0] == self.c_var  # reason[0] is the implied lit
        assert set(conflict[1:]) == {-self.a_var, -self.b_var}

    def test_already_true_literals_are_skipped(self):
        self._assert_bounds()
        implied, __ = self.theory.propagate(
            self._value_fn({self.a_var: 1, self.b_var: 1, self.c_var: 1})
        )
        assert {lit for lit, _ in implied} == {-self.d_var}

    def test_budget_requeues_rows_for_the_next_call(self):
        self._assert_bounds()
        self.theory.propagation_budget = 0
        value = self._value_fn({self.a_var: 1, self.b_var: 1})
        assert self.theory.propagate(value) == ([], None)
        # the starved row stays dirty and is picked up once budget allows
        self.theory.propagation_budget = 8
        implied, __ = self.theory.propagate(value)
        assert {lit for lit, _ in implied} == {self.c_var, -self.d_var}

    def test_clean_state_propagates_nothing(self):
        self._assert_bounds()
        value = self._value_fn({self.a_var: 1, self.b_var: 1})
        self.theory.propagate(value)
        assert self.theory.propagate(value) == ([], None)

    def test_reference_kernel_never_propagates(self):
        theory = LraTheory(kernel="reference", propagate=True)
        assert not theory.propagation
        x = RealVar("x", 0)
        builder = CnfBuilder()
        a_var, atom = make_atom(builder, ge(x, 1))
        theory.register_atom(a_var, atom)
        assert theory.assert_lit(a_var, 0) is None
        assert theory.check() is None
        assert theory.propagate(lambda lit: 0) == ([], None)
