"""Direct tests for the LRA theory adapter."""

from fractions import Fraction

import pytest

from repro.smt.cnf import CnfBuilder
from repro.smt.terms import RealVar, ge, le
from repro.smt.theory import LraTheory

F = Fraction


def make_atom(builder, term):
    sat_var = builder.literal_for(term)
    return sat_var, builder.atom_of_var[sat_var]


class TestRegistration:
    def test_single_variable_atom_binds_directly(self):
        builder = CnfBuilder()
        theory = LraTheory()
        x = RealVar("x", 0)
        sat_var, atom = make_atom(builder, le(x, 5))
        theory.register_atom(sat_var, atom)
        # one simplex variable (the real), no rows
        assert theory.simplex.num_vars == 1
        assert theory.simplex.rows == {}

    def test_multi_variable_atom_creates_slack_row(self):
        builder = CnfBuilder()
        theory = LraTheory()
        x, y = RealVar("x", 0), RealVar("y", 1)
        sat_var, atom = make_atom(builder, le(x + y, 5))
        theory.register_atom(sat_var, atom)
        assert theory.simplex.num_vars == 3  # x, y, slack
        assert len(theory.simplex.rows) == 1

    def test_same_form_shares_slack(self):
        builder = CnfBuilder()
        theory = LraTheory()
        x, y = RealVar("x", 0), RealVar("y", 1)
        v1, a1 = make_atom(builder, le(x + y, 5))
        v2, a2 = make_atom(builder, ge(x + y, 1))
        theory.register_atom(v1, a1)
        theory.register_atom(v2, a2)
        assert len(theory.simplex.rows) == 1

    def test_scaled_form_shares_slack(self):
        builder = CnfBuilder()
        theory = LraTheory()
        x, y = RealVar("x", 0), RealVar("y", 1)
        v1, a1 = make_atom(builder, le(x + y, 5))
        v2, a2 = make_atom(builder, le(2 * x + 2 * y, 10))
        assert v1 == v2  # interned at the CNF layer already


class TestAssertions:
    def setup_method(self):
        self.builder = CnfBuilder()
        self.theory = LraTheory()
        x = RealVar("x", 0)
        self.x = x
        self.le5_var, atom = make_atom(self.builder, le(x, 5))
        self.theory.register_atom(self.le5_var, atom)
        self.ge3_var, atom = make_atom(self.builder, ge(x, 3))
        self.theory.register_atom(self.ge3_var, atom)

    def test_compatible_bounds(self):
        assert self.theory.assert_lit(self.le5_var, 0) is None
        assert self.theory.assert_lit(self.ge3_var, 1) is None
        assert self.theory.check() is None
        values = self.theory.real_values()
        assert F(3) <= values[0] <= F(5)

    def test_conflicting_bounds_explained(self):
        # x <= 5 and not (x >= 3) is fine; x >= 3 and not (x <= 5)... use
        # a real conflict: x <= 5 asserted, then x >= 6 via negated le
        assert self.theory.assert_lit(self.le5_var, 0) is None
        ge6_var, atom = make_atom(self.builder, ge(self.x, 6))
        self.theory.register_atom(ge6_var, atom)
        conflict = self.theory.assert_lit(ge6_var, 1)
        assert conflict is not None
        assert set(conflict) == {self.le5_var, ge6_var}

    def test_negated_literal_asserts_strict_opposite(self):
        # not (x <= 5)  =>  x > 5; with x <= 5 already asserted: conflict
        assert self.theory.assert_lit(self.le5_var, 0) is None
        conflict = self.theory.assert_lit(-self.le5_var, 1)
        assert conflict is not None

    def test_backtracking_releases_bounds(self):
        assert self.theory.assert_lit(self.le5_var, 0) is None
        assert self.theory.assert_lit(self.ge3_var, 1) is None
        self.theory.backtrack_to(1)  # keep only trail index 0
        ge6_var, atom = make_atom(self.builder, ge(self.x, 6))
        self.theory.register_atom(ge6_var, atom)
        # x >= 6 conflicts with x <= 5 (still asserted at index 0)
        assert self.theory.assert_lit(ge6_var, 2) is not None
        self.theory.backtrack_to(0)
        # now nothing is asserted: x >= 6 is fine
        assert self.theory.assert_lit(ge6_var, 3) is None
        assert self.theory.check() is None

    def test_is_theory_var(self):
        assert self.theory.is_theory_var(self.le5_var)
        assert not self.theory.is_theory_var(99)
