"""Unit tests for the SMT term language."""

from fractions import Fraction

import pytest

from repro.smt.terms import (
    And,
    Atom,
    BoolVar,
    FALSE,
    LinExpr,
    Not,
    Or,
    RealVar,
    TRUE,
    eq,
    ge,
    iff,
    implies,
    le,
    linear_sum,
    neq_with_eps,
    to_fraction,
)


class TestToFraction:
    def test_int(self):
        assert to_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(2, 7)
        assert to_fraction(f) is f

    def test_float_uses_decimal_repr(self):
        assert to_fraction(16.90) == Fraction(169, 10)
        assert to_fraction(0.1) == Fraction(1, 10)

    def test_negative_float(self):
        assert to_fraction(-2.5) == Fraction(-5, 2)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            to_fraction(True)

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            to_fraction("1.5")


class TestLinExpr:
    def setup_method(self):
        self.x = RealVar("x", 0)
        self.y = RealVar("y", 1)

    def test_var_plus_var(self):
        e = self.x + self.y
        assert e.coeffs == {0: Fraction(1), 1: Fraction(1)}
        assert e.const == 0

    def test_scalar_multiplication(self):
        e = 3 * self.x
        assert e.coeffs == {0: Fraction(3)}

    def test_float_coefficient_exact(self):
        e = self.x * 0.2
        assert e.coeffs == {0: Fraction(1, 5)}

    def test_subtraction_cancels(self):
        e = (self.x + self.y) - self.x
        assert e.coeffs == {1: Fraction(1)}

    def test_full_cancellation_removes_key(self):
        e = self.x - self.x
        assert e.coeffs == {}
        assert e.is_constant()

    def test_constant_folding(self):
        e = self.x + 2 - 5
        assert e.const == Fraction(-3)

    def test_negation(self):
        e = -(self.x + 1)
        assert e.coeffs == {0: Fraction(-1)}
        assert e.const == Fraction(-1)

    def test_rsub(self):
        e = 5 - self.x
        assert e.coeffs == {0: Fraction(-1)}
        assert e.const == Fraction(5)

    def test_linear_sum(self):
        e = linear_sum([self.x, self.y, 2, self.x])
        assert e.coeffs == {0: Fraction(2), 1: Fraction(1)}
        assert e.const == Fraction(2)


class TestAtoms:
    def setup_method(self):
        self.x = RealVar("x", 0)

    def test_le_builds_atom(self):
        atom = le(self.x + 1, 3)
        assert isinstance(atom, Atom)
        assert atom.op == "<="
        # constant folded into bound: x + 1 <= 3  =>  x <= 2
        assert atom.bound == Fraction(2)

    def test_ge_builds_atom(self):
        atom = ge(2 * self.x, 4)
        assert isinstance(atom, Atom)
        assert atom.op == ">="

    def test_constant_le_folds_to_bool(self):
        assert le(LinExpr.constant(1), 2) is TRUE
        assert le(LinExpr.constant(3), 2) is FALSE

    def test_constant_ge_folds_to_bool(self):
        assert ge(LinExpr.constant(3), 2) is TRUE
        assert ge(LinExpr.constant(1), 2) is FALSE

    def test_eq_is_conjunction(self):
        term = eq(self.x, 1)
        assert isinstance(term, And)
        assert len(term.args) == 2

    def test_neq_with_eps_is_disjunction(self):
        term = neq_with_eps(self.x, 1)
        assert isinstance(term, Or)
        assert len(term.args) == 2

    def test_neq_with_nonpositive_eps_rejected(self):
        with pytest.raises(ValueError):
            neq_with_eps(self.x, 0)

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            Atom(LinExpr.of(self.x), "<", Fraction(0))


class TestConnectives:
    def setup_method(self):
        self.a = BoolVar("a", 0)
        self.b = BoolVar("b", 1)

    def test_operator_sugar(self):
        assert isinstance(self.a & self.b, And)
        assert isinstance(self.a | self.b, Or)
        assert isinstance(~self.a, Not)

    def test_implies_shape(self):
        term = implies(self.a, self.b)
        assert isinstance(term, Or)

    def test_iff_shape(self):
        term = iff(self.a, self.b)
        assert isinstance(term, And)

    def test_nary_flattening_of_lists(self):
        term = And([self.a, self.b], self.a)
        assert len(term.args) == 3

    def test_not_rejects_non_boolean(self):
        with pytest.raises(TypeError):
            Not(RealVar("x", 0))

    def test_and_rejects_non_boolean(self):
        with pytest.raises(TypeError):
            And(self.a, 5)
