"""Tests for solve-under-assumptions UNSAT cores.

Covers both layers: the CDCL core's final-conflict analysis
(:meth:`repro.smt.sat.SatSolver.solve` setting ``core``) and the DPLL(T)
facade's :meth:`repro.smt.solver.Solver.unsat_core`, including the
interaction of assumption cores with push/pop scopes and the
assumption-selectable budget counters.
"""

import pytest

from repro.smt import Not, Or, Result, Solver, ge, implies, le
from repro.smt.sat import SatSolver


class TestSatCore:
    def test_core_is_subset_and_sufficient(self):
        solver = SatSolver()
        solver.ensure_vars(4)
        solver.add_clause([-1, -2])  # not both 1 and 2
        # assumptions: 1, 2 conflict; 3, 4 are irrelevant
        assert solver.solve(assumptions=[3, 1, 4, 2]) is False
        core = solver.core
        assert core is not None
        assert set(map(abs, core)) <= {1, 2}
        # the core alone must still be UNSAT
        assert solver.solve(assumptions=core) is False

    def test_core_excludes_irrelevant_assumptions(self):
        solver = SatSolver()
        solver.ensure_vars(5)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([-3, -4])
        assert solver.solve(assumptions=[5, 1, 4]) is False
        assert 5 not in {abs(lit) for lit in solver.core}

    def test_core_follows_implication_chains(self):
        # 1 -> 2 -> 3 and assumption -3: the conflict reaches back to 1
        solver = SatSolver()
        solver.ensure_vars(3)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve(assumptions=[1, -3]) is False
        assert {abs(lit) for lit in solver.core} == {1, 3}

    def test_directly_contradicting_assumptions(self):
        solver = SatSolver()
        solver.ensure_vars(2)
        assert solver.solve(assumptions=[1, -1]) is False
        assert {abs(lit) for lit in solver.core} == {1}

    def test_sat_leaves_core_none(self):
        solver = SatSolver()
        solver.ensure_vars(2)
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[1]) is True
        assert solver.core is None

    def test_formula_level_unsat_has_empty_core(self):
        solver = SatSolver()
        solver.ensure_vars(1)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve(assumptions=[1]) is False
        assert solver.core == []

    def test_learned_clauses_survive_assumption_solves(self):
        solver = SatSolver()
        solver.ensure_vars(6)
        solver.add_clause([-1, 2])
        solver.add_clause([-1, -2])
        assert solver.solve(assumptions=[1]) is False
        assert solver.solve(assumptions=[-1]) is True
        # the solver is still usable and consistent afterwards
        assert solver.solve() is True


class TestSolverCore:
    def test_core_names_original_terms(self):
        solver = Solver()
        a, b, c = solver.bool_vars("p", 3)
        solver.add(implies(a, b))
        solver.add(implies(b, Not(c)))
        assert solver.check(assumptions=[a, c]) is Result.UNSAT
        core = solver.unsat_core()
        assert set(core) <= {a, c}
        assert solver.check(assumptions=core) is Result.UNSAT

    def test_core_with_theory_conflict(self):
        solver = Solver()
        x = solver.real_var("x")
        p, q = solver.bool_vars("g", 2)
        solver.add(implies(p, ge(x, 5)))
        solver.add(implies(q, le(x, 3)))
        r = solver.bool_var("r")  # irrelevant
        assert solver.check(assumptions=[r, p, q]) is Result.UNSAT
        core = solver.unsat_core()
        assert r not in core
        assert solver.check(assumptions=core) is Result.UNSAT

    def test_unsat_core_requires_unsat(self):
        solver = Solver()
        a = solver.bool_var("a")
        solver.add(Or(a, Not(a)))
        assert solver.check() is Result.SAT
        with pytest.raises(RuntimeError):
            solver.unsat_core()

    def test_negated_assumptions_in_core(self):
        solver = Solver()
        a, b = solver.bool_vars("n", 2)
        solver.add(Or(a, b))
        assert solver.check(assumptions=[Not(a), Not(b)]) is Result.UNSAT
        core = solver.unsat_core()
        assert len(core) == 2
        assert solver.check(assumptions=core) is Result.UNSAT

    def test_statistics_counters(self):
        solver = Solver()
        a, b = solver.bool_vars("s", 2)
        solver.add(implies(a, b))
        solver.add(implies(a, Not(b)))
        assert solver.check() is Result.SAT
        stats = solver.statistics()
        assert stats["checks"] == 1
        assert stats["incremental_checks"] == 0
        assert stats["core_size"] == 0
        assert solver.check(assumptions=[a]) is Result.UNSAT
        stats = solver.statistics()
        assert stats["checks"] == 2
        assert stats["incremental_checks"] == 1
        assert stats["core_size"] == len(solver.unsat_core()) >= 1
        assert stats["learned_kept"] >= 0


class TestCoreWithPushPop:
    def test_assumptions_inside_pushed_scope(self):
        solver = Solver()
        a, b = solver.bool_vars("q", 2)
        solver.add(Or(a, b))
        solver.push()
        solver.add(Not(b))
        not_a = Not(a)
        assert solver.check(assumptions=[not_a]) is Result.UNSAT
        assert solver.unsat_core() == [not_a]
        solver.pop()
        # after popping the scope the same assumption is satisfiable
        assert solver.check(assumptions=[Not(a)]) is Result.SAT

    def test_core_from_scoped_constraint_lists_only_assumptions(self):
        solver = Solver()
        x = solver.real_var("x")
        p = solver.bool_var("p")
        solver.add(implies(p, ge(x, 10)))
        solver.push()
        solver.add(le(x, 1))
        assert solver.check(assumptions=[p]) is Result.UNSAT
        # the scope's guard literal must not leak into the core
        assert solver.unsat_core() == [p]
        solver.pop()
        assert solver.check(assumptions=[p]) is Result.SAT

    def test_interleaved_scopes_and_assumption_sweeps(self):
        solver = Solver()
        x = solver.real_var("x")
        gates = solver.bool_vars("g", 3)
        for i, gate in enumerate(gates):
            solver.add(implies(gate, ge(x, 10 * (i + 1))))
        for bound, expected in ((5, Result.UNSAT), (35, Result.SAT)):
            solver.push()
            solver.add(le(x, bound))
            for gate in gates:
                verdict = solver.check(assumptions=[gate])
                want = expected if bound == 35 else Result.UNSAT
                assert verdict is want
                if verdict is Result.UNSAT:
                    assert solver.unsat_core() == [gate]
            solver.pop()
        assert solver.check() is Result.SAT


class TestSelectorCores:
    def test_budget_selector_sweep_and_core(self):
        solver = Solver()
        xs = solver.bool_vars("x", 4)
        solver.add(Or(*xs))
        # force at least 2 true: x1 -> x2, x3 -> x4, and one of each pair
        solver.add(Or(xs[0], xs[1]))
        solver.add(Or(xs[2], xs[3]))
        counter = solver.at_most_selector(xs)
        results = {}
        for k in range(5):
            lit = counter.at_most(k)
            assumptions = [] if lit is None else [lit]
            results[k] = solver.check(assumptions=assumptions)
        assert results[0] is Result.UNSAT
        assert results[1] is Result.UNSAT
        assert all(results[k] is Result.SAT for k in (2, 3, 4))
        # re-derive the UNSAT case; its core is the selector literal
        lit = counter.at_most(1)
        assert solver.check(assumptions=[lit]) is Result.UNSAT
        assert solver.unsat_core() == [lit]

    def test_raw_literal_validation(self):
        solver = Solver()
        solver.bool_var("a")
        with pytest.raises(ValueError):
            solver.check(assumptions=[0])
        with pytest.raises(ValueError):
            solver.check(assumptions=[10_000])

    def test_selector_mixes_with_term_assumptions(self):
        solver = Solver()
        xs = solver.bool_vars("y", 3)
        counter = solver.at_most_selector(xs)
        lit = counter.at_most(1)
        assert solver.check(assumptions=[lit, xs[0], xs[1]]) is Result.UNSAT
        core = solver.unsat_core()
        # all three assumptions genuinely participate
        assert set(core) == {lit, xs[0], xs[1]}
        assert solver.check(assumptions=[lit, xs[0]]) is Result.SAT
