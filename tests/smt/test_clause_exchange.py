"""Learned-clause exchange: soundness, filtering, deterministic replay.

Satellite 3 of PR 9.  The safety property is that every clause a solver
exports is *implied* by the shared formula — checked here by asserting
that formula ∧ ¬C is UNSAT for each exported clause C.  The determinism
contract is that replaying a recorded import schedule
(:class:`ScriptedExchange`) reproduces the cooperative search bit for
bit; a 40-seed sweep pins it.
"""

import random

from repro.smt.sat import SatSolver, ScriptedExchange, SolverConfig

SEED_COUNT = 40


def random_clauses(seed, n=40, ratio=4.2):
    rng = random.Random(seed)
    clauses = []
    for _ in range(int(n * ratio)):
        clause = []
        while len(clause) < 3:
            lit = rng.choice([1, -1]) * rng.randint(1, n)
            if lit not in clause and -lit not in clause:
                clause.append(lit)
        clauses.append(clause)
    return clauses


def build_solver(clauses, config=None, n=40):
    solver = SatSolver(config=config)
    solver.ensure_vars(n)
    for clause in clauses:
        if not solver.add_clause(clause):
            break
    return solver


class CollectingExchange:
    """Records everything the solver publishes; imports nothing."""

    def __init__(self):
        self.published = []

    def publish(self, clauses, conflicts):
        self.published.extend(tuple(c) for c in clauses)

    def poll(self, conflicts):
        return []


class FeedExchange:
    """Feeds a fixed queue of foreign clauses, three per poll."""

    def __init__(self, queue, batch=3):
        self.queue = [tuple(c) for c in queue]
        self.batch = batch

    def publish(self, clauses, conflicts):
        pass

    def poll(self, conflicts):
        batch, self.queue = self.queue[: self.batch], self.queue[self.batch :]
        return batch


class TestExportSoundness:
    def test_exported_clauses_are_implied_by_the_formula(self):
        # formula ∧ ¬C must be UNSAT for every exported clause C
        checked = 0
        for seed in range(8):
            clauses = random_clauses(seed)
            donor = build_solver(clauses)
            exchange = CollectingExchange()
            donor.set_exchange(exchange, interval=8)
            donor.solve()
            for clause in exchange.published[:6]:
                checker = build_solver(clauses)
                assert checker.solve([-lit for lit in clause]) is False
                checked += 1
        assert checked >= 10  # the sweep must actually exercise exports

    def test_exports_respect_size_cap(self):
        for seed in range(6):
            donor = build_solver(random_clauses(seed))
            exchange = CollectingExchange()
            donor.set_exchange(exchange, interval=8, size_cap=4)
            donor.solve()
            assert all(len(c) <= 4 for c in exchange.published)

    def test_export_counter_matches_published(self):
        donor = build_solver(random_clauses(1))
        exchange = CollectingExchange()
        donor.set_exchange(exchange, interval=8)
        donor.solve()
        assert donor.stats["clauses_exported"] == len(exchange.published)


class TestImportFiltering:
    def test_tautology_and_satisfied_imports_are_dropped(self):
        solver = SatSolver()
        solver.ensure_vars(4)
        solver.add_clause([1])  # forces 1 true at level 0
        before = len(solver.learnts)
        solver._import_clause((2, -2, 3))  # tautology
        solver._import_clause((1, 4))  # already satisfied at level 0
        assert len(solver.learnts) == before
        assert solver.ok

    def test_false_literals_are_stripped_on_import(self):
        solver = SatSolver()
        solver.ensure_vars(4)
        solver.add_clause([-1])  # 1 is false at level 0
        solver._import_clause((1, 3, 4))
        assert len(solver.learnts) == 1
        assert sorted(int(q) for q in solver.learnts[-1]) == [3, 4]

    def test_unit_import_is_enqueued(self):
        solver = SatSolver()
        solver.ensure_vars(3)
        solver._import_clause((2,))
        assert solver.value(2) == 1

    def test_conflicting_import_makes_solver_unsat(self):
        solver = SatSolver()
        solver.ensure_vars(3)
        solver.add_clause([-2])
        solver._import_clause((2,))
        assert not solver.ok
        assert solver.solve() is False

    def test_imports_only_prune_never_flip_the_verdict(self):
        for seed in range(10):
            clauses = random_clauses(seed)
            plain = build_solver(clauses)
            expected = plain.solve()

            donor = build_solver(clauses, config=SolverConfig(seed=7))
            collector = CollectingExchange()
            donor.set_exchange(collector, interval=8)
            donor.solve()

            fed = build_solver(clauses)
            fed.set_exchange(FeedExchange(collector.published), interval=8)
            assert fed.solve() == expected


class TestScriptedExchange:
    def test_poll_pops_exactly_once_per_conflict_count(self):
        scripted = ScriptedExchange([(32, (1, 2)), (32, (-3,)), (64, (4, 5))])
        assert scripted.poll(16) == []
        assert scripted.poll(32) == [(1, 2), (-3,)]
        assert scripted.poll(32) == []
        assert scripted.poll(64) == [(4, 5)]

    def test_publish_is_a_no_op(self):
        scripted = ScriptedExchange([])
        scripted.publish([(1, 2)], 32)
        assert scripted.poll(32) == []


class TestReplayDeterminism:
    def test_forty_seed_bit_identity_sweep(self):
        """Cooperative run vs ScriptedExchange replay: identical traces."""
        total_imported = 0
        for seed in range(SEED_COUNT):
            clauses = random_clauses(seed)
            donor = build_solver(clauses, config=SolverConfig(seed=seed + 1))
            collector = CollectingExchange()
            donor.set_exchange(collector, interval=8)
            donor.solve()

            live = build_solver(clauses)
            live.set_exchange(FeedExchange(collector.published), interval=16)
            live_result = live.solve()
            total_imported += live.stats["clauses_imported"]

            replay = build_solver(clauses)
            replay.set_exchange(ScriptedExchange(live.import_log), interval=16)
            assert replay.solve() == live_result
            assert replay.stats == live.stats
            assert replay.import_log == live.import_log
            assert [int(v) for v in replay.assign] == [
                int(v) for v in live.assign
            ]
        assert total_imported > 0  # the sweep must exercise real imports

    def test_replay_holds_under_vec_kernel(self):
        for seed in range(6):
            clauses = random_clauses(seed)
            donor = build_solver(clauses, config=SolverConfig(seed=3))
            collector = CollectingExchange()
            donor.set_exchange(collector, interval=8)
            donor.solve()

            live = build_solver(clauses)
            live.set_exchange(FeedExchange(collector.published), interval=16)
            live_result = live.solve()

            replay = SatSolver(kernel="vec")
            replay.ensure_vars(40)
            for clause in clauses:
                if not replay.add_clause(clause):
                    break
            replay.set_exchange(ScriptedExchange(live.import_log), interval=16)
            assert replay.solve() == live_result
            assert replay.stats == live.stats
