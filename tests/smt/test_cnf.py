"""Unit tests for the Tseitin CNF builder."""

from fractions import Fraction

import pytest

from repro.smt.cnf import CnfBuilder, canonicalize_atom
from repro.smt.terms import (
    And,
    Atom,
    BoolVar,
    FALSE,
    LinExpr,
    Not,
    Or,
    RealVar,
    TRUE,
    ge,
    le,
)

F = Fraction


def expr(coeffs):
    return LinExpr({k: F(v) for k, v in coeffs.items()}, F(0))


class TestCanonicalization:
    def test_scaling_merges_equivalent_atoms(self):
        a1 = le(expr({0: 2, 1: -2}), 4)
        a2 = le(expr({0: 1, 1: -1}), 2)
        assert canonicalize_atom(a1) == canonicalize_atom(a2)

    def test_negative_lead_flips_operator(self):
        # -x <= -1  is  x >= 1
        a1 = le(expr({0: -1}), -1)
        a2 = ge(expr({0: 1}), 1)
        assert canonicalize_atom(a1) == canonicalize_atom(a2)

    def test_distinct_bounds_stay_distinct(self):
        a1 = le(expr({0: 1}), 1)
        a2 = le(expr({0: 1}), 2)
        assert canonicalize_atom(a1) != canonicalize_atom(a2)


class TestBuilder:
    def test_true_literal_reserved(self):
        builder = CnfBuilder()
        assert builder.clauses[0] == [CnfBuilder.TRUE_LIT]

    def test_bool_var_interned(self):
        builder = CnfBuilder()
        v = BoolVar("a", 0)
        assert builder.literal_for(v) == builder.literal_for(v)

    def test_atom_interned_across_syntactic_variants(self):
        builder = CnfBuilder()
        a1 = le(expr({0: 2}), 4)
        a2 = le(expr({0: 1}), 2)
        assert builder.literal_for(a1) == builder.literal_for(a2)

    def test_negation_is_negative_literal(self):
        builder = CnfBuilder()
        v = BoolVar("a", 0)
        assert builder.literal_for(Not(v)) == -builder.literal_for(v)

    def test_constants(self):
        builder = CnfBuilder()
        assert builder.literal_for(TRUE) == CnfBuilder.TRUE_LIT
        assert builder.literal_for(FALSE) == -CnfBuilder.TRUE_LIT

    def test_and_gate_clauses(self):
        builder = CnfBuilder()
        a, b = BoolVar("a", 0), BoolVar("b", 1)
        before = len(builder.clauses)
        g = builder.literal_for(And(a, b))
        # 2 implication clauses + 1 reverse clause
        assert len(builder.clauses) == before + 3
        # same gate reused
        assert builder.literal_for(And(b, a)) == g

    def test_and_with_complement_is_false(self):
        builder = CnfBuilder()
        a = BoolVar("a", 0)
        assert builder.literal_for(And(a, Not(a))) == -CnfBuilder.TRUE_LIT

    def test_or_with_complement_is_true(self):
        builder = CnfBuilder()
        a = BoolVar("a", 0)
        assert builder.literal_for(Or(a, Not(a))) == CnfBuilder.TRUE_LIT

    def test_singleton_gate_collapses(self):
        builder = CnfBuilder()
        a = BoolVar("a", 0)
        assert builder.literal_for(And(a, a)) == builder.literal_for(a)

    def test_assert_top_level_and_splits(self):
        builder = CnfBuilder()
        a, b = BoolVar("a", 0), BoolVar("b", 1)
        before = len(builder.clauses)
        builder.assert_term(And(a, b))
        # two unit clauses, no gate variable
        added = builder.clauses[before:]
        assert sorted(len(c) for c in added) == [1, 1]

    def test_assert_top_level_or_is_one_clause(self):
        builder = CnfBuilder()
        a, b = BoolVar("a", 0), BoolVar("b", 1)
        before = len(builder.clauses)
        builder.assert_term(Or(a, b))
        added = builder.clauses[before:]
        assert len(added) == 1 and len(added[0]) == 2

    def test_guard_prepended(self):
        builder = CnfBuilder()
        a = BoolVar("a", 0)
        guard = builder.new_var()
        before = len(builder.clauses)
        builder.assert_term(a, guard=guard)
        assert builder.clauses[before][0] == -guard

    def test_atom_registry_exposed(self):
        builder = CnfBuilder()
        atom = le(expr({0: 1}), 2)
        lit = builder.literal_for(atom)
        assert lit in builder.atom_of_var
        coeffs, op, bound = builder.atom_of_var[lit]
        assert op == "<=" and bound == F(2)

    def test_constant_atom_rejected(self):
        with pytest.raises(ValueError):
            canonicalize_atom(Atom(LinExpr({}, F(0)), "<=", F(1)))
