"""Unit and property tests for the incremental simplex engine."""

import random
from fractions import Fraction

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.smt.simplex import DeltaRational, Simplex

F = Fraction


def dr(r, k=0):
    return DeltaRational(F(r), F(k))


class TestDeltaRational:
    def test_ordering_on_rational_part(self):
        assert dr(1) < dr(2)

    def test_delta_breaks_ties(self):
        assert dr(1, 0) < dr(1, 1)
        assert dr(1, -1) < dr(1, 0)

    def test_arithmetic(self):
        assert (dr(1, 2) + dr(3, -1)) == dr(4, 1)
        assert (dr(5, 1) - dr(2, 1)) == dr(3, 0)
        assert dr(2, 3).scale(F(2)) == dr(4, 6)

    def test_concretize(self):
        assert dr(1, 2).concretize(F(1, 4)) == F(3, 2)


class TestSimplexBasics:
    def test_single_variable_bounds(self):
        s = Simplex()
        x = s.new_var()
        assert s.assert_lower(x, dr(1), 10) is None
        assert s.assert_upper(x, dr(5), 11) is None
        assert s.check() is None
        assert dr(1) <= s.assign[x] <= dr(5)

    def test_direct_bound_conflict(self):
        s = Simplex()
        x = s.new_var()
        assert s.assert_lower(x, dr(3), 10) is None
        conflict = s.assert_upper(x, dr(2), 11)
        assert conflict is not None
        assert set(conflict) == {10, 11}

    def test_row_conflict_with_explanation(self):
        # x + y = s; x >= 2, y >= 2, s <= 3  -> conflict
        s = Simplex()
        x, y = s.new_var(), s.new_var()
        slack = s.new_var()
        s.add_row(slack, {x: F(1), y: F(1)})
        assert s.assert_lower(x, dr(2), 1) is None
        assert s.assert_lower(y, dr(2), 2) is None
        assert s.assert_upper(slack, dr(3), 3) is None
        conflict = s.check()
        assert conflict is not None
        assert set(conflict) == {1, 2, 3}

    def test_equalities_via_double_bounds(self):
        s = Simplex()
        x, y = s.new_var(), s.new_var()
        slack = s.new_var()
        s.add_row(slack, {x: F(1), y: F(2)})
        for var, val, tag in ((x, dr(1), 1), (slack, dr(7), 2)):
            assert s.assert_lower(var, val, tag) is None
            assert s.assert_upper(var, val, tag) is None
        assert s.check() is None
        # y must be 3
        assert s.assign[y] == dr(3)

    def test_strict_bounds_through_delta(self):
        # x > 1 and x < 1 + something tiny is still satisfiable exactly
        s = Simplex()
        x = s.new_var()
        assert s.assert_lower(x, dr(1, 1), 1) is None  # x > 1
        assert s.assert_upper(x, dr(2, -1), 2) is None  # x < 2
        assert s.check() is None
        val = s.assign[x]
        assert dr(1, 1) <= val <= dr(2, -1)

    def test_strict_conflict(self):
        # x > 1 and x < 1
        s = Simplex()
        x = s.new_var()
        assert s.assert_lower(x, dr(1, 1), 1) is None
        conflict = s.assert_upper(x, dr(1, -1), 2)
        assert conflict is not None

    def test_backtracking_restores_bounds(self):
        s = Simplex()
        x = s.new_var()
        assert s.assert_lower(x, dr(0), 1) is None
        mark = s.mark()
        assert s.assert_lower(x, dr(10), 2) is None
        assert s.assert_upper(x, dr(20), 3) is None
        s.backtrack(mark)
        assert s.lower[x] == dr(0)
        assert s.upper[x] is None
        # and a previously-conflicting bound is fine now
        assert s.assert_upper(x, dr(5), 4) is None
        assert s.check() is None

    def test_concrete_values_respect_strict_bounds(self):
        s = Simplex()
        x = s.new_var()
        s.assert_lower(x, dr(1, 1), 1)  # x > 1
        s.assert_upper(x, dr(1, 2), 2)  # x < 1 + 2 delta (tight window)
        assert s.check() is None
        values = s.concrete_values()
        assert values[x] > F(1)

    def test_chain_of_rows(self):
        # a = x + y, b = a + z; bounds force a unique solution
        s = Simplex()
        x, y, z = (s.new_var() for _ in range(3))
        a, b = s.new_var(), s.new_var()
        s.add_row(a, {x: F(1), y: F(1)})
        s.add_row(b, {a: F(1), z: F(1)})  # substitutes a's definition
        for var, val in ((x, 1), (y, 2), (b, 10)):
            s.assert_lower(var, dr(val), var * 2)
            s.assert_upper(var, dr(val), var * 2 + 1)
        assert s.check() is None
        assert s.assign[a] == dr(3)
        assert s.assign[z] == dr(7)


class TestAgainstLinprog:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_systems(self, seed):
        rng = random.Random(seed)
        nv = rng.randint(2, 5)
        nc = rng.randint(2, 10)
        s = Simplex()
        s.debug_invariants = True  # tableau checked at every check() exit
        problem_vars = [s.new_var() for _ in range(nv)]
        rows = []
        # build constraint rows: coeffs . x <= / >= bound
        a_ub, b_ub = [], []
        tag = 100
        conflict = None
        for _ in range(nc):
            coeffs = [rng.randint(-3, 3) for _ in range(nv)]
            if all(c == 0 for c in coeffs):
                coeffs[rng.randrange(nv)] = 1
            bound = rng.randint(-6, 6)
            slack = s.new_var()
            s.add_row(slack, {v: F(c) for v, c in zip(problem_vars, coeffs) if c})
            rows.append((slack, coeffs, bound))
        for slack, coeffs, bound in rows:
            tag += 1
            if rng.random() < 0.5:
                conflict = conflict or s.assert_upper(slack, dr(bound), tag)
                a_ub.append(coeffs)
                b_ub.append(bound)
            else:
                conflict = conflict or s.assert_lower(slack, dr(bound), tag)
                a_ub.append([-c for c in coeffs])
                b_ub.append(-bound)
        if conflict is None:
            conflict = s.check()
        res = linprog(
            c=[0.0] * nv,
            A_ub=np.array(a_ub, dtype=float),
            b_ub=np.array(b_ub, dtype=float),
            bounds=[(None, None)] * nv,
            method="highs",
        )
        assert (conflict is None) == (res.status == 0)
        if conflict is None:
            s.check_invariants()
            values = s.concrete_values()
            for coeffs, bound in zip(a_ub, b_ub):
                total = sum(F(c) * values[v] for c, v in zip(coeffs, problem_vars))
                assert total <= F(bound)
