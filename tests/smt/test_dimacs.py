"""Tests for DIMACS import/export."""

import itertools
import random

import pytest

from repro.smt import Solver, ge, le
from repro.smt.dimacs import (
    DimacsError,
    export_solver_cnf,
    parse_dimacs,
    solve_dimacs_file,
    solver_from_dimacs,
    write_dimacs,
)

SAMPLE = """c a tiny satisfiable instance
p cnf 3 3
1 -2 0
2 3 0
-1 0
"""

UNSAT = """p cnf 1 2
1 0
-1 0
"""


class TestParse:
    def test_sample(self):
        num_vars, clauses = parse_dimacs(SAMPLE)
        assert num_vars == 3
        assert clauses == [[1, -2], [2, 3], [-1]]

    def test_comments_ignored(self):
        num_vars, clauses = parse_dimacs("c hi\n" + UNSAT)
        assert len(clauses) == 2

    def test_multiline_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        __, clauses = parse_dimacs(text)
        assert clauses == [[1, 2, 3]]

    def test_missing_problem_line(self):
        with pytest.raises(DimacsError, match="problem line"):
            parse_dimacs("1 2 0\n")

    def test_bad_problem_line(self):
        with pytest.raises(DimacsError, match="problem line"):
            parse_dimacs("p sat 3 1\n1 0\n")

    def test_out_of_range_literal(self):
        with pytest.raises(DimacsError, match="exceeds"):
            parse_dimacs("p cnf 2 1\n3 0\n")

    def test_garbage_token(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 x 0\n")

    def test_inline_comment_ends_the_line(self):
        # the clause continues on the next line: comments don't close it
        __, clauses = parse_dimacs("p cnf 3 1\n1 2 c trailing note\n3 0\n")
        assert clauses == [[1, 2, 3]]

    def test_percent_inline_comment(self):
        __, clauses = parse_dimacs("p cnf 2 1\n1 % eof marker\n-2 0\n")
        assert clauses == [[1, -2]]

    def test_comments_and_blanks_between_clause_fragments(self):
        text = "c header\np cnf 3 2\n1 2\n\nc interlude\n3 0\n\n-1 0\nc coda\n"
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 3
        assert clauses == [[1, 2, 3], [-1]]


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_cnf_round_trip(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 8)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(rng.randint(1, 3))]
            for _ in range(rng.randint(1, 20))
        ]
        text = write_dimacs(n, clauses)
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == n
        assert parsed == clauses

    @pytest.mark.parametrize("seed", range(10))
    def test_round_trip_survives_comment_injection(self, seed):
        rng = random.Random(50 + seed)
        n = rng.randint(2, 8)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(rng.randint(1, 3))]
            for _ in range(rng.randint(1, 15))
        ]
        lines = write_dimacs(n, clauses).splitlines()
        noisy = []
        for line in lines:
            if rng.random() < 0.4:
                noisy.append(rng.choice(["c noise", "", "% noise"]))
            tail = " c tail" if rng.random() < 0.3 and not line.startswith("p") else ""
            noisy.append(line + tail)
        num_vars, parsed = parse_dimacs("\n".join(noisy) + "\n")
        assert num_vars == n
        assert parsed == clauses

    @pytest.mark.parametrize("seed", range(10))
    def test_solver_verdict_preserved(self, seed):
        rng = random.Random(100 + seed)
        n = rng.randint(2, 7)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(rng.randint(1, 3))]
            for _ in range(rng.randint(1, 25))
        ]
        brute = any(
            all(any((l > 0) == bits[abs(l) - 1] for l in c) for c in clauses)
            for bits in itertools.product([False, True], repeat=n)
        )
        solver = solver_from_dimacs(write_dimacs(n, clauses))
        assert solver.solve() is brute


class TestFileInterface:
    def test_solve_file(self, tmp_path):
        path = tmp_path / "sample.cnf"
        path.write_text(SAMPLE)
        assert solve_dimacs_file(path) is True
        path.write_text(UNSAT)
        assert solve_dimacs_file(path) is False


class TestSmtExport:
    def test_export_is_relaxation(self):
        # boolean-level UNSAT survives export; theory-level UNSAT does not
        s = Solver()
        a = s.bool_var("a")
        s.add(a, ~a)
        solver = solver_from_dimacs(export_solver_cnf(s))
        assert solver.solve() is False

    def test_theory_unsat_relaxes_to_sat(self):
        s = Solver()
        x = s.real_var("x")
        s.add(ge(x, 5), le(x, 1))
        solver = solver_from_dimacs(export_solver_cnf(s))
        assert solver.solve() is True  # atoms are free booleans in DIMACS
