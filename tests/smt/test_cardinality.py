"""Tests for the sequential-counter and totalizer cardinality encodings."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.cardinality import (
    IncrementalAtMost,
    encode_at_least,
    encode_at_most,
    encode_exactly,
    encode_totalizer,
)
from repro.smt.sat import SatSolver


def count_models(n, k, encoder):
    """Count assignments to the first n vars accepted by the encoding."""
    solver = SatSolver()
    solver.ensure_vars(n)
    aux = {"next": n}

    def new_var():
        aux["next"] += 1
        solver.ensure_vars(aux["next"])
        return aux["next"]

    ok = {"value": True}

    def add_clause(clause):
        if not solver.add_clause(clause):
            ok["value"] = False

    encoder(list(range(1, n + 1)), k, new_var, add_clause)
    models = 0
    for bits in itertools.product([False, True], repeat=n):
        if not ok["value"]:
            break
        assumptions = [v if bits[v - 1] else -v for v in range(1, n + 1)]
        if solver.solve(assumptions=assumptions):
            models += 1
    return models


def comb_sum(n, lo, hi):
    from math import comb

    return sum(comb(n, i) for i in range(lo, hi + 1))


class TestAtMost:
    @pytest.mark.parametrize("n,k", [(1, 0), (3, 1), (4, 2), (5, 3), (5, 5), (6, 0)])
    def test_model_count(self, n, k):
        assert count_models(n, k, encode_at_most) == comb_sum(n, 0, min(k, n))

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            encode_at_most([1], -1, lambda: 2, lambda c: None)


class TestAtLeast:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 3), (5, 5), (4, 0)])
    def test_model_count(self, n, k):
        assert count_models(n, k, encode_at_least) == comb_sum(n, k, n)

    def test_k_above_n_is_unsat(self):
        assert count_models(3, 4, encode_at_least) == 0


class TestExactly:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 0), (5, 5)])
    def test_model_count(self, n, k):
        from math import comb

        assert count_models(n, k, encode_exactly) == comb(n, k)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 6), st.integers(0, 6))
def test_hypothesis_at_most_counts(n, k):
    assert count_models(n, k, encode_at_most) == comb_sum(n, 0, min(k, n))


# ----------------------------------------------------------------------
# assumption-selectable totalizer
# ----------------------------------------------------------------------
def totalizer_instance(n):
    """A solver holding the totalizer over vars 1..n; returns (solver, counter)."""
    solver = SatSolver()
    solver.ensure_vars(n)
    aux = {"next": n}

    def new_var():
        aux["next"] += 1
        solver.ensure_vars(aux["next"])
        return aux["next"]

    counter = IncrementalAtMost(list(range(1, n + 1)), new_var, solver.add_clause)
    return solver, counter


def count_models_under_threshold(solver, counter, n, k):
    selector = counter.at_most(k)
    models = 0
    for bits in itertools.product([False, True], repeat=n):
        assumptions = [v if bits[v - 1] else -v for v in range(1, n + 1)]
        if selector is not None:
            assumptions.append(selector)
        if solver.solve(assumptions=assumptions):
            models += 1
    return models


class TestTotalizer:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_one_encoding_answers_every_threshold(self, n):
        # a single totalizer instance must agree with a fresh
        # sequential-counter encoding at every k
        solver, counter = totalizer_instance(n)
        for k in range(n + 1):
            expected = comb_sum(n, 0, min(k, n))
            assert count_models_under_threshold(solver, counter, n, k) == expected

    def test_outputs_count_upward(self):
        n = 5
        solver, counter = totalizer_instance(n)
        assert len(counter.outputs) == n
        for true_count in range(n + 1):
            assumptions = [
                v if v <= true_count else -v for v in range(1, n + 1)
            ]
            assert solver.solve(assumptions=assumptions)
            # outputs[j-1] forced true for every j <= true_count
            for j in range(1, true_count + 1):
                assert solver.value(counter.outputs[j - 1]) == 1

    def test_trivial_threshold_is_none(self):
        _, counter = totalizer_instance(3)
        assert counter.at_most(3) is None
        assert counter.at_most(7) is None

    def test_negative_threshold_rejected(self):
        _, counter = totalizer_instance(3)
        with pytest.raises(ValueError):
            counter.at_most(-1)

    def test_empty_input(self):
        solver = SatSolver()
        counter = IncrementalAtMost([], lambda: 1, solver.add_clause)
        assert counter.size == 0
        assert counter.outputs == []
        assert counter.at_most(0) is None


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 6), st.integers(0, 6))
def test_hypothesis_totalizer_matches_sequential_counter(n, k):
    solver, counter = totalizer_instance(n)
    assert count_models_under_threshold(solver, counter, n, k) == count_models(
        n, k, encode_at_most
    )
