"""Tests for the sequential-counter cardinality encodings."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.cardinality import encode_at_least, encode_at_most, encode_exactly
from repro.smt.sat import SatSolver


def count_models(n, k, encoder):
    """Count assignments to the first n vars accepted by the encoding."""
    solver = SatSolver()
    solver.ensure_vars(n)
    aux = {"next": n}

    def new_var():
        aux["next"] += 1
        solver.ensure_vars(aux["next"])
        return aux["next"]

    ok = {"value": True}

    def add_clause(clause):
        if not solver.add_clause(clause):
            ok["value"] = False

    encoder(list(range(1, n + 1)), k, new_var, add_clause)
    models = 0
    for bits in itertools.product([False, True], repeat=n):
        if not ok["value"]:
            break
        assumptions = [v if bits[v - 1] else -v for v in range(1, n + 1)]
        if solver.solve(assumptions=assumptions):
            models += 1
    return models


def comb_sum(n, lo, hi):
    from math import comb

    return sum(comb(n, i) for i in range(lo, hi + 1))


class TestAtMost:
    @pytest.mark.parametrize("n,k", [(1, 0), (3, 1), (4, 2), (5, 3), (5, 5), (6, 0)])
    def test_model_count(self, n, k):
        assert count_models(n, k, encode_at_most) == comb_sum(n, 0, min(k, n))

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            encode_at_most([1], -1, lambda: 2, lambda c: None)


class TestAtLeast:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 3), (5, 5), (4, 0)])
    def test_model_count(self, n, k):
        assert count_models(n, k, encode_at_least) == comb_sum(n, k, n)

    def test_k_above_n_is_unsat(self):
        assert count_models(3, 4, encode_at_least) == 0


class TestExactly:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 0), (5, 5)])
    def test_model_count(self, n, k):
        from math import comb

        assert count_models(n, k, encode_exactly) == comb(n, k)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 6), st.integers(0, 6))
def test_hypothesis_at_most_counts(n, k):
    assert count_models(n, k, encode_at_most) == comb_sum(n, 0, min(k, n))
