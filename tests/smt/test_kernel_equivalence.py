"""Property tests pinning the fast kernels to the Fraction reference.

Both integer-triple simplex engines — the sparse-control-flow
:class:`~repro.smt.simplex.SparseSimplex` (the default) and the dense
:class:`~repro.smt.simplex.Simplex` — must be **bit-identical** to the
retained :class:`~repro.smt.simplex.ReferenceSimplex`: same verdicts,
same models, same search trace.  These tests exercise the three-way
contract two ways — random mixed formulas through the full
:class:`~repro.smt.Solver` under every kernel, and random bound/pivot
scripts replayed directly on the simplex engines with invariant
checking enabled (which on the sparse engine also cross-checks the
incrementally maintained violated-basic set against a full recompute).
"""

import random
from fractions import Fraction
from functools import reduce

import pytest

from repro.smt import Not, Or, Result, Solver, ge, le
from repro.smt.simplex import (
    DeltaRational,
    ReferenceSimplex,
    Simplex,
    SparseSimplex,
)

F = Fraction

#: the kernels pinned to the reference oracle
FAST_KERNELS = ("int", "sparse")


# ----------------------------------------------------------------------
# solver-level equivalence on random mixed formulas
# ----------------------------------------------------------------------
def build_formula(solver, seed, nreal=3, nbool=2, natoms=6, nclauses=8):
    """Assert a seed-determined random formula; returns its skeleton.

    Calling this with the same seed on two solvers asserts literally
    identical formulas, so any divergence is the kernel's fault.
    """
    rng = random.Random(seed)
    xs = [solver.real_var(f"x{i}") for i in range(nreal)]
    bs = [solver.bool_var(f"b{i}") for i in range(nbool)]
    atoms = []  # (term, coeffs, op, bound)
    for _ in range(natoms):
        coeffs = [rng.randint(-3, 3) for _ in range(nreal)]
        if all(c == 0 for c in coeffs):
            coeffs[rng.randrange(nreal)] = 1
        expr = reduce(
            lambda acc, cx: acc + cx[0] * cx[1] if cx[0] else acc,
            zip(coeffs, xs),
            0 * xs[0],
        )
        bound = rng.randint(-6, 6)
        op = rng.choice(("<=", ">="))
        term = le(expr, bound) if op == "<=" else ge(expr, bound)
        atoms.append((term, coeffs, op, bound))
    clauses = []
    skeleton = []  # per clause: (positive, kind, payload-index) literals
    for _ in range(nclauses):
        lits = []
        shape = []
        for _ in range(rng.randint(1, 3)):
            if rng.random() < 0.7:
                kind, idx = "atom", rng.randrange(natoms)
                term = atoms[idx][0]
            else:
                kind, idx = "bool", rng.randrange(nbool)
                term = bs[idx]
            positive = rng.random() >= 0.5
            lits.append(term if positive else Not(term))
            shape.append((positive, kind, idx))
        clauses.append(Or(*lits))
        skeleton.append(shape)
    solver.add(*clauses)
    return xs, bs, atoms, skeleton


def solve_with(kernel, seed, propagation=False, sat_kernel=None):
    solver = Solver(
        kernel=kernel, theory_propagation=propagation, sat_kernel=sat_kernel
    )
    xs, bs, atoms, skeleton = build_formula(solver, seed)
    result = solver.check()
    model = solver.model() if result is Result.SAT else None
    return solver, xs, bs, atoms, skeleton, result, model


class TestSolverEquivalence:
    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    @pytest.mark.parametrize("seed", range(40))
    def test_bit_identical_verdict_model_and_trace(self, seed, kernel):
        ref = solve_with("reference", seed)
        fast = solve_with(kernel, seed)
        _, xs, bs, _, _, ref_result, ref_model = ref
        _, _, _, _, _, fast_result, fast_model = fast
        assert fast_result is ref_result
        if ref_result is Result.SAT:
            for x in xs:
                assert fast_model.real_value(x) == ref_model.real_value(x)
            for b in bs:
                assert fast_model.value(b) == ref_model.value(b)
        # the search itself must be identical, not just the answer
        ref_stats = ref[0].statistics()
        fast_stats = fast[0].statistics()
        for key in ("conflicts", "decisions", "propagations", "pivots"):
            assert fast_stats[key] == ref_stats[key], key

    @pytest.mark.parametrize("seed", range(10))
    def test_sparse_matches_int_stats_exactly(self, seed):
        # sparse vs int directly (not just both-vs-reference): the whole
        # stats dicts must agree except the sparse-only refactorization
        # counter
        int_stats = solve_with("int", seed)[0].statistics()
        sparse_stats = solve_with("sparse", seed)[0].statistics()
        for stats in (int_stats, sparse_stats):
            stats.pop("refactorizations", None)
            stats.pop("kernel", None)
        assert sparse_stats == int_stats

    @pytest.mark.parametrize("seed", range(40))
    def test_models_satisfy_asserted_clauses(self, seed):
        solver, xs, bs, atoms, skeleton, result, model = solve_with("sparse", seed)
        if result is not Result.SAT:
            return
        values = [model.real_value(x) for x in xs]

        def atom_holds(idx):
            _, coeffs, op, bound = atoms[idx]
            total = sum(F(c) * v for c, v in zip(coeffs, values))
            return total <= bound if op == "<=" else total >= bound

        for shape in skeleton:
            satisfied = any(
                (atom_holds(idx) if kind == "atom" else model.value(bs[idx]))
                == positive
                for positive, kind, idx in shape
            )
            assert satisfied, f"model falsifies an asserted clause: {shape}"

    @pytest.mark.parametrize("seed", range(20))
    def test_propagation_preserves_verdicts(self, seed):
        ref_result = solve_with("reference", seed)[5]
        prop_result = solve_with("int", seed, propagation=True)[5]
        assert prop_result is ref_result


class TestSatKernelEquivalence:
    """The vectorized BCP kernel through the full DPLL(T) stack.

    Same contract as the theory kernels: REPRO_SAT_KERNEL=vec must be
    bit-identical to the Python propagation loop — verdicts, models and
    the complete search trace.
    """

    @pytest.mark.parametrize("seed", range(20))
    def test_vec_bcp_bit_identical_through_dpllt(self, seed):
        ref = solve_with("sparse", seed, sat_kernel="python")
        vec = solve_with("sparse", seed, sat_kernel="vec")
        _, xs, bs, _, _, ref_result, ref_model = ref
        _, _, _, _, _, vec_result, vec_model = vec
        assert vec_result is ref_result
        if ref_result is Result.SAT:
            for x in xs:
                assert vec_model.real_value(x) == ref_model.real_value(x)
            for b in bs:
                assert vec_model.value(b) == ref_model.value(b)
        ref_stats = ref[0].statistics()
        vec_stats = vec[0].statistics()
        for stats in (ref_stats, vec_stats):
            stats.pop("sat_kernel", None)
        assert vec_stats == ref_stats

    @pytest.mark.parametrize("seed", range(8))
    def test_vec_bcp_with_theory_propagation(self, seed):
        ref = solve_with("sparse", seed, propagation=True, sat_kernel="python")
        vec = solve_with("sparse", seed, propagation=True, sat_kernel="vec")
        assert vec[5] is ref[5]
        ref_stats = ref[0].statistics()
        vec_stats = vec[0].statistics()
        for key in ("conflicts", "decisions", "propagations", "pivots"):
            assert vec_stats[key] == ref_stats[key], key

    def test_env_selection_reaches_the_sat_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_KERNEL", "vec")
        assert Solver().statistics()["sat_kernel"] == "vec"
        monkeypatch.setenv("REPRO_SAT_KERNEL", "python")
        assert Solver().statistics()["sat_kernel"] == "python"


class TestUnsatCores:
    @pytest.mark.parametrize("seed", range(15))
    def test_cores_agree_and_are_unsat(self, seed):
        rng = random.Random(1000 + seed)
        # a batch of unit bound assumptions over few vars forces overlap
        bounds = []
        for _ in range(10):
            var = rng.randrange(2)
            op = rng.choice(("<=", ">="))
            bounds.append((var, op, rng.randint(-3, 3)))
        cores = {}
        for kernel in ("reference", "int", "sparse"):
            solver = Solver(kernel=kernel)
            xs = [solver.real_var(f"x{i}") for i in range(2)]
            terms = [
                le(xs[v], b) if op == "<=" else ge(xs[v], b)
                for v, op, b in bounds
            ]
            result = solver.check(assumptions=terms)
            cores[kernel] = (
                None
                if result is not Result.UNSAT
                else [terms.index(t) for t in solver.unsat_core()]
            )
        assert cores["int"] == cores["reference"]
        assert cores["sparse"] == cores["reference"]
        if cores["int"] is None:
            return
        # the named subset must itself be UNSAT
        solver = Solver()
        xs = [solver.real_var(f"x{i}") for i in range(2)]
        for idx in cores["int"]:
            var, op, b = bounds[idx]
            solver.add(le(xs[var], b) if op == "<=" else ge(xs[var], b))
        assert solver.check() is Result.UNSAT


# ----------------------------------------------------------------------
# direct engine-vs-engine script replay with invariants on
# ----------------------------------------------------------------------
def random_script(rng, nv=4, nrows=3, nops=25):
    """A seed-determined sequence of simplex operations."""
    rows = []
    for _ in range(nrows):
        coeffs = {
            i: F(rng.randint(-3, 3), rng.randint(1, 3)) for i in range(nv)
        }
        rows.append({i: c for i, c in coeffs.items() if c})
    ops = []
    total = nv + nrows
    for tag in range(nops):
        kind = rng.random()
        if kind < 0.35:
            ops.append(("lower", rng.randrange(total), rng.randint(-5, 5),
                        rng.choice((-1, 0, 1)), tag))
        elif kind < 0.7:
            ops.append(("upper", rng.randrange(total), rng.randint(-5, 5),
                        rng.choice((-1, 0, 1)), tag))
        elif kind < 0.85:
            ops.append(("check",))
        elif kind < 0.95:
            ops.append(("mark",))
        else:
            ops.append(("backtrack",))
    ops.append(("check",))
    return rows, ops


def replay(engine_cls, rows, ops, nv):
    engine = engine_cls()
    engine.debug_invariants = True
    for _ in range(nv):
        engine.new_var()
    for body in rows:
        engine.add_row(engine.new_var(), dict(body))
    marks = []
    trace = []
    dead = False
    for op in ops:
        if op[0] in ("lower", "upper"):
            _, var, r, k, tag = op
            value = DeltaRational(F(r), F(k))
            assert_fn = (
                engine.assert_lower if op[0] == "lower" else engine.assert_upper
            )
            conflict = None if dead else assert_fn(var, value, tag)
            trace.append(("bound", None if conflict is None else list(conflict)))
            dead = dead or conflict is not None
        elif op[0] == "check":
            conflict = None if dead else engine.check()
            trace.append(("check", None if conflict is None else list(conflict)))
            dead = dead or conflict is not None
            if not dead:
                trace.append(("model", list(engine.concrete_values())))
        elif op[0] == "mark":
            marks.append(engine.mark())
        elif op[0] == "backtrack" and marks:
            engine.backtrack(marks.pop())
            dead = False
    engine.check_invariants()
    return trace


class TestScriptReplay:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_scripts_bit_identical(self, seed):
        rng = random.Random(seed)
        nv = rng.randint(2, 4)
        rows, ops = random_script(rng, nv=nv)
        ref_trace = replay(ReferenceSimplex, rows, ops, nv)
        int_trace = replay(Simplex, rows, ops, nv)
        sparse_trace = replay(SparseSimplex, rows, ops, nv)
        assert int_trace == ref_trace
        assert sparse_trace == ref_trace

    @pytest.mark.parametrize("seed", range(30, 50))
    def test_sparse_invariants_on_larger_scripts(self, seed):
        # bigger scripts drive more pivot/backtrack interleavings through
        # the sparse engine's incremental violated-set maintenance;
        # replay() runs with debug_invariants=True, so every check() and
        # the final check_invariants() cross-check the set against a
        # full recompute
        rng = random.Random(seed)
        nv = rng.randint(4, 6)
        rows, ops = random_script(rng, nv=nv, nrows=5, nops=60)
        sparse_trace = replay(SparseSimplex, rows, ops, nv)
        int_trace = replay(Simplex, rows, ops, nv)
        assert sparse_trace == int_trace


# ----------------------------------------------------------------------
# kernel selection validation
# ----------------------------------------------------------------------
class TestKernelValidation:
    def test_unknown_kernel_argument_rejected(self):
        with pytest.raises(ValueError, match="unknown theory kernel 'bogus'"):
            Solver(kernel="bogus")

    def test_unknown_kernel_env_rejected(self, monkeypatch):
        # a typo'd REPRO_THEORY_KERNEL must fail loudly at Solver
        # construction, naming the env var and the valid kernels, not
        # silently fall back or crash deep in the theory layer
        monkeypatch.setenv("REPRO_THEORY_KERNEL", "sprase")
        with pytest.raises(ValueError) as exc:
            Solver()
        message = str(exc.value)
        assert "sprase" in message
        assert "REPRO_THEORY_KERNEL" in message
        for kernel in ("sparse", "int", "reference"):
            assert kernel in message

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_THEORY_KERNEL", "")
        assert Solver().statistics()["kernel"] == "sparse"

    @pytest.mark.parametrize("kernel", ("sparse", "int", "reference"))
    def test_valid_kernels_accepted(self, kernel, monkeypatch):
        monkeypatch.setenv("REPRO_THEORY_KERNEL", kernel)
        assert Solver().statistics()["kernel"] == kernel
