"""Property tests for incremental solving: push/pop and assumptions must
agree with fresh re-encoding."""

import random

import pytest

from repro.smt import Not, Or, Result, Solver, eq, ge, implies, le


def random_formula_layers(seed, num_layers=3):
    """Build layered random constraints over shared variables.

    Returns (variable specs, layers) where each layer is a list of
    constraint descriptors that can be replayed into any solver.
    """
    rng = random.Random(seed)
    nv, nb = rng.randint(1, 3), rng.randint(1, 3)
    layers = []
    for _ in range(num_layers):
        layer = []
        for _ in range(rng.randint(1, 4)):
            coeffs = [rng.randint(-2, 2) for _ in range(nv)]
            if all(c == 0 for c in coeffs):
                coeffs[0] = 1
            layer.append(
                dict(
                    bool_index=rng.randrange(nb),
                    polarity=rng.random() < 0.5,
                    coeffs=coeffs,
                    bound=rng.randint(-4, 4),
                    use_le=rng.random() < 0.5,
                )
            )
        layers.append(layer)
    return nv, nb, layers


def apply_layer(solver, xs, bs, layer):
    for c in layer:
        expr = sum(
            (coef * x for coef, x in zip(c["coeffs"], xs)), start=0 * xs[0]
        )
        atom = le(expr, c["bound"]) if c["use_le"] else ge(expr, c["bound"])
        antecedent = bs[c["bool_index"]]
        if not c["polarity"]:
            antecedent = Not(antecedent)
        solver.add(implies(antecedent, atom))


def fresh_verdict(nv, nb, layers):
    solver = Solver()
    xs = solver.real_vars("x", nv)
    bs = solver.bool_vars("b", nb)
    for layer in layers:
        apply_layer(solver, xs, bs, layer)
    return solver.check()


class TestPushPopAgainstFresh:
    @pytest.mark.parametrize("seed", range(25))
    def test_layered_push_pop(self, seed):
        nv, nb, layers = random_formula_layers(seed)
        solver = Solver()
        xs = solver.real_vars("x", nv)
        bs = solver.bool_vars("b", nb)
        apply_layer(solver, xs, bs, layers[0])
        base = solver.check()
        assert base == fresh_verdict(nv, nb, layers[:1])

        solver.push()
        apply_layer(solver, xs, bs, layers[1])
        assert solver.check() == fresh_verdict(nv, nb, layers[:2])

        solver.push()
        apply_layer(solver, xs, bs, layers[2])
        assert solver.check() == fresh_verdict(nv, nb, layers[:3])

        solver.pop()
        assert solver.check() == fresh_verdict(nv, nb, layers[:2])

        solver.pop()
        assert solver.check() == base

    @pytest.mark.parametrize("seed", range(15))
    def test_assumptions_match_added_units(self, seed):
        nv, nb, layers = random_formula_layers(seed, num_layers=1)
        solver = Solver()
        xs = solver.real_vars("x", nv)
        bs = solver.bool_vars("b", nb)
        apply_layer(solver, xs, bs, layers[0])
        rng = random.Random(seed + 999)
        assumption_bits = [rng.random() < 0.5 for _ in range(nb)]
        assumptions = [
            b if bit else Not(b) for b, bit in zip(bs, assumption_bits)
        ]
        assumed = solver.check(assumptions=assumptions)
        # same thing with hard unit constraints, fresh solver
        fresh = Solver()
        fxs = fresh.real_vars("x", nv)
        fbs = fresh.bool_vars("b", nb)
        apply_layer(fresh, fxs, fbs, layers[0])
        for b, bit in zip(fbs, assumption_bits):
            fresh.add(b if bit else Not(b))
        assert assumed == fresh.check()
        # and the assumption-free formula is unchanged afterwards
        assert solver.check() == fresh_verdict(nv, nb, layers[:1])


class TestModelStability:
    def test_models_respect_popped_scopes(self):
        solver = Solver()
        x = solver.real_var("x")
        solver.add(ge(x, 0), le(x, 10))
        solver.push()
        solver.add(eq(x, 7))
        assert solver.check() is Result.SAT
        assert solver.model().real_value(x) == 7
        solver.pop()
        solver.add(le(x, 3))
        assert solver.check() is Result.SAT
        assert 0 <= solver.model().real_value(x) <= 3

    def test_many_push_pop_cycles(self):
        solver = Solver()
        x = solver.real_var("x")
        solver.add(ge(x, 0))
        for k in range(20):
            solver.push()
            solver.add(eq(x, k))
            assert solver.check() is Result.SAT
            assert solver.model().real_value(x) == k
            solver.pop()
        assert solver.check() is Result.SAT
