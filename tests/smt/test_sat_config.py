"""SolverConfig: diversification, restart schedules, seeds, vec kernel.

Covers the PR 9 search-configuration layer: token round-trips, the
restart-base lift out of the hardcoded ``* 100`` (with a regression
pinning the default schedule to the historical one), reproducible
seeded tie-breaking, and bit-identity of the numpy-vectorized BCP
kernel against the Python loop.
"""

import random

import pytest

from repro.smt.sat import (
    SatSolver,
    SolverConfig,
    diversified_configs,
    luby,
)
from repro.smt.solver import (
    Solver,
    engine_signature,
    _resolve_sat_config,
    _resolve_sat_kernel,
)

from tests.smt.test_sat_internals import hard_random_instance
from tests.smt.test_sat_watches import GOLDEN_SEARCH_STATS, assert_watch_invariant


def random_instance(seed, config=None, kernel="python", n=40, ratio=4.2):
    """hard_random_instance, but on a configurable solver."""
    rng = random.Random(seed)
    solver = SatSolver(config=config, kernel=kernel)
    solver.ensure_vars(n)
    for _ in range(int(n * ratio)):
        clause = []
        while len(clause) < 3:
            lit = rng.choice([1, -1]) * rng.randint(1, n)
            if lit not in clause and -lit not in clause:
                clause.append(lit)
        if not solver.add_clause(clause):
            break
    return solver


class TestConfigValidation:
    def test_default_reproduces_historical_knobs(self):
        config = SolverConfig()
        assert config.restart == "luby"
        assert config.restart_base == 100
        assert config.phase is False
        assert config.decay == 0.95
        assert config.seed is None

    def test_unknown_restart_policy_rejected(self):
        with pytest.raises(ValueError, match="restart policy"):
            SolverConfig(restart="fibonacci")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"restart_base": 0},
            {"restart_growth": 1.0},
            {"decay": 0.0},
            {"decay": 1.5},
        ],
    )
    def test_out_of_range_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SolverConfig(**kwargs)

    def test_unknown_sat_kernel_rejected(self):
        with pytest.raises(ValueError, match="valid kernels"):
            SatSolver(kernel="cuda")


class TestTokens:
    def test_round_trip_over_diversified_configs(self):
        for config in diversified_configs(12):
            assert SolverConfig.from_token(config.token()) == config

    def test_default_and_empty_tokens(self):
        assert SolverConfig.from_token("") == SolverConfig()
        assert SolverConfig.from_token("default") == SolverConfig()
        assert SolverConfig().token() == "luby@100/p0/d0.95"

    def test_geometric_token_carries_growth(self):
        config = SolverConfig(
            restart="geometric", restart_base=64, restart_growth=1.5, seed=7
        )
        assert config.token() == "geometric@64x1.5/p0/d0.95/s7"

    @pytest.mark.parametrize(
        "text", ["warp@9", "luby@", "luby@100/x3", "luby@100/dfoo"]
    )
    def test_bad_tokens_name_the_format(self, text):
        with pytest.raises(ValueError, match="bad solver config token"):
            SolverConfig.from_token(text)


class TestDiversification:
    def test_first_config_is_the_production_default(self):
        assert diversified_configs(1) == [SolverConfig()]

    def test_configs_are_pairwise_distinct(self):
        configs = diversified_configs(10)
        tokens = [c.token() for c in configs]
        assert len(set(tokens)) == len(tokens)

    def test_generation_is_deterministic(self):
        assert diversified_configs(9) == diversified_configs(9)

    def test_need_at_least_one(self):
        with pytest.raises(ValueError):
            diversified_configs(0)


class TestRestartSchedule:
    def test_default_schedule_matches_historical_hardcoded_base(self):
        # the schedule that used to be luby(restart_count + 1) * 100
        config = SolverConfig()
        for count in range(12):
            assert config.restart_limit(count) == luby(count + 1) * 100

    def test_geometric_schedule_grows_by_factor(self):
        config = SolverConfig(
            restart="geometric", restart_base=64, restart_growth=1.5
        )
        assert [config.restart_limit(i) for i in range(4)] == [64, 96, 144, 216]

    @pytest.mark.parametrize("seed,expected", GOLDEN_SEARCH_STATS)
    def test_default_config_search_is_byte_identical(self, seed, expected):
        # the restart-base lift must not move a single statistic of the
        # default engine: same golden trace as before SolverConfig
        sat, conflicts, decisions, propagations, learned = expected
        solver = random_instance(seed, config=SolverConfig())
        assert solver.solve() is sat
        assert solver.stats["conflicts"] == conflicts
        assert solver.stats["decisions"] == decisions
        assert solver.stats["propagations"] == propagations
        assert solver.stats["learned_literals"] == learned

    def test_default_config_equals_argless_solver(self):
        for seed in range(6):
            a = hard_random_instance(seed)
            b = random_instance(seed, config=SolverConfig())
            assert a.solve() == b.solve()
            assert a.stats == b.stats

    def test_small_restart_base_restarts_more(self):
        default = random_instance(4, config=SolverConfig())
        eager = random_instance(4, config=SolverConfig(restart_base=5))
        default.solve()
        eager.solve()
        assert eager.stats["restarts"] >= default.stats["restarts"]


class TestDiversifiedSearch:
    @pytest.mark.parametrize("index", [1, 2, 3])
    def test_diversified_configs_agree_on_verdict(self, index):
        config = diversified_configs(4)[index]
        for seed in range(8):
            base = random_instance(seed)
            other = random_instance(seed, config=config)
            assert base.solve() == other.solve()

    def test_seeded_tie_breaking_is_reproducible(self):
        config = SolverConfig(seed=11)
        a = random_instance(2, config=config)
        b = random_instance(2, config=config)
        assert a.solve() == b.solve()
        assert a.stats == b.stats

    def test_different_seeds_change_the_search(self):
        # not guaranteed per instance, but across a handful of seeds at
        # least one must diverge — otherwise the RNG is not wired in
        diverged = False
        base = random_instance(2, config=SolverConfig(seed=1))
        base.solve()
        for seed in range(2, 8):
            other = random_instance(2, config=SolverConfig(seed=seed))
            other.solve()
            if other.stats != base.stats:
                diverged = True
                break
        assert diverged

    def test_phase_flip_still_sound(self):
        for seed in range(6):
            base = random_instance(seed)
            flipped = random_instance(seed, config=SolverConfig(phase=True))
            assert base.solve() == flipped.solve()


class TestVecKernel:
    @pytest.mark.parametrize("seed", range(12))
    def test_bit_identical_to_python_kernel(self, seed):
        py = random_instance(seed, kernel="python")
        vec = random_instance(seed, kernel="vec")
        assert py.solve() == vec.solve()
        assert py.stats == vec.stats
        assert py.assign == [int(v) for v in vec.assign]
        assert_watch_invariant(vec)

    def test_bit_identical_under_diversified_config(self):
        config = diversified_configs(4)[1]
        for seed in range(6):
            py = random_instance(seed, config=config, kernel="python")
            vec = random_instance(seed, config=config, kernel="vec")
            assert py.solve() == vec.solve()
            assert py.stats == vec.stats

    def test_bit_identical_under_assumptions_with_cores(self):
        for seed in range(6):
            py = random_instance(seed, kernel="python")
            vec = random_instance(seed, kernel="vec")
            assumptions = [1, -2, 3]
            r_py = py.solve(assumptions)
            r_vec = vec.solve(assumptions)
            assert r_py == r_vec
            assert py.stats == vec.stats
            if r_py is False:
                assert py.core == [int(q) for q in vec.core]

    def test_reduce_db_handles_numpy_reason_clauses(self):
        # regression: _reduce_db tested reasons by truthiness, which
        # raises on the vec kernel's numpy clause arrays ("truth value
        # of an array with more than one element is ambiguous") — only
        # long searches that actually reach a DB reduction hit it
        vec = random_instance(1, kernel="vec")
        py = random_instance(1, kernel="python")
        assert vec.solve() == py.solve()
        assert any(
            vec.reason[abs(lit)] is not None for lit in vec.trail
        ), "test needs propagated literals with clause reasons on the trail"
        vec._reduce_db()
        py._reduce_db()
        assert len(vec.learnts) == len(py.learnts)

    def test_incremental_resolves_stay_identical(self):
        py = random_instance(3, kernel="python")
        vec = random_instance(3, kernel="vec")
        for assumptions in ([], [5], [-5, 7], []):
            assert py.solve(assumptions) == vec.solve(assumptions)
        assert py.stats == vec.stats


class TestFacadeResolution:
    def test_env_kernel_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAT_KERNEL", raising=False)
        assert _resolve_sat_kernel(None) == "python"
        monkeypatch.setenv("REPRO_SAT_KERNEL", "vec")
        assert _resolve_sat_kernel(None) == "vec"
        monkeypatch.setenv("REPRO_SAT_KERNEL", "")
        assert _resolve_sat_kernel(None) == "python"

    def test_bad_env_kernel_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_KERNEL", "gpu")
        with pytest.raises(ValueError, match="REPRO_SAT_KERNEL"):
            _resolve_sat_kernel(None)

    def test_env_config_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_CONFIG", "luby@32/p1/d0.9/s5")
        config = _resolve_sat_config(None)
        assert config.restart_base == 32
        assert config.seed == 5

    def test_bad_env_config_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_CONFIG", "bogus@@")
        with pytest.raises(ValueError, match="REPRO_SAT_CONFIG"):
            _resolve_sat_config(None)

    def test_engine_signature_carries_sat_kernel_and_config(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAT_KERNEL", raising=False)
        monkeypatch.delenv("REPRO_SAT_CONFIG", raising=False)
        assert "/sat=python/cfg=luby@100/p0/d0.95" in engine_signature()
        monkeypatch.setenv("REPRO_SAT_KERNEL", "vec")
        monkeypatch.setenv("REPRO_SAT_CONFIG", "geometric@64x1.5/p1/d0.92/s1")
        signature = engine_signature()
        assert "/sat=vec/" in signature
        assert signature.endswith("cfg=geometric@64x1.5/p1/d0.92/s1")

    def test_solver_statistics_expose_sat_kernel_and_config(self):
        solver = Solver(sat_kernel="vec", sat_config=SolverConfig(seed=3))
        stats = solver.statistics()
        assert stats["sat_kernel"] == "vec"
        assert stats["sat_config"] == "luby@100/p0/d0.95/s3"
