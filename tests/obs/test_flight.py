"""Flight recorder: frozen, redacted snapshots of offending traces."""

import json

import pytest

from repro.obs import flight as flight_mod
from repro.obs import logging as obs_logging
from repro.obs.flight import (
    FlightRecorder,
    NoopFlightRecorder,
    configure_flight,
    get_flight_recorder,
)
from repro.obs.trace import NoopTracer, Tracer, get_tracer, set_tracer


@pytest.fixture(autouse=True)
def restore_globals():
    prev_tracer = get_tracer()
    prev_recorder = get_flight_recorder()
    yield
    configure_flight(enabled=False)  # removes any installed log listener
    flight_mod._recorder = prev_recorder
    set_tracer(prev_tracer)


@pytest.fixture
def tracer():
    tracer = Tracer(ring_size=64)
    set_tracer(tracer)
    return tracer


def record_trace(tracer, **root_attrs):
    """A two-span tree in the ring; returns its trace id."""
    with tracer.span("outer", **root_attrs) as outer:
        trace_id = outer.trace_id
        with tracer.span("solve", stats={"conflicts": 3}):
            pass
    return trace_id


class TestTrigger:
    def test_snapshot_freezes_spans_logs_and_stats(self, tracer):
        trace_id = record_trace(tracer)
        recorder = FlightRecorder()
        recorder.record_log({"trace_id": trace_id, "event": "boom"})
        recorder.record_log({"trace_id": "other", "event": "unrelated"})
        recorder.record_log({"event": "no trace id, not buffered"})

        snap = recorder.trigger(
            "job_failed", trace_id=trace_id, detail={"job_id": "j1"}
        )
        assert snap["reason"] == "job_failed"
        assert snap["trace_id"] == trace_id
        assert snap["detail"] == {"job_id": "j1"}
        assert snap["span_count"] == 2
        assert {s["name"] for s in snap["spans"]} == {"outer", "solve"}
        assert snap["logs"] == [{"trace_id": trace_id, "event": "boom"}]
        assert snap["solver_stats"] == [
            {"span": "solve", "stats": {"conflicts": 3}}
        ]

    def test_duplicate_reason_and_trace_dedup(self, tracer):
        trace_id = record_trace(tracer)
        recorder = FlightRecorder()
        assert recorder.trigger("http_5xx", trace_id=trace_id) is not None
        assert recorder.trigger("http_5xx", trace_id=trace_id) is None
        assert recorder.counters["duplicates"] == 1
        assert len(recorder.snapshots()) == 1
        # a different reason for the same trace is new evidence
        assert recorder.trigger("slo_burn", trace_id=trace_id) is not None
        assert len(recorder.snapshots()) == 2

    def test_snapshot_store_is_bounded(self, tracer):
        recorder = FlightRecorder(max_snapshots=2)
        for i in range(3):
            recorder.trigger("job_failed", trace_id=f"trace-{i}")
        assert recorder.counters["snapshots"] == 3
        kept = [s["trace_id"] for s in recorder.snapshots()]
        assert kept == ["trace-1", "trace-2"]

    def test_snapshots_filter_accepts_trace_prefix(self, tracer):
        recorder = FlightRecorder()
        recorder.trigger("job_failed", trace_id="abcdef0123456789")
        recorder.trigger("job_failed", trace_id="ffff000000000000")
        assert len(recorder.snapshots("abcdef")) == 1
        assert recorder.snapshots("abcdef")[0]["trace_id"].startswith("abcdef")

    def test_sink_receives_json_lines(self, tracer, tmp_path):
        sink = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(sink_path=sink)
        trace_id = record_trace(tracer)
        recorder.trigger("deadline_miss", trace_id=trace_id)
        lines = sink.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["reason"] == "deadline_miss"


class TestRedaction:
    def test_payload_keys_dropped_and_strings_truncated(self, tracer):
        trace_id = record_trace(
            tracer, spec="SECRET PROBLEM", note="x" * 600
        )
        recorder = FlightRecorder()
        snap = recorder.trigger(
            "job_failed",
            trace_id=trace_id,
            detail={"payload": {"secret": 1}, "kind": "verify"},
        )
        outer = next(s for s in snap["spans"] if s["name"] == "outer")
        assert "spec" not in outer["attributes"]
        assert outer["attributes"]["note"].endswith("…[truncated 88 chars]")
        assert snap["detail"] == {"kind": "verify"}

    def test_redaction_recurses_into_nested_structures(self):
        recorder = FlightRecorder()
        snap = recorder.trigger(
            "http_5xx",
            trace_id="t-nested",
            detail={"ctx": {"measurements": [1, 2], "ok": ["a", {"body": 1}]}},
        )
        assert snap["detail"]["ctx"] == {"ok": ["a", {}]}

    def test_payload_endpoint_shape(self, tracer):
        recorder = FlightRecorder()
        recorder.record_log({"trace_id": "t", "event": "e"})
        recorder.trigger("job_failed", trace_id="t")
        payload = recorder.payload()
        assert payload["enabled"] is True
        assert payload["buffered_logs"] == 1
        assert payload["counters"]["triggers"] == 1
        assert len(payload["snapshots"]) == 1


class TestNoop:
    def test_noop_discards_everything(self):
        recorder = NoopFlightRecorder()
        recorder.record_log({"trace_id": "t", "event": "e"})
        assert recorder.trigger("job_failed", trace_id="t") is None
        assert recorder.payload() == {
            "enabled": False,
            "counters": {},
            "buffered_logs": 0,
            "snapshots": [],
        }

    def test_default_global_recorder_is_noop(self):
        configure_flight(enabled=False)
        assert get_flight_recorder().enabled is False


class TestConfigure:
    def test_enable_installs_recorder_and_log_listener(self):
        set_tracer(NoopTracer())
        recorder = configure_flight(enabled=True)
        assert recorder is get_flight_recorder()
        assert recorder.enabled
        assert recorder.record_log in obs_logging._listeners
        # a no-op tracer is replaced so there are spans to freeze
        assert get_tracer().enabled

    def test_explicitly_configured_tracer_left_alone(self, tracer):
        configure_flight(enabled=True)
        assert get_tracer() is tracer

    def test_disable_uninstalls_listener(self):
        recorder = configure_flight(enabled=True)
        configure_flight(enabled=False)
        assert recorder.record_log not in obs_logging._listeners
        assert get_flight_recorder().enabled is False

    def test_reconfigure_does_not_leak_listeners(self):
        before = len(obs_logging._listeners)
        for _ in range(3):
            configure_flight(enabled=True)
        assert len(obs_logging._listeners) == before + 1

    def test_structured_logs_reach_the_recorder(self, tracer):
        recorder = configure_flight(enabled=True)
        log = obs_logging.get_logger("test.flight")
        with tracer.span("op") as span:
            log.warning("something_failed", job="j1")
            trace_id = span.trace_id
        snap = recorder.trigger("job_failed", trace_id=trace_id)
        assert any(
            r.get("event") == "something_failed" for r in snap["logs"]
        )
