"""Waterfall rendering of JSONL span sinks."""

import json
from datetime import datetime

import pytest

from repro.obs.render import (
    group_traces,
    load_spans,
    parse_time,
    render_file,
    render_trace,
)


def span(trace="t1", sid="s1", parent=None, name="work", start=0.0, dur=0.01, **attrs):
    return {
        "trace_id": trace,
        "span_id": sid,
        "parent_id": parent,
        "name": name,
        "start": start,
        "duration_seconds": dur,
        "status": "ok",
        "attributes": attrs,
    }


def write_sink(path, spans):
    path.write_text("".join(json.dumps(s) + "\n" for s in spans))


class TestLoading:
    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(
            json.dumps(span()) + "\n"
            "not json at all\n"
            '{"no": "ids"}\n'
            "\n"
            + json.dumps(span(sid="s2"))
            + "\n"
        )
        assert len(load_spans(path)) == 2

    def test_group_by_trace_preserves_first_seen_order(self, tmp_path):
        spans = [span(trace="a"), span(trace="b", sid="s2"), span(trace="a", sid="s3")]
        traces = group_traces(spans)
        assert list(traces) == ["a", "b"]
        assert len(traces["a"]) == 2


class TestWaterfall:
    def test_tree_order_and_indent(self):
        spans = [
            span(sid="root", name="http.request", start=0.0, dur=0.1),
            span(sid="c1", parent="root", name="job", start=0.01, dur=0.08),
            span(sid="c2", parent="c1", name="verify.solve", start=0.02, dur=0.05),
        ]
        text = render_trace(spans)
        lines = text.splitlines()
        assert "trace t1  3 spans" in lines[0]
        assert lines[1].lstrip().startswith("http.request")
        assert "  job" in lines[2]
        assert "    verify.solve" in lines[3]

    def test_orphans_become_roots(self):
        spans = [span(sid="x", parent="never-arrived", name="orphan")]
        text = render_trace(spans)
        assert "orphan" in text

    def test_summary_shows_selected_attributes(self):
        spans = [span(sid="s", name="verify.solve", backend="smt", outcome="sat")]
        text = render_trace(spans)
        assert "backend=smt" in text
        assert "outcome=sat" in text

    def test_error_status_surfaced(self):
        bad = span(sid="s")
        bad["status"] = "error"
        assert "status=error" in render_trace([bad])

    def test_same_start_siblings_ordered_by_span_id(self):
        # wall clocks tie constantly at millisecond resolution; the
        # span-id tie-break keeps re-renders byte-stable
        spans = [
            span(sid="root", name="parent", start=0.0, dur=0.1),
            span(sid="zz", parent="root", name="sib-z", start=0.01),
            span(sid="aa", parent="root", name="sib-a", start=0.01),
        ]
        text = render_trace(spans)
        assert text.index("sib-a") < text.index("sib-z")
        assert render_trace(list(reversed(spans))) == text


class TestParseTime:
    def test_none_passes_through(self):
        assert parse_time(None) is None

    def test_epoch_accepted_as_number_or_string(self):
        assert parse_time(150.5) == 150.5
        assert parse_time("150.5") == 150.5

    def test_iso_8601_local_time(self):
        stamp = parse_time("2026-01-02T03:04:05")
        assert stamp == datetime(2026, 1, 2, 3, 4, 5).timestamp()

    def test_garbage_raises(self):
        with pytest.raises(ValueError, match="cannot parse time"):
            parse_time("five minutes ago")


class TestRenderFile:
    def test_multiple_traces_rendered(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_sink(path, [span(trace="aaa111"), span(trace="bbb222", sid="s2")])
        text = render_file(path)
        assert "trace aaa111" in text
        assert "trace bbb222" in text

    def test_trace_id_prefix_filter(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_sink(path, [span(trace="aaa111"), span(trace="bbb222", sid="s2")])
        text = render_file(path, trace_id="bbb")
        assert "trace bbb222" in text
        assert "aaa111" not in text

    def test_unknown_trace_id_reported(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_sink(path, [span()])
        assert "no trace matching" in render_file(path, trace_id="zzz")

    def test_limit_keeps_last_traces(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_sink(
            path,
            [span(trace=f"trace{i}", sid=f"s{i}") for i in range(5)],
        )
        text = render_file(path, limit=2)
        assert "trace trace3" in text
        assert "trace trace4" in text
        assert "trace trace0" not in text

    def test_empty_sink_reported(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text("")
        assert "no spans" in render_file(path)

    def test_since_until_filter_on_earliest_span_start(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_sink(
            path,
            [
                span(trace="early", sid="e1", start=100.0),
                span(trace="late", sid="l1", start=200.0),
            ],
        )
        assert "late" in render_file(path, since=150)
        assert "early" not in render_file(path, since=150)
        assert "early" in render_file(path, until=150)
        assert "late" not in render_file(path, until=150)
        both = render_file(path, since=50, until=250)
        assert "early" in both and "late" in both

    def test_window_uses_earliest_span_of_each_trace(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_sink(
            path,
            [
                span(trace="t", sid="root", start=100.0, dur=50.0),
                span(trace="t", sid="child", parent="root", start=140.0),
            ],
        )
        # the trace starts at 100 even though a span starts later
        assert "trace t" not in render_file(path, since=120)
        assert "trace t" in render_file(path, since=90)

    def test_since_accepts_string_epoch(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_sink(path, [span(trace="t", start=100.0)])
        assert "trace t" in render_file(path, since="50")

    def test_empty_window_reported(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_sink(path, [span(start=100.0)])
        assert "no traces inside the requested time window" in render_file(
            path, since=1e12
        )
