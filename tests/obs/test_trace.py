"""Span tracer: identity, nesting, propagation, ring, sink, no-op path."""

import json
import threading

import pytest

from repro.obs.trace import (
    NOOP_SPAN,
    NoopTracer,
    SpanContext,
    Tracer,
    configure_tracing,
    context_from_payload,
    context_payload,
    current_context,
    get_tracer,
    set_tracer,
)


@pytest.fixture(autouse=True)
def restore_global_tracer():
    previous = get_tracer()
    yield
    set_tracer(previous)


class TestSpanIdentity:
    def test_root_span_starts_a_fresh_trace(self):
        tracer = Tracer()
        with tracer.span("root") as span:
            assert len(span.trace_id) == 32
            assert len(span.span_id) == 16
            assert span.parent_id is None

    def test_nested_spans_share_trace_and_chain_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_context_restored_after_exit(self):
        tracer = Tracer()
        assert current_context() is None
        with tracer.span("outer") as outer:
            assert current_context() == outer.context
        assert current_context() is None


class TestExplicitParents:
    def test_payload_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer"):
            payload = context_payload()
        assert set(payload) == {"trace_id", "span_id"}
        ctx = context_from_payload(payload)
        assert isinstance(ctx, SpanContext)
        assert ctx.trace_id == payload["trace_id"]

    def test_explicit_parent_overrides_ambient(self):
        tracer = Tracer()
        parent = {"trace_id": "t" * 32, "span_id": "s" * 16}
        with tracer.span("ambient"):
            with tracer.span("child", parent=parent) as child:
                assert child.trace_id == parent["trace_id"]
                assert child.parent_id == parent["span_id"]

    def test_malformed_payload_means_no_parent(self):
        assert context_from_payload(None) is None
        assert context_from_payload({}) is None
        assert context_from_payload({"trace_id": "x"}) is None


class TestRecording:
    def test_finished_spans_land_in_ring(self):
        tracer = Tracer()
        with tracer.span("work", kind="test"):
            pass
        spans = tracer.finished_spans()
        assert len(spans) == 1
        assert spans[0]["name"] == "work"
        assert spans[0]["attributes"] == {"kind": "test"}
        assert spans[0]["duration_seconds"] >= 0

    def test_ring_is_bounded(self):
        tracer = Tracer(ring_size=4)
        for i in range(10):
            tracer.span(f"s{i}").finish()
        spans = tracer.finished_spans()
        assert len(spans) == 4
        assert spans[-1]["name"] == "s9"

    def test_exception_marks_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("explodes"):
                raise RuntimeError("boom")
        (span,) = tracer.finished_spans()
        assert span["status"] == "error"
        assert "boom" in span["attributes"]["error"]

    def test_set_attributes_chainable_and_recorded(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.set(a=1).set(b="x")
        (recorded,) = tracer.finished_spans()
        assert recorded["attributes"] == {"a": 1, "b": "x"}

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("once")
        span.finish()
        span.finish()
        assert len(tracer.finished_spans()) == 1

    def test_export_adopts_foreign_spans(self):
        tracer = Tracer()
        foreign = {"trace_id": "t" * 32, "span_id": "s" * 16, "name": "pool.task"}
        tracer.export(foreign)
        assert tracer.finished_spans("t" * 32)[0]["name"] == "pool.task"
        assert tracer.snapshot()["exported"] == 1

    def test_drain_empties_the_ring(self):
        tracer = Tracer()
        tracer.span("a").finish()
        assert len(tracer.drain()) == 1
        assert tracer.finished_spans() == []


class TestRingMemoryBounds:
    """The ring is bounded by payload bytes as well as span count, and
    eviction removes whole traces only (regression: a handful of spans
    with enormous attributes used to pin unbounded memory)."""

    def one_span_trace(self, tracer, name, payload_chars):
        with tracer.span(name, blob="x" * payload_chars) as span:
            trace_id = span.trace_id
        return trace_id

    def test_oversized_attributes_evict_older_whole_traces(self):
        tracer = Tracer(ring_size=1000, max_ring_bytes=4000)
        traces = [
            self.one_span_trace(tracer, f"s{i}", 1500) for i in range(4)
        ]
        snap = tracer.snapshot()
        assert snap["evicted_traces"] >= 2
        assert snap["ring_bytes"] <= 4000
        # survivors are the newest traces, each still complete
        survivors = tracer.trace_ids()
        assert survivors == traces[-len(survivors):]
        for trace_id in survivors:
            assert len(tracer.finished_spans(trace_id)) == 1

    def test_eviction_never_splits_a_trace(self):
        tracer = Tracer(ring_size=1000, max_ring_bytes=2000)
        with tracer.span("root") as root:
            first = root.trace_id
            with tracer.span("child-a"):
                pass
            with tracer.span("child-b"):
                pass
        # a single fat trace pushes the three-span trace out wholesale
        second = self.one_span_trace(tracer, "fat", 5000)
        assert tracer.finished_spans(first) == []
        assert tracer.trace_ids() == [second]
        assert tracer.snapshot()["evicted_traces"] == 1

    def test_last_trace_never_evicted_even_over_budget(self):
        tracer = Tracer(ring_size=1000, max_ring_bytes=1000)
        trace_id = self.one_span_trace(tracer, "fat", 50_000)
        assert len(tracer.finished_spans(trace_id)) == 1
        assert tracer.snapshot()["ring_bytes"] > 1000

    def test_runaway_single_trace_drops_excess_spans(self):
        tracer = Tracer(ring_size=3)
        with tracer.span("root") as root:
            trace_id = root.trace_id
            for i in range(5):
                with tracer.span(f"c{i}"):
                    pass
        # 6 spans in one trace, cap 3: the tree is truncated, not split
        assert len(tracer.finished_spans(trace_id)) == 3
        assert tracer.snapshot()["dropped"] == 3
        assert tracer.trace_ids() == [trace_id]

    def test_snapshot_reports_byte_accounting(self):
        tracer = Tracer(ring_size=8, max_ring_bytes=12345)
        self.one_span_trace(tracer, "s", 100)
        snap = tracer.snapshot()
        assert snap["max_ring_bytes"] == 12345
        assert snap["ring_traces"] == 1
        assert snap["ring_spans"] == 1
        assert snap["ring_bytes"] > 100  # payload plus per-span overhead

    def test_drain_resets_byte_accounting(self):
        tracer = Tracer()
        self.one_span_trace(tracer, "s", 100)
        tracer.drain()
        snap = tracer.snapshot()
        assert snap["ring_bytes"] == 0
        assert snap["ring_spans"] == 0

    def test_invalid_byte_budget_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_ring_bytes=0)


class TestJsonlSink:
    def test_spans_appended_one_per_line(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(jsonl_path=path)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["inner", "outer"]
        assert lines[0]["trace_id"] == lines[1]["trace_id"]

    def test_sink_errors_counted_not_raised(self, tmp_path):
        tracer = Tracer(jsonl_path=tmp_path / "nope" / "spans.jsonl")
        tracer.span("work").finish()  # parent dir missing: OSError inside
        assert tracer.snapshot()["sink_errors"] == 1


class TestThreads:
    def test_context_does_not_leak_across_threads(self):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["ctx"] = current_context()

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["ctx"] is None


class TestNoop:
    def test_default_tracer_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_TRACE_FILE", raising=False)
        import repro.obs.trace as trace_module

        monkeypatch.setattr(trace_module, "_tracer", None)
        assert isinstance(get_tracer(), NoopTracer)
        assert get_tracer().enabled is False

    def test_noop_span_is_shared_and_inert(self):
        tracer = NoopTracer()
        span = tracer.span("anything", big="attr")
        assert span is NOOP_SPAN
        with span as active:
            assert active.set(x=1) is active
            assert active.context_payload() is None
        assert tracer.finished_spans() == []

    def test_noop_does_not_activate_context(self):
        tracer = NoopTracer()
        with tracer.span("anything"):
            assert current_context() is None


class TestGlobalManagement:
    def test_configure_tracing_installs_and_returns(self):
        tracer = configure_tracing(enabled=True, ring_size=16)
        assert get_tracer() is tracer
        assert tracer.ring_size == 16

    def test_configure_disabled_installs_noop(self):
        configure_tracing(enabled=False)
        assert isinstance(get_tracer(), NoopTracer)

    def test_set_tracer_returns_previous(self):
        first = configure_tracing(enabled=True)
        second = Tracer()
        assert set_tracer(second) is first
        assert get_tracer() is second
