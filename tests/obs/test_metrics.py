"""Metrics registry: instruments, labels, Prometheus text exposition."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("t_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_series_are_independent(self, registry):
        c = registry.counter("t_total", "help", labels=("kind",))
        c.inc(kind="a")
        c.inc(3, kind="b")
        assert c.value(kind="a") == 1
        assert c.value(kind="b") == 3

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("t_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_wrong_labelset_rejected(self, registry):
        c = registry.counter("t_total", labels=("kind",))
        with pytest.raises(ValueError):
            c.inc(other="x")
        with pytest.raises(ValueError):
            c.inc()


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("t_depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4


class TestHistogram:
    def test_observe_counts_and_sum(self, registry):
        h = registry.histogram("t_seconds", buckets=(0.1, 1.0, 10.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(100.0)  # beyond all bounds: only +Inf
        assert h.count() == 3
        assert h.sum() == pytest.approx(100.55)

    def test_buckets_render_cumulative(self, registry):
        h = registry.histogram("t_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = registry.render_prometheus()
        assert 't_seconds_bucket{le="0.1"} 1' in text
        assert 't_seconds_bucket{le="1"} 2' in text
        assert 't_seconds_bucket{le="+Inf"} 2' in text
        assert "t_seconds_count 2" in text

    def test_default_buckets_cover_solver_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 60


class TestRegistration:
    def test_reregistering_returns_same_instrument(self, registry):
        a = registry.counter("t_total", "help", labels=("k",))
        b = registry.counter("t_total", "other help", labels=("k",))
        assert a is b

    def test_type_conflict_rejected(self, registry):
        registry.counter("t_total")
        with pytest.raises(ValueError):
            registry.gauge("t_total")

    def test_label_conflict_rejected(self, registry):
        registry.counter("t_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("t_total", labels=("b",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("9starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("has space")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels=("__reserved",))


class TestRendering:
    def test_help_and_type_headers(self, registry):
        registry.counter("t_total", "does things")
        text = registry.render_prometheus()
        assert "# HELP t_total does things" in text
        assert "# TYPE t_total counter" in text

    def test_unlabeled_empty_counter_renders_zero(self, registry):
        registry.counter("t_total", "h")
        assert "t_total 0" in registry.render_prometheus()

    def test_labeled_empty_family_renders_header_only(self, registry):
        registry.counter("t_total", "h", labels=("kind",))
        text = registry.render_prometheus()
        assert "# TYPE t_total counter" in text
        assert "t_total{" not in text

    def test_label_values_escaped(self, registry):
        c = registry.counter("t_total", labels=("path",))
        c.inc(path='a"b\\c\nd')
        text = registry.render_prometheus()
        assert 't_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_render_ends_with_newline(self, registry):
        registry.counter("t_total")
        assert registry.render_prometheus().endswith("\n")


class TestSnapshotAndReset:
    def test_snapshot_is_jsonable(self, registry):
        import json

        registry.counter("t_total", labels=("k",)).inc(k="x")
        registry.histogram("t_seconds", buckets=(1.0,)).observe(0.5)
        json.dumps(registry.snapshot())

    def test_reset_zeroes_but_keeps_registrations(self, registry):
        c = registry.counter("t_total")
        c.inc(5)
        registry.reset()
        assert c.value() == 0
        assert registry.get("t_total") is c


class TestDisabled:
    def test_disabled_registry_records_nothing(self, registry):
        registry.enabled = False
        c = registry.counter("t_total")
        c.inc(10)
        assert c.value() == 0
        # rendering still exposes the catalog
        assert "# TYPE t_total counter" in registry.render_prometheus()


class TestGlobalRegistry:
    def test_service_families_are_preregistered(self):
        # importing the instrumented layers registers the whole catalog
        import repro.runtime.executor  # noqa: F401
        import repro.service.http  # noqa: F401

        names = get_registry().names()
        for family in (
            "repro_http_requests_total",
            "repro_jobs_submitted_total",
            "repro_queue_depth",
            "repro_queue_wait_seconds",
            "repro_batch_size",
            "repro_cache_lookups_total",
            "repro_portfolio_wins_total",
            "repro_session_events_total",
            "repro_solver_conflicts_total",
            "repro_solver_fill_ratio",
            "repro_solver_refactorizations_total",
            "repro_solve_seconds",
            "repro_task_timeouts_total",
        ):
            assert family in names


class TestExemplars:
    def histogram(self, registry):
        return registry.histogram("t_seconds", "latency", buckets=(0.1, 1.0))

    def test_explicit_exemplar_lands_in_native_bucket(self, registry):
        h = self.histogram(registry)
        h.observe(0.05, exemplar="trace-a")
        exemplars = h.exemplars()
        assert exemplars[0.1][0] == "trace-a"
        assert exemplars[0.1][1] == pytest.approx(0.05)

    def test_overflow_exemplar_keyed_by_inf(self, registry):
        import math

        h = self.histogram(registry)
        h.observe(5.0, exemplar="trace-slow")
        assert h.exemplars()[math.inf][0] == "trace-slow"

    def test_rendered_only_on_the_native_bucket_line(self, registry):
        h = self.histogram(registry)
        h.observe(0.05, exemplar="trace-a")
        lines = registry.render_prometheus().splitlines()
        tagged = [line for line in lines if "# {" in line]
        assert tagged == [
            't_seconds_bucket{le="0.1"} 1 # {trace_id="trace-a"} 0.05 '
            + tagged[0].rsplit(" ", 1)[1]
        ]

    def test_no_exemplar_no_suffix(self, registry):
        h = self.histogram(registry)
        h.observe(0.05)
        assert "# {" not in registry.render_prometheus()

    def test_ambient_span_trace_id_captured(self, registry):
        from repro.obs.trace import Tracer, get_tracer, set_tracer

        previous = get_tracer()
        tracer = Tracer()
        set_tracer(tracer)
        try:
            h = self.histogram(registry)
            with tracer.span("op") as span:
                h.observe(0.05)
            assert h.exemplars()[0.1][0] == span.trace_id
        finally:
            set_tracer(previous)

    def test_set_exemplar_attaches_without_counting(self, registry):
        h = self.histogram(registry)
        h.set_exemplar(0.05, "trace-x", stamp=123.0)
        assert h.count() == 0
        assert h.exemplars()[0.1] == ("trace-x", 0.05, 123.0)

    def test_newer_observation_replaces_bucket_exemplar(self, registry):
        h = self.histogram(registry)
        h.observe(0.05, exemplar="old")
        h.observe(0.06, exemplar="new")
        assert h.exemplars()[0.1][0] == "new"

    def test_labeled_series_keep_separate_exemplars(self, registry):
        h = registry.histogram(
            "t_seconds", "latency", labels=("kind",), buckets=(0.1,)
        )
        h.observe(0.05, exemplar="a", kind="x")
        h.observe(0.05, exemplar="b", kind="y")
        assert h.exemplars(kind="x")[0.1][0] == "a"
        assert h.exemplars(kind="y")[0.1][0] == "b"


class TestBuildInfo:
    def test_single_series_with_identity_labels(self, registry):
        from repro.obs.metrics import record_build_info

        gauge = record_build_info(registry)
        text = registry.render_prometheus()
        assert "# TYPE repro_build_info gauge" in text
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_build_info{")
        )
        assert line.endswith(" 1")
        for label in ("engine_signature=", "version=", "kernel=", "sat_config="):
            assert label in line
        assert gauge.labelnames == (
            "engine_signature", "version", "kernel", "sat_config",
        )

    def test_signature_matches_solver_engine(self, registry):
        from repro.obs.metrics import record_build_info
        from repro.smt.solver import engine_signature

        record_build_info(registry)
        assert engine_signature() in registry.render_prometheus()

    def test_idempotent_re_registration(self, registry):
        from repro.obs.metrics import record_build_info

        first = record_build_info(registry)
        second = record_build_info(registry)
        assert first is second
        lines = [
            l for l in registry.render_prometheus().splitlines()
            if l.startswith("repro_build_info{")
        ]
        assert len(lines) == 1
