"""Prometheus-text parse/render round-trip and cluster merge semantics.

The round-trip class is the satellite contract: whatever
``repro.obs.metrics`` renders, ``repro.obs.agg`` must parse and re-emit
byte-for-byte — including escaped label values, HELP/TYPE headers and
OpenMetrics exemplar suffixes.  The merge classes pin the per-kind
semantics ``/clusterz/metrics`` relies on: counters sum, gauges
last-write, histograms re-bucket exactly on identical bounds.
"""

import math
from collections import OrderedDict

import pytest

from repro.obs import agg
from repro.obs.metrics import MetricsRegistry


def build_registry():
    """A registry exercising every samples shape the renderer can emit."""
    reg = MetricsRegistry()
    requests = reg.counter(
        "t_requests_total", "Requests served", labels=("path", "status")
    )
    requests.inc(3, path='a"b\\c\nd', status="200")
    requests.inc(1, path="/verify", status="500")
    depth = reg.gauge("t_queue_depth", "Jobs queued right now")
    depth.set(7)
    latency = reg.histogram(
        "t_seconds", "Request latency", buckets=(0.1, 0.5)
    )
    latency.observe(0.05, exemplar="trace-fast")
    latency.observe(0.3)
    latency.observe(2.0, exemplar="trace-slow")
    reg.counter("t_bare_total", "").inc(2)  # no HELP line
    return reg


class TestRoundTrip:
    def test_registry_render_parse_render_is_lossless(self):
        text = build_registry().render_prometheus()
        families = agg.parse_text(text)
        assert agg.render(families) == text

    def test_round_trip_is_stable_under_iteration(self):
        text = build_registry().render_prometheus()
        once = agg.render(agg.parse_text(text))
        assert agg.render(agg.parse_text(once)) == once

    def test_escaped_label_values_survive(self):
        families = agg.parse_text(build_registry().render_prometheus())
        sample = next(
            s
            for s in families["t_requests_total"].samples
            if s.label("status") == "200"
        )
        assert sample.label("path") == 'a"b\\c\nd'

    def test_help_and_type_preserved(self):
        families = agg.parse_text(build_registry().render_prometheus())
        assert families["t_requests_total"].kind == "counter"
        assert families["t_requests_total"].help == "Requests served"
        assert families["t_seconds"].kind == "histogram"
        assert families["t_bare_total"].help == ""

    def test_exemplars_parsed_from_bucket_lines(self):
        families = agg.parse_text(build_registry().render_prometheus())
        by_le = {
            s.label("le"): s.exemplar
            for s in families["t_seconds"].samples
            if s.name == "t_seconds_bucket"
        }
        assert by_le["0.1"][0] == "trace-fast"
        assert by_le["0.1"][1] == pytest.approx(0.05)
        assert by_le["+Inf"][0] == "trace-slow"
        assert by_le["0.5"] is None

    def test_histogram_components_fold_into_family(self):
        families = agg.parse_text(build_registry().render_prometheus())
        names = {s.name for s in families["t_seconds"].samples}
        assert names == {"t_seconds_bucket", "t_seconds_sum", "t_seconds_count"}
        assert "t_seconds_sum" not in families

    def test_multiline_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("t_total", "line one\nline two \\ back")
        text = reg.render_prometheus()
        families = agg.parse_text(text)
        assert families["t_total"].help == "line one\nline two \\ back"
        assert agg.render(families) == text


class TestParsing:
    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError):
            agg.parse_text("t_total\n")

    def test_unknown_comments_ignored(self):
        families = agg.parse_text("# EOF\n# random chatter\nt_total 1\n")
        assert families["t_total"].samples[0].value == 1.0

    def test_timestamped_sample(self):
        families = agg.parse_text("t_total 4 1700000000\n")
        sample = families["t_total"].samples[0]
        assert sample.value == 4.0
        assert sample.timestamp == 1700000000.0


class TestScalarMerge:
    def test_counters_sum_across_replicas(self):
        merged = agg.merge_scrapes(
            OrderedDict(
                r0='# TYPE t_total counter\nt_total{k="a"} 1\n',
                r1='# TYPE t_total counter\nt_total{k="a"} 2\n',
            )
        )
        flat = {
            (s.labels, s.name): s.value for s in merged["t_total"].samples
        }
        assert flat[((("k", "a"),), "t_total")] == 3.0

    def test_gauges_last_write_in_replica_order(self):
        merged = agg.merge_scrapes(
            OrderedDict(
                r0="# TYPE t_depth gauge\nt_depth 5\n",
                r1="# TYPE t_depth gauge\nt_depth 9\n",
            )
        )
        assert merged["t_depth"].samples[0].value == 9.0

    def test_per_replica_series_preserved(self):
        merged = agg.merge_scrapes(
            OrderedDict(
                r0='# TYPE t_total counter\nt_total{k="a"} 1\n',
                r1='# TYPE t_total counter\nt_total{k="a"} 2\n',
            )
        )
        by_replica = {
            s.label("replica"): s.value for s in merged["t_total"].samples
        }
        assert by_replica[None] == 3.0  # the merged series
        assert by_replica["r0"] == 1.0
        assert by_replica["r1"] == 2.0

    def test_include_per_replica_false_drops_raw_series(self):
        merged = agg.merge_scrapes(
            OrderedDict(r0="# TYPE t_total counter\nt_total 1\n"),
            include_per_replica=False,
        )
        assert len(merged["t_total"].samples) == 1
        assert merged["t_total"].samples[0].label("replica") is None

    def test_disjoint_label_sets_pass_through(self):
        merged = agg.merge_scrapes(
            OrderedDict(
                r0='# TYPE t_total counter\nt_total{k="a"} 1\n',
                r1='# TYPE t_total counter\nt_total{k="b"} 5\n',
            )
        )
        flat = {
            s.labels: s.value
            for s in merged["t_total"].samples
            if s.label("replica") is None
        }
        assert flat[(("k", "a"),)] == 1.0
        assert flat[(("k", "b"),)] == 5.0


def histogram_text(buckets, total, sum_value):
    lines = ["# TYPE t_seconds histogram"]
    for le, count in buckets:
        lines.append(f't_seconds_bucket{{le="{le}"}} {count}')
    lines.append(f"t_seconds_sum {sum_value}")
    lines.append(f"t_seconds_count {total}")
    return "\n".join(lines) + "\n"


class TestHistogramMerge:
    def merged_buckets(self, merged):
        return {
            s.label("le"): s.value
            for s in merged["t_seconds"].samples
            if s.name == "t_seconds_bucket" and s.label("replica") is None
        }

    def test_identical_bounds_merge_exactly(self):
        merged = agg.merge_scrapes(
            OrderedDict(
                r0=histogram_text(
                    [("0.1", 2), ("0.5", 5), ("+Inf", 8)], 8, 3.5
                ),
                r1=histogram_text(
                    [("0.1", 1), ("0.5", 1), ("+Inf", 4)], 4, 6.0
                ),
            )
        )
        assert self.merged_buckets(merged) == {
            "0.1": 3.0,
            "0.5": 6.0,
            "+Inf": 12.0,
        }
        scalars = {
            s.name: s.value
            for s in merged["t_seconds"].samples
            if s.label("replica") is None and not s.labels
        }
        assert scalars["t_seconds_sum"] == pytest.approx(9.5)
        assert scalars["t_seconds_count"] == 12.0

    def test_differing_bounds_rebucket_onto_union(self):
        # r0 declares {0.1, +Inf}, r1 declares {0.5, +Inf}: at a union
        # bound a replica does not declare, its contribution is the
        # monotone lower bound (count at its largest bound below)
        merged = agg.merge_scrapes(
            OrderedDict(
                r0=histogram_text([("0.1", 1), ("+Inf", 2)], 2, 1.0),
                r1=histogram_text([("0.5", 3), ("+Inf", 4)], 4, 2.0),
            )
        )
        assert self.merged_buckets(merged) == {
            "0.1": 1.0,  # r0 @0.1 + r1 lower bound (nothing below 0.1)
            "0.5": 4.0,  # r0 lower bound (0.1 -> 1) + r1 @0.5
            "+Inf": 6.0,
        }

    def test_missing_inf_bucket_falls_back_to_count(self):
        text = (
            "# TYPE t_seconds histogram\n"
            't_seconds_bucket{le="0.1"} 1\n'
            "t_seconds_sum 2.0\n"
            "t_seconds_count 7\n"
        )
        merged = agg.merge_scrapes(OrderedDict(r0=text))
        assert self.merged_buckets(merged)["+Inf"] == 7.0

    def test_newest_exemplar_wins(self):
        r0 = (
            "# TYPE t_seconds histogram\n"
            't_seconds_bucket{le="0.5"} 1 # {trace_id="old"} 0.3 10\n'
            't_seconds_bucket{le="+Inf"} 1\n'
            "t_seconds_sum 0.3\nt_seconds_count 1\n"
        )
        r1 = (
            "# TYPE t_seconds histogram\n"
            't_seconds_bucket{le="0.5"} 2 # {trace_id="new"} 0.4 20\n'
            't_seconds_bucket{le="+Inf"} 2\n'
            "t_seconds_sum 0.8\nt_seconds_count 2\n"
        )
        merged = agg.merge_scrapes(OrderedDict(r0=r0, r1=r1))
        exemplars = {
            s.label("le"): s.exemplar
            for s in merged["t_seconds"].samples
            if s.name == "t_seconds_bucket" and s.label("replica") is None
        }
        assert exemplars["0.5"][0] == "new"

    def test_replica_label_keeps_le_last(self):
        merged = agg.merge_scrapes(
            OrderedDict(
                r0=histogram_text([("0.1", 1), ("+Inf", 1)], 1, 0.05)
            )
        )
        bucket = next(
            s
            for s in merged["t_seconds"].samples
            if s.name == "t_seconds_bucket" and s.label("replica") == "r0"
        )
        assert bucket.labels[-1][0] == "le"


class TestMergeExposition:
    def test_merged_text_parses_back(self):
        text = agg.merge_exposition(
            OrderedDict(
                r0=build_registry().render_prometheus(),
                r1=build_registry().render_prometheus(),
            )
        )
        families = agg.parse_text(text)
        # counters doubled, per-replica series audit the merge
        merged = next(
            s
            for s in families["t_requests_total"].samples
            if s.label("replica") is None and s.label("status") == "500"
        )
        assert merged.value == 2.0
        assert {
            s.label("replica") for s in families["t_requests_total"].samples
        } == {None, "r0", "r1"}

    def test_merged_histogram_counts_are_exact(self):
        text = agg.merge_exposition(
            OrderedDict(
                r0=build_registry().render_prometheus(),
                r1=build_registry().render_prometheus(),
            )
        )
        families = agg.parse_text(text)
        counts = {
            s.label("le"): s.value
            for s in families["t_seconds"].samples
            if s.name == "t_seconds_bucket" and s.label("replica") is None
        }
        assert counts == {"0.1": 2.0, "0.5": 4.0, "+Inf": 6.0}
