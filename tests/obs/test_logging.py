"""Structured logging: JSON lines, levels, trace correlation."""

import io
import json

import pytest

import repro.obs.logging as obs_logging
from repro.obs.logging import StructuredLogger, configure_logging, get_logger
from repro.obs.trace import Tracer


@pytest.fixture
def stream():
    """Capture log output and restore the module config afterwards."""
    previous = dict(obs_logging._config)
    out = io.StringIO()
    configure_logging(enabled=True, level="debug", stream=out)
    yield out
    obs_logging._config.update(previous)


def records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestEmission:
    def test_one_json_object_per_line(self, stream):
        log = StructuredLogger("test")
        log.info("thing.happened", a=1)
        log.warning("thing.warned")
        recs = records(stream)
        assert [r["event"] for r in recs] == ["thing.happened", "thing.warned"]
        assert recs[0]["level"] == "info"
        assert recs[0]["logger"] == "test"
        assert recs[0]["a"] == 1
        assert "ts" in recs[0]

    def test_level_threshold_filters(self, stream):
        configure_logging(level="warning")
        log = StructuredLogger("test")
        log.debug("quiet")
        log.info("quiet")
        log.error("loud")
        assert [r["event"] for r in records(stream)] == ["loud"]

    def test_disabled_emits_nothing(self, stream):
        configure_logging(enabled=False)
        StructuredLogger("test").error("anything")
        assert stream.getvalue() == ""

    def test_unserializable_fields_fall_back_to_str(self, stream):
        StructuredLogger("test").info("x", obj=object())
        (rec,) = records(stream)
        assert "object object" in rec["obj"]


class TestTraceCorrelation:
    def test_active_span_ids_injected(self, stream):
        tracer = Tracer()
        log = StructuredLogger("test")
        with tracer.span("work") as span:
            log.info("inside")
        log.info("outside")
        inside, outside = records(stream)
        assert inside["trace_id"] == span.trace_id
        assert inside["span_id"] == span.span_id
        assert "trace_id" not in outside


class TestGetLogger:
    def test_cached_by_name(self):
        assert get_logger("repro.x") is get_logger("repro.x")
        assert get_logger("repro.x").name == "repro.x"
