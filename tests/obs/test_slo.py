"""Burn-rate SLO evaluation with an injected clock.

Every scenario drives :class:`SloEvaluator` with hand-built exposition
text and a fake clock, so window arithmetic is deterministic: alerts
must fire only when BOTH the short and long window burn over the
threshold, fire once per breach (rising edge), and re-arm after
recovery.
"""

import json

import pytest

from repro.monitor.incidents import Incident
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    DEFAULT_WINDOWS,
    BurnWindow,
    SloConfig,
    SloEvaluator,
    SloObjective,
    alert_to_incident_payload,
    load_slo_config,
)

# one window with easy numbers: objective 0.9 -> budget 0.1,
# burn = bad_fraction / 0.1; alert when burn > 2 in 60s AND 300s
WINDOW = BurnWindow(
    "test", short_seconds=60.0, long_seconds=300.0,
    burn_threshold=2.0, severity="major",
)
AVAIL = SloObjective(
    name="avail", objective=0.9, kind="availability",
    metric="m_total", bad_label="status", bad_prefix="5",
)
CONFIG = SloConfig(slos=(AVAIL,), windows=(WINDOW,), interval_seconds=1.0)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def exposition(good, bad):
    return (
        "# TYPE m_total counter\n"
        f'm_total{{status="200"}} {good}\n'
        f'm_total{{status="500"}} {bad}\n'
    )


def make_evaluator(config=CONFIG):
    clock = FakeClock()
    evaluator = SloEvaluator(config, clock=clock, record_metrics=False)
    return evaluator, clock


def feed(evaluator, clock, t, good, bad):
    clock.now = t
    return evaluator.sample_text(exposition(good, bad))


class TestBurnAlerting:
    def test_no_alert_when_healthy(self):
        ev, clock = make_evaluator()
        assert feed(ev, clock, 0, 100, 0) == []
        assert feed(ev, clock, 30, 200, 0) == []
        status = ev.status()["slos"][0]
        assert status["alerting"] is False
        assert status["budget_remaining"] == pytest.approx(1.0)

    def test_fires_when_both_windows_burn(self):
        ev, clock = make_evaluator()
        feed(ev, clock, 0, 100, 0)
        events = feed(ev, clock, 30, 100, 100)  # 100% bad in the window
        assert len(events) == 1
        event = events[0]
        assert event["slo"] == "avail"
        assert event["severity"] == "major"
        assert event["windows"] == ["test"]
        assert event["burn_rates"]["test"]["short"] == pytest.approx(10.0)
        assert event["fired_at"] == 30
        assert ev.status()["slos"][0]["alerting"] is True

    def test_short_blip_alone_does_not_fire(self):
        ev, clock = make_evaluator()
        # 10 minutes of dense healthy history (100 requests / 30s)
        for k in range(21):
            assert feed(ev, clock, 30 * k, 100 * (k + 1), 0) == []
        # one 50%-bad blip: short window burns (2.5 > 2) but the long
        # window still sees mostly-good traffic (0.5 < 2) -> no alert
        events = feed(ev, clock, 630, 2150, 50)
        assert events == []
        burns = ev.status()["slos"][0]["burn_rates"]["test"]
        assert burns["short"] > 2.0
        assert burns["long"] < 2.0

    def test_sustained_burn_fires_exactly_once(self):
        ev, clock = make_evaluator()
        for k in range(21):
            feed(ev, clock, 30 * k, 100 * (k + 1), 0)
        feed(ev, clock, 630, 2150, 50)
        fired = []
        # every new request fails from here on
        for i, t in enumerate(range(660, 960, 30)):
            fired += feed(ev, clock, t, 2150, 150 + 100 * i)
        assert len(fired) == 1  # rising edge only, stays active after

    def test_rising_edge_rearms_after_recovery(self):
        ev, clock = make_evaluator()
        feed(ev, clock, 0, 100, 0)
        first = feed(ev, clock, 30, 100, 100)
        assert len(first) == 1
        assert feed(ev, clock, 60, 100, 200) == []  # still burning
        # long quiet stretch: both window baselines pass the burst
        assert feed(ev, clock, 400, 10100, 200) == []
        assert ev.status()["slos"][0]["alerting"] is False
        # a second burst big enough for both windows fires again
        second = feed(ev, clock, 430, 10100, 5200)
        assert len(second) == 1
        assert len(ev.alerts()) == 2

    def test_severity_is_worst_alerting_window(self):
        config = SloConfig(
            slos=(AVAIL,),
            windows=(
                WINDOW,
                BurnWindow("page", 60.0, 300.0, 1.0, "critical"),
            ),
        )
        ev, clock = make_evaluator(config)
        feed(ev, clock, 0, 100, 0)
        events = feed(ev, clock, 30, 100, 100)
        assert len(events) == 1
        assert events[0]["severity"] == "critical"
        assert sorted(events[0]["windows"]) == ["page", "test"]

    def test_default_windows_are_google_sre_pairs(self):
        assert [w.name for w in DEFAULT_WINDOWS] == ["fast", "slow"]
        fast = DEFAULT_WINDOWS[0]
        assert (fast.short_seconds, fast.long_seconds) == (300.0, 3600.0)
        assert fast.severity == "critical"


LATENCY = SloObjective(
    name="lat", objective=0.9, kind="latency",
    metric="m_seconds", threshold_seconds=0.5,
)


def latency_exposition(under, over, exemplar_line=""):
    total = under + over
    return (
        "# TYPE m_seconds histogram\n"
        f'm_seconds_bucket{{le="0.1"}} {under // 2}\n'
        f'm_seconds_bucket{{le="0.5"}} {under}\n'
        f'm_seconds_bucket{{le="+Inf"}} {total}{exemplar_line}\n'
        f"m_seconds_sum {total * 0.2}\n"
        f"m_seconds_count {total}\n"
    )


class TestLatencySlo:
    def test_good_is_cumulative_count_at_threshold_bucket(self):
        config = SloConfig(slos=(LATENCY,), windows=(WINDOW,))
        ev, clock = make_evaluator(config)
        clock.now = 0
        ev.sample_text(latency_exposition(0, 0))
        clock.now = 30
        events = ev.sample_text(latency_exposition(70, 30))
        # 30% of requests over 0.5s -> burn 3.0 > 2 in both windows
        assert len(events) == 1
        status = ev.status()["slos"][0]
        assert status["good"] == 70.0
        assert status["total"] == 100.0

    def test_exemplar_comes_from_bucket_above_threshold(self):
        config = SloConfig(slos=(LATENCY,), windows=(WINDOW,))
        ev, clock = make_evaluator(config)
        clock.now = 0
        ev.sample_text(latency_exposition(0, 0))
        clock.now = 30
        events = ev.sample_text(
            latency_exposition(
                70, 30, exemplar_line=' # {trace_id="tr-slow"} 2.0 123'
            )
        )
        assert events[0]["exemplar_trace_id"] == "tr-slow"

    def test_missing_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold_seconds"):
            SloObjective(
                name="bad", objective=0.9, kind="latency", metric="m"
            )


class TestMergedScrapeHandling:
    def test_replica_labeled_duplicates_skipped(self):
        # a /clusterz/metrics scrape carries the merged series AND the
        # per-replica audit series; only the merged one may count
        text = (
            "# TYPE m_total counter\n"
            'm_total{status="500"} 100\n'
            'm_total{replica="r0",status="500"} 60\n'
            'm_total{replica="r1",status="500"} 40\n'
        )
        ev, clock = make_evaluator()
        clock.now = 0
        ev.sample_text(text)
        assert ev.status()["slos"][0]["total"] == 100.0


class TestSloMetrics:
    def test_evaluator_records_own_metrics(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        ev = SloEvaluator(CONFIG, clock=clock, registry=reg)
        clock.now = 0
        ev.sample_text(exposition(100, 0))
        clock.now = 30
        ev.sample_text(exposition(100, 100))
        text = reg.render_prometheus()
        assert 'repro_slo_burn_rate{slo="avail",window="test"}' in text
        assert 'repro_slo_error_budget_remaining{slo="avail"}' in text
        assert 'repro_slo_alerts_total{slo="avail",severity="major"} 1' in text


class TestIncidentBridge:
    def fired_event(self):
        ev, clock = make_evaluator()
        feed(ev, clock, 0, 100, 0)
        return feed(ev, clock, 30, 100, 100)[0]

    def test_alert_payload_loads_as_incident(self):
        payload = alert_to_incident_payload(self.fired_event(), 3)
        incident = Incident.from_payload(payload)
        assert incident.id == "slo_burn-00003-00"
        assert incident.kind == "slo_burn"
        assert incident.severity == "major"
        assert incident.detector == "slo"
        assert incident.evidence["slo"] == "avail"

    def test_payload_carries_exemplar_trace(self):
        event = dict(self.fired_event(), exemplar_trace_id="tr-1")
        payload = alert_to_incident_payload(event, 1)
        assert payload["trace_id"] == "tr-1"
        assert Incident.from_payload(payload).trace_id == "tr-1"

    def test_payload_round_trips_json(self):
        payload = alert_to_incident_payload(self.fired_event(), 2)
        assert json.loads(json.dumps(payload)) == payload


class TestConfigLoading:
    def test_none_returns_defaults(self):
        config = load_slo_config(None)
        assert tuple(s.name for s in config.slos) == (
            "availability", "latency", "jobs",
        )
        assert config.windows == DEFAULT_WINDOWS

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps(
                {
                    "interval_seconds": 0.5,
                    "windows": [
                        {
                            "name": "w", "short_seconds": 10,
                            "long_seconds": 100, "burn_threshold": 3,
                            "severity": "critical",
                        }
                    ],
                    "slos": [
                        {
                            "name": "jobs", "objective": 0.95,
                            "metric": "repro_jobs_finished_total",
                            "bad_label": "state", "bad_prefix": None,
                            "bad_values": ["failed", "timeout"],
                        }
                    ],
                }
            )
        )
        config = load_slo_config(path)
        assert config.interval_seconds == 0.5
        assert config.windows[0].burn_threshold == 3.0
        slo = config.slos[0]
        assert slo.kind == "availability"
        assert slo.is_bad("failed") and not slo.is_bad("ok")
        # and the parsed config serializes back
        assert config.to_payload()["slos"][0]["name"] == "jobs"

    def test_empty_slos_rejected(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"slos": []}')
        with pytest.raises(ValueError, match="no slos"):
            load_slo_config(path)

    def test_objective_must_be_fraction(self):
        with pytest.raises(ValueError, match="objective"):
            SloObjective(
                name="x", objective=1.5, kind="availability", metric="m"
            )

    def test_default_slos_cover_http_and_jobs(self):
        assert {s.metric for s in DEFAULT_SLOS} == {
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_jobs_finished_total",
        }

    def test_status_payload_shape(self):
        ev, clock = make_evaluator()
        feed(ev, clock, 0, 10, 0)
        status = ev.status()
        assert set(status) == {"config", "slos", "alerts"}
        assert status["config"]["windows"][0]["name"] == "test"
        assert status["slos"][0]["name"] == "avail"
