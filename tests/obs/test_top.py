"""``repro top`` arithmetic and rendering over canned expositions."""

import io
import math

import pytest

from repro.obs import agg
from repro.obs.top import (
    TopSnapshot,
    build_signatures,
    collect,
    quantiles_from_deltas,
    render_dashboard,
    replica_ids,
    replica_red_rows,
    run_top,
)


def snapshot(text, stamp, slo=None):
    return TopSnapshot(agg.parse_text(text), slo, stamp)


def cluster_text(r0_requests=100, r0_errors=10, r1_requests=50, buckets=(60, 100, 110)):
    under_01, under_05, total = buckets
    return (
        "# TYPE repro_http_requests_total counter\n"
        f'repro_http_requests_total{{replica="r0",status="200"}} {r0_requests}\n'
        f'repro_http_requests_total{{replica="r0",status="500"}} {r0_errors}\n'
        f'repro_http_requests_total{{replica="r1",status="200"}} {r1_requests}\n'
        "# TYPE repro_http_request_seconds histogram\n"
        f'repro_http_request_seconds_bucket{{replica="r0",le="0.1"}} {under_01}\n'
        f'repro_http_request_seconds_bucket{{replica="r0",le="0.5"}} {under_05}\n'
        f'repro_http_request_seconds_bucket{{replica="r0",le="+Inf"}} {total}\n'
        f'repro_http_request_seconds_sum{{replica="r0"}} 9\n'
        f'repro_http_request_seconds_count{{replica="r0"}} {total}\n'
        "# TYPE repro_queue_depth gauge\n"
        'repro_queue_depth{replica="r0"} 3\n'
        'repro_queue_depth{replica="r1"} 1\n'
    )


class TestQuantiles:
    def test_interpolates_inside_target_bucket(self):
        current = {0.1: 10.0, 0.5: 20.0, math.inf: 20.0}
        p50, p95, p99 = quantiles_from_deltas(current, None)
        assert p50 == pytest.approx(0.1)
        assert p95 == pytest.approx(0.46)
        assert p99 == pytest.approx(0.492)

    def test_previous_counts_subtracted(self):
        previous = {0.1: 10.0, 0.5: 20.0, math.inf: 20.0}
        # only slow samples landed since the previous scrape
        current = {0.1: 10.0, 0.5: 30.0, math.inf: 30.0}
        p50, _, _ = quantiles_from_deltas(current, previous)
        assert 0.1 < p50 <= 0.5

    def test_overflow_mass_reports_largest_bound(self):
        current = {0.1: 0.0, 0.5: 0.0, math.inf: 5.0}
        assert quantiles_from_deltas(current, None) == [0.5, 0.5, 0.5]

    def test_empty_window_is_none(self):
        current = {0.1: 7.0, math.inf: 7.0}
        assert quantiles_from_deltas(current, current) == [None, None, None]
        assert quantiles_from_deltas({}, None) == [None, None, None]


class TestReplicaRows:
    def test_replica_ids_from_scrape(self):
        assert replica_ids(agg.parse_text(cluster_text())) == ["r0", "r1"]
        assert replica_ids(agg.parse_text("# TYPE x counter\nx 1\n")) == [""]

    def test_first_frame_has_totals_but_no_rates(self):
        rows = replica_red_rows(snapshot(cluster_text(), 100.0), None)
        assert [r["replica"] for r in rows] == ["r0", "r1"]
        r0 = rows[0]
        assert r0["requests_total"] == 110.0
        assert r0["errors_total"] == 10.0
        assert r0["rate"] is None and r0["error_rate"] is None
        assert r0["queue_depth"] == 3.0

    def test_rates_from_two_frame_deltas(self):
        first = snapshot(cluster_text(), 100.0)
        second = snapshot(
            cluster_text(r0_requests=180, r0_errors=30, r1_requests=90),
            110.0,
        )
        rows = replica_red_rows(second, first)
        r0, r1 = rows
        assert r0["rate"] == pytest.approx(10.0)  # +100 requests / 10s
        assert r0["error_rate"] == pytest.approx(2.0)
        assert r1["rate"] == pytest.approx(4.0)

    def test_latency_quantiles_from_bucket_deltas(self):
        first = snapshot(cluster_text(buckets=(60, 100, 110)), 100.0)
        second = snapshot(cluster_text(buckets=(70, 120, 130)), 110.0)
        r0 = replica_red_rows(second, first)[0]
        # delta: 10 in (0,0.1], 10 in (0.1,0.5], 0 overflow -> p50=0.1
        assert r0["p50"] == pytest.approx(0.1)
        assert r0["p99"] is not None

    def test_unsharded_scrape_renders_as_local(self):
        text = (
            "# TYPE repro_http_requests_total counter\n"
            'repro_http_requests_total{status="200"} 5\n'
        )
        rows = replica_red_rows(snapshot(text, 1.0), None)
        assert [r["replica"] for r in rows] == ["local"]
        assert rows[0]["requests_total"] == 5.0


def build_info_text(signatures):
    lines = ["# TYPE repro_build_info gauge"]
    for replica, sig in signatures.items():
        lines.append(
            f'repro_build_info{{engine_signature="{sig}",version="1",'
            f'kernel="dense",sat_config="cfg",replica="{replica}"}} 1'
        )
    return "\n".join(lines) + "\n"


class TestDashboard:
    def test_build_signatures_keyed_by_replica(self):
        families = agg.parse_text(build_info_text({"r0": "sigA", "r1": "sigB"}))
        assert build_signatures(families) == {"r0": "sigA", "r1": "sigB"}

    def test_uniform_build_renders_one_line(self):
        text = cluster_text() + build_info_text({"r0": "sigA", "r1": "sigA"})
        frame = render_dashboard(snapshot(text, 100.0), None, source="router")
        assert "repro top — router —" in frame
        assert "build: sigA (2 process(es))" in frame
        assert "SKEW" not in frame

    def test_skew_lists_every_replica(self):
        text = cluster_text() + build_info_text({"r0": "sigA", "r1": "sigB"})
        frame = render_dashboard(snapshot(text, 100.0), None)
        assert "build SKEW — 2 distinct signatures:" in frame
        assert "sigA" in frame and "sigB" in frame

    def test_slo_section_shows_burning_state_and_exemplar(self):
        slo = {
            "slos": [
                {
                    "name": "availability",
                    "objective": 0.999,
                    "budget_remaining": 0.25,
                    "alerting": True,
                    "exemplar_trace_id": "deadbeefdeadbeefdeadbeef",
                },
                {
                    "name": "latency",
                    "objective": 0.99,
                    "budget_remaining": 1.0,
                    "alerting": False,
                },
            ],
            "alerts": [
                {
                    "slo": "availability",
                    "severity": "critical",
                    "windows": ["fast"],
                    "fired_at": 1700000000.0,
                    "exemplar_trace_id": "deadbeefdeadbeefdeadbeef",
                }
            ],
        }
        frame = render_dashboard(snapshot(cluster_text(), 100.0, slo), None)
        assert "BURNING" in frame
        assert "deadbeefdeadbeef" in frame  # 16-char prefix
        assert "recent alerts:" in frame
        assert "slo=availability windows=fast" in frame

    def test_rates_rendered_on_second_frame(self):
        first = snapshot(cluster_text(), 100.0)
        second = snapshot(cluster_text(r0_requests=180), 110.0)
        frame = render_dashboard(second, first)
        assert "/s" in frame
        assert "fleet:" in frame


class TestCollectAndLoop:
    def test_collect_parses_metrics_and_slo(self):
        snap = collect(
            lambda: cluster_text(),
            fetch_slo=lambda: '{"slos": []}',
            clock=lambda: 42.0,
        )
        assert snap.stamp == 42.0
        assert "repro_http_requests_total" in snap.families
        assert snap.slo == {"slos": []}

    def test_slo_fetch_failure_degrades_to_none(self):
        def broken():
            raise OSError("connection refused")

        snap = collect(lambda: cluster_text(), fetch_slo=broken)
        assert snap.slo is None

    def test_unreachable_endpoint_exits_nonzero(self):
        out = io.StringIO()
        code = run_top(
            "http://127.0.0.1:9", interval=0.01, iterations=1,
            no_clear=True, out=out, timeout=0.2,
        )
        assert code == 1
        assert out.getvalue().startswith("repro top:")
