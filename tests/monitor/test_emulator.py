"""Emulator determinism and physical sanity of the emitted stream."""

import numpy as np
import pytest

from repro.estimation.baddata import chi_square_test
from repro.grid.cases import ieee14
from repro.monitor.emulator import MeasurementEmulator
from repro.monitor.scenario import builtin_scenario


def stream(scenario_name, ticks=40, seed=7, grid=None):
    grid = grid or ieee14()
    scenario = builtin_scenario(scenario_name, grid, ticks=ticks)
    emulator = MeasurementEmulator(grid, scenario, seed=seed)
    return emulator, list(emulator.ticks(ticks))


class TestDeterminism:
    def test_same_seed_same_digest(self):
        emu_a, ticks_a = stream("telemetry_spoof")
        emu_b, ticks_b = stream("telemetry_spoof")
        assert emu_a.stream_digest == emu_b.stream_digest
        for a, b in zip(ticks_a, ticks_b):
            np.testing.assert_array_equal(a.z, b.z)
            np.testing.assert_array_equal(a.estimate.x_hat, b.estimate.x_hat)

    def test_different_seed_different_stream(self):
        emu_a, _ = stream("nominal", seed=7)
        emu_b, _ = stream("nominal", seed=8)
        assert emu_a.stream_digest != emu_b.stream_digest

    def test_events_do_not_shift_the_rng_stream(self):
        """Noise draws are fixed-size per tick: before any event starts,
        a nominal run and a spoof run are byte-identical."""
        _, nominal = stream("nominal")
        _, spoofed = stream("telemetry_spoof")
        onset = min(
            t.index for t in spoofed if "telemetry_spoof" in t.active_kinds
        )
        for a, b in zip(nominal[:onset], spoofed[:onset]):
            np.testing.assert_array_equal(a.z, b.z)


class TestSpoof:
    def test_spoof_is_stealthy_and_moves_the_state(self):
        grid = ieee14()
        _, nominal = stream("nominal", grid=grid)
        _, spoofed = stream("telemetry_spoof", grid=grid)
        active = [t for t in spoofed if t.spoof is not None]
        assert active
        for tick in active:
            twin = nominal[tick.index]
            # stealth: a = Hc leaves the residual untouched ...
            np.testing.assert_allclose(
                tick.estimate.residual, twin.estimate.residual, atol=1e-9
            )
            assert not chi_square_test(tick.estimate).bad_data_detected
            # ... while the state moves by exactly c
            shift = tick.estimate.x_hat - twin.estimate.x_hat
            for bus, delta in tick.spoof.state_deltas.items():
                column = [b for b in grid.buses if b != 1].index(bus)
                assert shift[column] == pytest.approx(delta, abs=1e-9)


class TestOutage:
    def test_outage_drops_the_line_and_flags_the_change(self):
        grid = ieee14()
        _, ticks = stream("line_outage", grid=grid)
        pre = [t for t in ticks if len(t.mapped_lines) == grid.num_lines]
        post = [t for t in ticks if len(t.mapped_lines) < grid.num_lines]
        assert pre and post
        changed = [t for t in ticks if t.topology_changed]
        assert len(changed) == 1
        assert changed[0].index == post[0].index
        # the estimator still solves the post-outage system
        for tick in post:
            assert np.isfinite(tick.estimate.residual_norm)

    def test_warm_estimator_factorizes_once_per_topology(self):
        emulator, _ = stream("line_outage", ticks=40)
        snap = emulator.estimator.snapshot()
        assert snap["factorizations"] == 2  # full + post-outage topology
        assert snap["estimates"] == 40
        assert snap["cache_hits"] == 38


class TestNoiseBurst:
    def test_burst_scales_noise(self):
        _, ticks = stream("noise_burst", ticks=40)
        burst = [t for t in ticks if "noise_burst" in t.active_kinds]
        quiet = [t for t in ticks if "noise_burst" not in t.active_kinds]
        assert burst and quiet
        burst_dev = np.mean([np.abs(t.z - t.z_clean).mean() for t in burst])
        quiet_dev = np.mean([np.abs(t.z - t.z_clean).mean() for t in quiet])
        assert burst_dev > 5 * quiet_dev
