"""Engine behavior: replay determinism, batch equivalence, warm sessions.

These are the ISSUE's acceptance tests: the same (case, scenario,
seed) must reproduce the measurement stream and the incident list
bit-for-bit, and a live incident's verification verdict and synthesized
countermeasure must match what the equivalent *batch* ``verify`` /
``mincost`` / ``synthesize`` calls produce.
"""

import pytest

from repro.core.mincost import minimum_attack_cost
from repro.core.spec import AttackGoal, AttackSpec
from repro.core.synthesis import SynthesisSettings, synthesize_architecture
from repro.core.verification import verify_attack
from repro.grid.cases import ieee14
from repro.monitor import (
    MonitorConfig,
    MonitorEngine,
    ReverifyConfig,
    resolve_scenario,
)
from repro.runtime.executor import clear_session_registry, session_registry_stats
from repro.runtime.serialize import attack_to_payload

TICKS = 80


def run_monitor(scenario_name, ticks=TICKS, seed=7, **reverify_kwargs):
    # a fresh run means a fresh process in production; clearing the
    # warm-session registry models that, and is what makes replay
    # bit-identical (a reused incremental solver may return a different
    # attack witness, changing the binary-search probe count)
    clear_session_registry()
    grid = ieee14()
    scenario = resolve_scenario(scenario_name, grid, ticks=ticks)
    config = MonitorConfig(
        ticks=ticks, seed=seed, reverify=ReverifyConfig(**reverify_kwargs)
    )
    engine = MonitorEngine(grid, scenario, config)
    return engine, engine.run()


class TestReplayDeterminism:
    def test_same_seed_identical_stream_and_incidents(self):
        _, first = run_monitor("telemetry_spoof")
        _, second = run_monitor("telemetry_spoof")
        assert first.stream_digest == second.stream_digest
        assert first.incident_signatures() == second.incident_signatures()
        assert first.incidents  # the comparison must not be vacuous

    def test_line_outage_replay(self):
        _, first = run_monitor("line_outage")
        _, second = run_monitor("line_outage")
        assert first.stream_digest == second.stream_digest
        assert first.incident_signatures() == second.incident_signatures()
        assert first.incidents

    def test_signatures_exclude_volatile_fields(self):
        _, report = run_monitor("telemetry_spoof")
        for signature in report.incident_signatures():
            assert "created_at" not in signature
            assert "trace_id" not in signature


class TestBatchEquivalence:
    """The live verdict is the batch verdict, bit for bit."""

    @pytest.fixture(scope="class")
    def spoof_incident(self):
        _, report = run_monitor("telemetry_spoof")
        incidents = [i for i in report.incidents if i.kind == "state_drift"]
        assert incidents
        return incidents[0]

    def test_verification_matches_batch_verify(self, spoof_incident):
        verdict = spoof_incident.verification
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.states(*verdict["suspected_buses"]),
        )
        batch = verify_attack(spec, backend="smt")
        assert verdict["outcome"] == batch.outcome.value
        assert verdict["attack"] == attack_to_payload(batch.attack)

    def test_min_cost_matches_batch_mincost(self, spoof_incident):
        verdict = spoof_incident.verification
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.states(*verdict["suspected_buses"]),
        )
        batch = minimum_attack_cost(spec, dimension="measurements", backend="smt")
        assert verdict["min_cost"] == batch.cost
        # probe count is a search metric, not part of the verdict: the
        # live search runs on a warm session whose unconstrained witness
        # can differ from a cold solver's, shifting the bisection bounds
        assert verdict["probes"] >= 1

    def test_countermeasure_matches_batch_synthesize(self, spoof_incident):
        assert spoof_incident.severity == "critical"
        countermeasure = spoof_incident.countermeasure
        assert countermeasure is not None
        verdict = spoof_incident.verification
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.states(*verdict["suspected_buses"]),
        )
        batch = synthesize_architecture(
            spec, SynthesisSettings(max_secured_buses=countermeasure["budget"])
        )
        assert countermeasure["feasible"] == batch.feasible
        assert countermeasure["secured_buses"] == batch.architecture
        assert countermeasure["iterations"] == batch.iterations


class TestTopologyShift:
    def test_outage_triggers_post_outage_reverification(self):
        engine, report = run_monitor("line_outage")
        shifts = [i for i in report.incidents if i.kind == "vulnerability_shift"]
        assert len(shifts) == 1
        verdict = shifts[0].verification
        assert verdict["check"] == "topology_shift"
        assert verdict["baseline_cost"] == report.baseline_cost
        assert verdict["min_cost"] is not None
        assert set(verdict["in_service_lines"]) < set(
            range(1, ieee14().num_lines + 1)
        )
        # warm sessions answered the cost searches: the registry saw
        # one encode per topology family and probe reuse on each
        stats = session_registry_stats()
        assert stats["opened"] >= 2  # full topology + post-outage family
        assert stats["reused"] > 0

    def test_post_outage_cost_matches_batch_on_restricted_grid(self):
        engine, report = run_monitor("line_outage")
        shift = next(
            i for i in report.incidents if i.kind == "vulnerability_shift"
        )
        verdict = shift.verification
        restricted = ieee14().restrict(verdict["in_service_lines"])
        batch = minimum_attack_cost(
            AttackSpec.default(restricted, goal=AttackGoal.any()),
            dimension="measurements",
            backend="smt",
        )
        assert verdict["min_cost"] == batch.cost


class TestIncidentAssembly:
    def test_persistent_spoof_collapses_to_one_incident(self):
        engine, report = run_monitor("telemetry_spoof")
        drift = [i for i in report.incidents if i.kind == "state_drift"]
        assert len(drift) == 1
        assert engine.counters["deduped"] > 0

    def test_noise_burst_yields_bad_data_incident_without_bridge(self):
        _, report = run_monitor("noise_burst")
        bad = [i for i in report.incidents if i.kind == "bad_data"]
        assert bad
        assert bad[0].severity == "minor"
        assert bad[0].verification is None
        assert bad[0].countermeasure is None

    def test_nominal_run_is_quiet(self):
        _, report = run_monitor("nominal")
        assert report.incidents == []

    def test_incident_ids_are_deterministic_and_unique(self):
        _, report = run_monitor("line_outage")
        ids = [incident.id for incident in report.incidents]
        assert len(ids) == len(set(ids))
        for incident in report.incidents:
            assert incident.id == f"{incident.kind}-{incident.tick:05d}-00"

    def test_sink_receives_every_incident(self, tmp_path):
        import json

        from repro.monitor import IncidentSink

        grid = ieee14()
        scenario = resolve_scenario("telemetry_spoof", grid, ticks=TICKS)
        sink = IncidentSink(tmp_path / "incidents.jsonl")
        engine = MonitorEngine(
            grid, scenario, MonitorConfig(ticks=TICKS, seed=7), sink=sink
        )
        report = engine.run()
        lines = (tmp_path / "incidents.jsonl").read_text().splitlines()
        assert len(lines) == len(report.incidents)
        payloads = [json.loads(line) for line in lines]
        assert [p["id"] for p in payloads] == [i.id for i in report.incidents]
