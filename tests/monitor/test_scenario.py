"""Scenario timelines: builtins, JSON loading, validation."""

import json

import pytest

from repro.grid.cases import ieee14
from repro.monitor.scenario import (
    BUILTIN_SCENARIOS,
    Scenario,
    ScenarioError,
    ScenarioEvent,
    builtin_scenario,
    load_scenario,
    resolve_scenario,
    validate_scenario,
)


class TestEvents:
    def test_active_window_with_duration(self):
        event = ScenarioEvent(at=10, kind="noise_burst", duration=5)
        assert not event.active_at(9)
        assert event.active_at(10)
        assert event.active_at(14)
        assert not event.active_at(15)

    def test_open_ended_event(self):
        event = ScenarioEvent(at=3, kind="telemetry_spoof")
        assert event.active_at(3)
        assert event.active_at(10_000)
        assert not event.active_at(2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioEvent(at=0, kind="alien_invasion")

    def test_negative_at_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioEvent(at=-1, kind="noise_burst")


class TestBuiltins:
    @pytest.mark.parametrize("name", BUILTIN_SCENARIOS)
    def test_builtin_validates_on_ieee14(self, name):
        grid = ieee14()
        scenario = builtin_scenario(name, grid, ticks=40)
        validate_scenario(scenario, grid)  # must not raise
        assert scenario.name == name

    def test_nominal_has_no_events(self):
        scenario = builtin_scenario("nominal", ieee14(), ticks=40)
        assert scenario.events == ()

    def test_spoof_targets_non_reference_bus(self):
        scenario = builtin_scenario("telemetry_spoof", ieee14(), ticks=40)
        (event,) = scenario.events
        assert event.kind == "telemetry_spoof"
        assert 1 not in event.params["target_states"]

    def test_unknown_builtin(self):
        with pytest.raises(ScenarioError):
            builtin_scenario("nope", ieee14(), ticks=40)


class TestValidation:
    def test_outage_must_keep_grid_connected(self):
        grid = ieee14()
        # bus 8 hangs off bus 7 by a single line: opening it islands bus 8
        bridge = next(
            line.index
            for line in grid.lines
            if grid.degree(line.from_bus) == 1 or grid.degree(line.to_bus) == 1
        )
        scenario = Scenario(
            name="island",
            events=(
                ScenarioEvent(
                    at=5, kind="line_outage", params={"line": bridge}
                ),
            ),
        )
        with pytest.raises(ScenarioError, match="islands"):
            validate_scenario(scenario, grid)

    def test_line_out_of_range(self):
        scenario = Scenario(
            name="bad",
            events=(
                ScenarioEvent(at=0, kind="line_outage", params={"line": 999}),
            ),
        )
        with pytest.raises(ScenarioError):
            validate_scenario(scenario, ieee14())

    def test_spoof_bus_out_of_range(self):
        scenario = Scenario(
            name="bad",
            events=(
                ScenarioEvent(
                    at=0,
                    kind="telemetry_spoof",
                    params={"target_states": [99], "magnitude": 0.1},
                ),
            ),
        )
        with pytest.raises(ScenarioError):
            validate_scenario(scenario, ieee14())


class TestLoading:
    def test_round_trip_from_json_file(self, tmp_path):
        payload = {
            "name": "custom",
            "noise_std": 0.004,
            "events": [
                {"at": 8, "kind": "noise_burst", "duration": 4, "scale": 9.0},
                {
                    "at": 20,
                    "kind": "telemetry_spoof",
                    "target_states": [4],
                    "magnitude": 0.2,
                },
            ],
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(payload))
        scenario = load_scenario(path)
        assert scenario.name == "custom"
        assert scenario.noise_std == 0.004
        assert [e.kind for e in scenario.events] == [
            "noise_burst",
            "telemetry_spoof",
        ]
        assert scenario.events[0].params["scale"] == 9.0

    def test_resolve_builtin_name(self):
        scenario = resolve_scenario("line_outage", ieee14(), ticks=40)
        assert scenario.name == "line_outage"

    def test_resolve_file_path(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"name": "f", "events": []}))
        scenario = resolve_scenario(str(path), ieee14(), ticks=40)
        assert scenario.name == "f"

    def test_resolve_unknown(self):
        with pytest.raises(ScenarioError):
            resolve_scenario("not-a-builtin-or-file", ieee14(), ticks=40)
