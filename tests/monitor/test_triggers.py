"""Detector semantics: who sees what, and who stays silent."""

from repro.estimation.baddata import chi_square_test
from repro.grid.cases import ieee14
from repro.monitor.emulator import MeasurementEmulator
from repro.monitor.scenario import builtin_scenario
from repro.monitor.triggers import (
    ChiSquareTrigger,
    ResidualCusumTrigger,
    StateDriftTrigger,
    TopologyChangeTrigger,
    _Cusum,
)

# long enough that every builtin event onset (ticks // 4) lands after
# the CUSUM calibration window (20 ticks)
TICKS = 80


def run_triggers(scenario_name, *triggers, ticks=TICKS):
    grid = ieee14()
    scenario = builtin_scenario(scenario_name, grid, ticks=ticks)
    emulator = MeasurementEmulator(grid, scenario, seed=7)
    events = {trigger.name: [] for trigger in triggers}
    for tick in emulator.ticks(ticks):
        for trigger in triggers:
            event = trigger.update(tick)
            if event is not None:
                events[trigger.name].append(event)
    return events


def state_buses(grid=None):
    grid = grid or ieee14()
    return tuple(bus for bus in grid.buses if bus != 1)


class TestCusumCore:
    def test_fires_on_sustained_shift_after_warmup(self):
        cusum = _Cusum(drift=0.5, threshold=5.0, warmup=10, cooldown=3)
        for _ in range(10):
            assert cusum.update(1.0) is None  # calibration
        fired = [cusum.update(10.0) for _ in range(10)]
        assert any(v is not None for v in fired)

    def test_cooldown_suppresses_refire(self):
        cusum = _Cusum(drift=0.0, threshold=1.0, warmup=2, cooldown=5)
        cusum.update(0.0)
        cusum.update(0.0)
        cusum.std = 1.0
        fires = [cusum.update(100.0) is not None for _ in range(6)]
        assert fires[0] is True
        assert not any(fires[1:])  # asleep for the cooldown window

    def test_onset_tracking(self):
        cusum = _Cusum(drift=0.5, threshold=3.0, warmup=4, cooldown=2)
        for _ in range(4):
            cusum.update(0.0)
        cusum.std = 1.0
        cusum.update(0.0)  # sample 4: stays at zero
        cusum.update(2.0)  # sample 5: excursion starts
        fired = cusum.update(2.5)  # sample 6: fires
        assert fired is not None
        assert cusum.last_onset == 5

    def test_reset_forgets_everything(self):
        cusum = _Cusum(drift=0.5, threshold=3.0, warmup=2, cooldown=2)
        cusum.update(1.0)
        cusum.update(1.0)
        cusum.update(50.0)
        cusum.reset()
        assert cusum.seen == 0
        assert cusum.s == 0.0
        assert cusum.samples == []


class TestChiSquare:
    def test_fires_on_noise_burst_not_on_spoof(self):
        events = run_triggers("noise_burst", ChiSquareTrigger())
        assert events["chi_square"], "gross noise must trip the residual test"
        events = run_triggers("telemetry_spoof", ChiSquareTrigger())
        assert not events["chi_square"], "a=Hc is invisible to chi-square"

    def test_rising_edge_only(self):
        """A persistent burst yields far fewer events than burst ticks."""
        grid = ieee14()
        scenario = builtin_scenario("noise_burst", grid, ticks=TICKS)
        burst_ticks = sum(
            1
            for t in range(TICKS)
            if any(e.kind == "noise_burst" for e in scenario.events_at(t))
        )
        events = run_triggers("noise_burst", ChiSquareTrigger())
        assert 1 <= len(events["chi_square"]) < burst_ticks

    def test_evidence_names_suspects(self):
        events = run_triggers("noise_burst", ChiSquareTrigger())
        evidence = events["chi_square"][0].evidence
        assert evidence["suspect_rows"]
        assert len(evidence["suspect_rows"]) == len(evidence["suspect_residuals"])


class TestStateDrift:
    def test_catches_the_stealthy_spoof(self):
        events = run_triggers(
            "telemetry_spoof", StateDriftTrigger(state_buses())
        )
        assert events["state_drift"], "state drift is the UFDI observable"
        first = events["state_drift"][0]
        grid = ieee14()
        scenario = builtin_scenario("telemetry_spoof", grid, ticks=TICKS)
        target = scenario.events[0].params["target_states"][0]
        assert target in first.evidence["drifted_buses"]

    def test_silent_on_nominal(self):
        events = run_triggers("nominal", StateDriftTrigger(state_buses()))
        assert not events["state_drift"]


class TestResidualCusum:
    def test_silent_on_spoof(self):
        events = run_triggers("telemetry_spoof", ResidualCusumTrigger())
        assert not events["residual_cusum"]


class TestTopologyChange:
    def test_fires_once_with_line_evidence(self):
        events = run_triggers("line_outage", TopologyChangeTrigger())
        assert len(events["topology_change"]) == 1
        evidence = events["topology_change"][0].evidence
        grid = ieee14()
        scenario = builtin_scenario("line_outage", grid, ticks=TICKS)
        assert evidence["opened_lines"] == [scenario.events[0].params["line"]]
        assert evidence["closed_lines"] == []

    def test_silent_on_nominal(self):
        events = run_triggers("nominal", TopologyChangeTrigger())
        assert not events["topology_change"]
