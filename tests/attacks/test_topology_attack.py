"""Tests for numerically coordinated topology-poisoning attacks."""

import numpy as np
import pytest

from repro.attacks.topology_attack import coordinated_topology_attack
from repro.estimation.baddata import chi_square_test
from repro.estimation.measurement import MeasurementPlan, build_h, build_measurements
from repro.estimation.wls import wls_estimate
from repro.grid.cases import ieee14
from repro.grid.dcflow import solve_dc_flow
from repro.grid.topology import BreakerStatus, TopologyProcessor

NOISE = 0.004


def loaded_case():
    grid = ieee14()
    plan = MeasurementPlan(grid)
    injections = np.zeros(grid.num_buses)
    injections[0] = 1.5
    injections[12] = -1.0
    injections[13] = -0.5
    flow = solve_dc_flow(grid, injections)
    z = build_measurements(plan, flow, noise_std=NOISE, seed=8)
    w = np.full(len(z), 1 / NOISE**2)
    return grid, plan, flow, z, w


class TestExclusionAttack:
    def test_vector_metadata(self):
        grid, plan, flow, z, w = loaded_case()
        proc = TopologyProcessor(grid)
        poisoned = proc.apply_poisoning(exclusions=[13])
        attack = coordinated_topology_attack(plan, flow, poisoned, {12: 0.05})
        assert attack.excluded_lines == frozenset({13})
        assert attack.state_deltas == {12: 0.05}

    def test_excluded_line_measurement_reads_zero(self):
        grid, plan, flow, z_clean, w = loaded_case()
        proc = TopologyProcessor(grid)
        poisoned = proc.apply_poisoning(exclusions=[13])
        attack = coordinated_topology_attack(plan, flow, poisoned)
        z = build_measurements(plan, flow)  # noiseless
        z_attacked = attack.apply_to(z, plan)
        # measurement 13 = forward flow of line 13 must now read 0
        assert z_attacked[12] == pytest.approx(0.0, abs=1e-9)
        assert z_attacked[32] == pytest.approx(0.0, abs=1e-9)

    def test_evades_estimator_under_poisoned_topology(self):
        grid, plan, flow, z, w = loaded_case()
        proc = TopologyProcessor(grid)
        poisoned = proc.apply_poisoning(exclusions=[13])
        attack = coordinated_topology_attack(plan, flow, poisoned, {12: 0.05})
        h_pois = build_h(
            grid, 1, plan.taken_in_order(), mapped_lines=poisoned.mapped_lines
        )
        est = wls_estimate(h_pois, attack.apply_to(z, plan), w)
        assert not chi_square_test(est).bad_data_detected

    def test_pure_topology_attack_without_state_change(self):
        grid, plan, flow, z, w = loaded_case()
        proc = TopologyProcessor(grid)
        poisoned = proc.apply_poisoning(exclusions=[13])
        attack = coordinated_topology_attack(plan, flow, poisoned)
        assert attack.state_deltas == {}
        h_pois = build_h(
            grid, 1, plan.taken_in_order(), mapped_lines=poisoned.mapped_lines
        )
        est = wls_estimate(h_pois, attack.apply_to(z, plan), w)
        assert not chi_square_test(est).bad_data_detected

    def test_reference_target_rejected(self):
        grid, plan, flow, z, w = loaded_case()
        proc = TopologyProcessor(grid)
        poisoned = proc.apply_poisoning(exclusions=[13])
        with pytest.raises(ValueError, match="reference"):
            coordinated_topology_attack(plan, flow, poisoned, {1: 0.1})


class TestInclusionAttack:
    def test_phantom_line_shows_flow(self):
        grid = ieee14()
        plan = MeasurementPlan(grid)
        statuses = [
            BreakerStatus(line.index, closed=line.index != 5)
            for line in grid.lines
        ]
        proc = TopologyProcessor(grid, statuses)
        true_lines = proc.true_topology().mapped_lines
        injections = np.zeros(grid.num_buses)
        injections[0] = 1.0
        injections[8] = -1.0
        flow = solve_dc_flow(grid, injections, line_indices=true_lines)
        poisoned = proc.apply_poisoning(inclusions=[5])
        attack = coordinated_topology_attack(
            plan, flow, poisoned, true_mapped_lines=true_lines
        )
        z = build_measurements(plan, flow)
        z_attacked = attack.apply_to(z, plan)
        # the phantom line 5 (2-5) must now show a nonzero flow
        assert abs(z_attacked[4]) > 1e-6
        assert 5 in attack.included_lines
