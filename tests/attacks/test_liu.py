"""Tests for the algebraic (Liu et al.) attack constructions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.liu import perfect_knowledge_attack, restricted_access_attack
from repro.estimation.measurement import MeasurementPlan, build_h, build_measurements
from repro.estimation.wls import wls_estimate
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow


def estimator_setup(plan):
    grid = plan.grid
    flow = solve_dc_flow(grid, nominal_injections(grid))
    z = build_measurements(plan, flow, noise_std=0.01, seed=4)
    h = build_h(grid, 1, plan.taken_in_order())
    return z, h


class TestPerfectKnowledge:
    def test_residual_unchanged(self):
        plan = MeasurementPlan(ieee14())
        z, h = estimator_setup(plan)
        attack = perfect_knowledge_attack(plan, {10: 0.1, 12: -0.05})
        base = wls_estimate(h, z)
        attacked = wls_estimate(h, attack.apply_to(z, plan))
        assert attacked.objective == pytest.approx(base.objective, abs=1e-8)

    def test_states_shift_exactly(self):
        plan = MeasurementPlan(ieee14())
        z, h = estimator_setup(plan)
        attack = perfect_knowledge_attack(plan, {10: 0.1})
        base = wls_estimate(h, z)
        attacked = wls_estimate(h, attack.apply_to(z, plan))
        shift = attacked.x_hat - base.x_hat
        assert shift[8] == pytest.approx(0.1, abs=1e-9)  # bus 10 is column 8
        assert np.linalg.norm(np.delete(shift, 8)) < 1e-9

    def test_footprint_is_local(self):
        plan = MeasurementPlan(ieee14())
        attack = perfect_knowledge_attack(plan, {8: 0.1})
        # bus 8 hangs off bus 7 by line 14 only: the attack touches
        # line 14's flows and the two endpoint injections
        assert set(attack.altered_measurements) == {14, 34, 47, 48}

    def test_reference_bus_rejected(self):
        plan = MeasurementPlan(ieee14())
        with pytest.raises(ValueError, match="reference"):
            perfect_knowledge_attack(plan, {1: 0.1})

    def test_unknown_bus_rejected(self):
        plan = MeasurementPlan(ieee14())
        with pytest.raises(ValueError, match="unknown bus"):
            perfect_knowledge_attack(plan, {99: 0.1})

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 14), st.floats(0.01, 1.0))
    def test_hypothesis_any_target_is_stealthy(self, bus, delta):
        plan = MeasurementPlan(ieee14())
        z, h = estimator_setup(plan)
        attack = perfect_knowledge_attack(plan, {bus: delta})
        base = wls_estimate(h, z)
        attacked = wls_estimate(h, attack.apply_to(z, plan))
        assert attacked.objective == pytest.approx(base.objective, abs=1e-6)


class TestRestrictedAccess:
    def test_no_protection_always_finds_attack(self):
        plan = MeasurementPlan(ieee14())
        attack = restricted_access_attack(plan)
        assert attack is not None
        assert attack.attacked_states

    def test_avoids_protected_measurements(self):
        plan = MeasurementPlan(ieee14(), secured={1, 2, 41}, inaccessible={3})
        attack = restricted_access_attack(plan)
        assert attack is not None
        assert not set(attack.altered_measurements) & {1, 2, 3, 41}

    def test_attack_is_stealthy(self):
        plan = MeasurementPlan(ieee14(), secured={1, 2, 41})
        z, h = estimator_setup(plan)
        attack = restricted_access_attack(plan)
        base = wls_estimate(h, z)
        attacked = wls_estimate(h, attack.apply_to(z, plan))
        assert attacked.objective == pytest.approx(base.objective, abs=1e-6)

    def test_full_rank_protection_blocks_everything(self):
        from repro.estimation.observability import basic_measurement_set

        grid = ieee14()
        plan = MeasurementPlan(grid)
        basic = basic_measurement_set(plan)
        protected = MeasurementPlan(grid, secured=set(basic))
        assert restricted_access_attack(protected) is None

    def test_desired_projection(self):
        plan = MeasurementPlan(ieee14(), secured={1})
        attack = restricted_access_attack(plan, desired={10: 0.1})
        assert attack is not None
        # projection keeps a bus-10 component
        assert attack.state_deltas.get(10, 0.0) != 0.0

    def test_desired_orthogonal_to_nullspace_returns_none(self):
        from repro.estimation.observability import basic_measurement_set

        grid = ieee14()
        plan = MeasurementPlan(grid)
        basic = basic_measurement_set(plan)
        protected = MeasurementPlan(grid, secured=set(basic))
        assert restricted_access_attack(protected, desired={10: 0.1}) is None
