"""Tests for AC-aware stealthy attack construction."""

import numpy as np
import pytest
from scipy import stats

from repro.attacks.ac_attack import ac_perfect_attack
from repro.attacks.liu import perfect_knowledge_attack
from repro.estimation.ac import AcSystem, dc_attack_residual_inflation
from repro.estimation.measurement import MeasurementPlan
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections

NOISE = 0.005


@pytest.fixture(scope="module")
def setting():
    grid = ieee14()
    system = AcSystem(grid)
    plan = MeasurementPlan(grid)
    inj = nominal_injections(grid, magnitude=0.5)
    flow = system.solve_power_flow(inj, 0.2 * inj)
    return system, plan, flow


def attacked_objective(system, plan, flow, attack, seed=0):
    rng = np.random.default_rng(seed)
    z = system.measurement_vector(plan, flow.v, flow.theta)
    z = z + rng.normal(0, NOISE, size=z.shape)
    w = np.full(len(z), 1 / NOISE**2)
    est = system.estimate_state(plan, attack.apply_to(z), w)
    return est


class TestAcPerfectAttack:
    def test_exactly_stealthy_at_large_magnitude(self, setting):
        system, plan, flow = setting
        attack = ac_perfect_attack(system, plan, flow, angle_deltas={10: 0.3})
        est = attacked_objective(system, plan, flow, attack)
        dof = 122 - 27
        threshold = stats.chi2.ppf(0.99, dof)
        assert est.objective < threshold  # exact stealth, any magnitude

    def test_estimated_state_shifts_exactly(self, setting):
        system, plan, flow = setting
        attack = ac_perfect_attack(system, plan, flow, angle_deltas={10: 0.3})
        est = attacked_objective(system, plan, flow, attack)
        shift = est.theta[9] - flow.theta[9]
        assert shift == pytest.approx(0.3, abs=2e-3)

    def test_voltage_target(self, setting):
        system, plan, flow = setting
        attack = ac_perfect_attack(system, plan, flow, voltage_deltas={5: 0.02})
        est = attacked_objective(system, plan, flow, attack)
        assert est.v[4] - flow.v[4] == pytest.approx(0.02, abs=2e-3)

    def test_beats_dc_attack_at_same_magnitude(self, setting):
        system, plan, flow = setting
        magnitude = 0.2
        dc_attack = perfect_knowledge_attack(plan, {10: magnitude})
        __, dc_objective = dc_attack_residual_inflation(
            system, plan, flow, dc_attack
        )
        ac_attack = ac_perfect_attack(
            system, plan, flow, angle_deltas={10: magnitude}
        )
        ac_objective = attacked_objective(system, plan, flow, ac_attack).objective
        assert ac_objective < dc_objective / 10  # orders of magnitude cleaner

    def test_touches_reactive_and_voltage_channels(self, setting):
        # AC stealth costs more access: Q measurements (and possibly V)
        # must also be altered — the defense-relevant difference
        system, plan, flow = setting
        attack = ac_perfect_attack(system, plan, flow, angle_deltas={10: 0.1})
        positions = attack.altered_positions()
        num_p = len(plan.taken)
        assert any(p >= num_p for p in positions)  # beyond the P block

    def test_dc_projection_shape(self, setting):
        system, plan, flow = setting
        attack = ac_perfect_attack(system, plan, flow, angle_deltas={10: 0.1})
        dc_view = attack.dc_projection()
        assert dc_view.state_deltas == {10: 0.1}
        # the P-block footprint resembles the DC attack's local support
        dc_attack = perfect_knowledge_attack(plan, {10: 0.1})
        assert set(dc_attack.altered_measurements) <= set(
            dc_view.altered_measurements
        )

    def test_shape_mismatch_rejected(self, setting):
        system, plan, flow = setting
        attack = ac_perfect_attack(system, plan, flow, angle_deltas={10: 0.1})
        with pytest.raises(ValueError, match="shape"):
            attack.apply_to(np.zeros(3))
