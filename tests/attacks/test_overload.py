"""Tests for consequence-driven (flow-shift) attacks."""

import numpy as np
import pytest

from repro.attacks.overload import (
    fake_congestion_attack,
    flow_shift_attack,
    overload_masking_attack,
)
from repro.estimation.baddata import chi_square_test
from repro.estimation.measurement import MeasurementPlan, build_h, build_measurements
from repro.estimation.observability import basic_measurement_set
from repro.estimation.wls import wls_estimate
from repro.grid.cases import ieee14
from repro.grid.dcflow import nominal_injections, solve_dc_flow

NOISE = 0.005


def estimated_flow(plan, z, line_index, reference_bus=1, weights=None):
    grid = plan.grid
    h = build_h(grid, reference_bus, taken=plan.taken_in_order())
    est = wls_estimate(h, z, weights)
    line = grid.line(line_index)
    columns = [j for j in grid.buses if j != reference_bus]
    theta = {bus: est.x_hat[k] for k, bus in enumerate(columns)}
    theta[reference_bus] = 0.0
    return line.admittance * (theta[line.from_bus] - theta[line.to_bus]), est


@pytest.fixture
def setting():
    grid = ieee14()
    plan = MeasurementPlan(grid)
    flow = solve_dc_flow(grid, nominal_injections(grid))
    z = build_measurements(plan, flow, noise_std=NOISE, seed=9)
    w = np.full(len(z), 1 / NOISE**2)
    return grid, plan, flow, z, w


class TestFlowShift:
    def test_shift_achieved_and_stealthy(self, setting):
        grid, plan, flow, z, w = setting
        target_line = 7  # 4-5
        attack = flow_shift_attack(plan, target_line, -0.3)
        assert attack is not None
        base_flow, base_est = estimated_flow(plan, z, target_line, weights=w)
        new_flow, new_est = estimated_flow(
            plan, attack.apply_to(z, plan), target_line, weights=w
        )
        assert new_flow - base_flow == pytest.approx(-0.3, abs=1e-6)
        assert new_est.objective == pytest.approx(base_est.objective, abs=1e-5)
        assert not chi_square_test(new_est).bad_data_detected

    def test_respects_protection(self, setting):
        grid, plan, flow, z, w = setting
        protected = plan.with_secured_measurements({7, 27, 44, 45})
        attack = flow_shift_attack(protected, 7, -0.3)
        if attack is not None:
            assert not set(attack.altered_measurements) & {7, 27, 44, 45}

    def test_fully_protected_returns_none(self, setting):
        grid, plan, flow, z, w = setting
        basic = basic_measurement_set(plan)
        protected = plan.with_secured_measurements(basic)
        assert flow_shift_attack(protected, 7, -0.3) is None

    def test_zero_desired_shift_is_trivial(self, setting):
        grid, plan, flow, z, w = setting
        attack = flow_shift_attack(plan, 7, 0.0)
        assert attack is not None
        assert attack.altered_measurements == []


class TestOverloadMasking:
    def test_masks_overload(self, setting):
        grid, plan, flow, z, w = setting
        line = 7
        true_flow = flow.flow(line)
        rating = abs(true_flow) * 0.8  # the line is 25% over its rating
        attack = overload_masking_attack(plan, flow, line, rating)
        assert attack is not None
        new_flow, est = estimated_flow(
            plan, attack.apply_to(z, plan), line, weights=w
        )
        assert abs(new_flow) < rating  # operator sees a safe line
        assert not chi_square_test(est).bad_data_detected

    def test_healthy_line_needs_no_masking(self, setting):
        grid, plan, flow, z, w = setting
        line = 7
        rating = abs(flow.flow(line)) * 2.0
        assert overload_masking_attack(plan, flow, line, rating) is None


class TestFakeCongestion:
    def test_fakes_overload(self, setting):
        grid, plan, flow, z, w = setting
        line = 7
        true_flow = flow.flow(line)
        rating = abs(true_flow) * 1.5  # healthy
        attack = fake_congestion_attack(plan, flow, line, rating)
        assert attack is not None
        new_flow, est = estimated_flow(
            plan, attack.apply_to(z, plan), line, weights=w
        )
        assert abs(new_flow) > rating  # operator sees congestion
        assert not chi_square_test(est).bad_data_detected

    def test_congested_line_needs_no_faking(self, setting):
        grid, plan, flow, z, w = setting
        line = 7
        rating = abs(flow.flow(line)) * 0.5
        assert fake_congestion_attack(plan, flow, line, rating) is None
