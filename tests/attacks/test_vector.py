"""Tests for the AttackVector exchange format."""

import numpy as np
import pytest

from repro.attacks.vector import AttackVector
from repro.estimation.measurement import MeasurementPlan
from repro.grid.cases import ieee14


@pytest.fixture
def plan():
    return MeasurementPlan(ieee14())


class TestProperties:
    def test_altered_sorted_and_nonzero_only(self):
        attack = AttackVector({5: 1.0, 3: -2.0, 9: 0.0})
        assert attack.altered_measurements == [3, 5]

    def test_attacked_states(self):
        attack = AttackVector(state_deltas={4: 0.1, 2: 0.0})
        assert attack.attacked_states == [4]

    def test_compromised_buses_use_residency(self, plan):
        # measurement 8 (line 8 fwd) resides at bus 4; 28 (bwd) at bus 7
        attack = AttackVector({8: 1.0, 28: -1.0})
        assert attack.compromised_buses(plan) == [4, 7]

    def test_topology_flags(self):
        attack = AttackVector(excluded_lines=frozenset({13}))
        assert attack.uses_topology_poisoning
        assert not AttackVector({1: 1.0}).uses_topology_poisoning

    def test_scaled(self, plan):
        attack = AttackVector({1: 2.0}, {2: 0.5})
        half = attack.scaled(0.5)
        assert half.measurement_deltas[1] == 1.0
        assert half.state_deltas[2] == 0.25


class TestApply:
    def test_injects_at_plan_positions(self, plan):
        z = np.zeros(54)
        attack = AttackVector({1: 1.5, 54: -2.0})
        out = attack.apply_to(z, plan)
        assert out[0] == 1.5
        assert out[-1] == -2.0
        assert z[0] == 0.0  # original untouched

    def test_subset_plan_positions(self):
        grid = ieee14()
        plan = MeasurementPlan(grid, taken={3, 10, 41})
        z = np.zeros(3)
        out = AttackVector({10: 1.0}).apply_to(z, plan)
        assert list(out) == [0.0, 1.0, 0.0]

    def test_untaken_measurement_rejected(self):
        grid = ieee14()
        plan = MeasurementPlan(grid, taken={1, 2})
        with pytest.raises(ValueError, match="untaken"):
            AttackVector({5: 1.0}).apply_to(np.zeros(2), plan)

    def test_secured_measurement_rejected(self):
        grid = ieee14()
        plan = MeasurementPlan(grid, secured={5})
        with pytest.raises(ValueError, match="secured"):
            AttackVector({5: 1.0}).apply_to(np.zeros(54), plan)

    def test_shape_mismatch_rejected(self, plan):
        with pytest.raises(ValueError, match="shape"):
            AttackVector({1: 1.0}).apply_to(np.zeros(10), plan)


class TestSummary:
    def test_summary_mentions_everything(self, plan):
        attack = AttackVector(
            {1: 1.0},
            {2: 0.1},
            excluded_lines=frozenset({13}),
            included_lines=frozenset({5}),
        )
        text = attack.summary(plan)
        assert "[1]" in text
        assert "excluded lines: [13]" in text
        assert "included lines: [5]" in text
