"""Tests for the MATPOWER case-file parser and writer."""

import pytest

from repro.grid.cases import ieee14
from repro.grid.matpower import (
    MatpowerParseError,
    load_case_file,
    parse_case,
    write_case_file,
)

SAMPLE = """
function mpc = case3
mpc.version = '2';
mpc.baseMVA = 100;

%% bus data
mpc.bus = [
\t1\t3\t0\t0\t0\t0\t1\t1.06\t0\t0\t1\t1.06\t0.94;
\t2\t2\t21.7\t12.7\t0\t0\t1\t1.045\t-4.98\t0\t1\t1.06\t0.94;
\t5\t1\t7.6\t1.6\t0\t0\t1\t1.01\t-8.78\t0\t1\t1.06\t0.94;
];

mpc.branch = [
\t1\t2\t0.01938\t0.05917\t0.0528\t0\t0\t0\t0\t0\t1\t-360\t360;
\t1\t5\t0.05403\t0.22304\t0.0492\t0\t0\t0\t0\t0\t1\t-360\t360;
\t2\t5\t0.05695\t0.17388\t0.0346\t0\t0\t0\t0\t0\t0\t-360\t360; % out of service
];
"""


class TestParse:
    def test_basic_structure(self):
        grid = parse_case(SAMPLE)
        assert grid.num_buses == 3
        assert grid.num_lines == 2  # out-of-service branch dropped

    def test_bus_renumbering(self):
        grid = parse_case(SAMPLE)
        # original bus 5 becomes bus 3
        assert (grid.line(2).from_bus, grid.line(2).to_bus) == (1, 3)

    def test_reactance_to_admittance(self):
        grid = parse_case(SAMPLE)
        assert grid.line(1).admittance == pytest.approx(1 / 0.05917)

    def test_comments_ignored(self):
        grid = parse_case(SAMPLE)
        assert grid.num_lines == 2

    def test_missing_matrices_rejected(self):
        with pytest.raises(MatpowerParseError, match="lacks"):
            parse_case("function mpc = nothing")

    def test_duplicate_buses_rejected(self):
        bad = SAMPLE.replace("\t2\t2\t21.7", "\t1\t2\t21.7", 1)
        with pytest.raises(MatpowerParseError, match="duplicate"):
            parse_case(bad)

    def test_unknown_bus_in_branch_rejected(self):
        bad = SAMPLE.replace("\t1\t5\t0.05403", "\t1\t9\t0.05403")
        with pytest.raises(MatpowerParseError, match="unknown bus"):
            parse_case(bad)

    def test_malformed_row_rejected(self):
        bad = SAMPLE.replace("0.05917", "abc")
        with pytest.raises(MatpowerParseError, match="bad matrix row"):
            parse_case(bad)

    def test_zero_reactance_replaced(self):
        text = SAMPLE.replace("0.05917", "0.0")
        grid = parse_case(text)
        assert grid.line(1).reactance == pytest.approx(1e-4)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        original = ieee14()
        path = tmp_path / "case14.m"
        write_case_file(original, path)
        loaded = load_case_file(path)
        assert loaded.num_buses == original.num_buses
        assert loaded.num_lines == original.num_lines
        for a, b in zip(original.lines, loaded.lines):
            assert (a.from_bus, a.to_bus) == (b.from_bus, b.to_bus)
            assert a.admittance == pytest.approx(b.admittance, rel=1e-4)
