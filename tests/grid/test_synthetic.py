"""Tests for the deterministic synthetic grid generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.synthetic import generate_grid


class TestGenerator:
    def test_exact_size(self):
        g = generate_grid(57, 80, seed=1)
        assert g.num_buses == 57
        assert g.num_lines == 80

    def test_connected(self):
        assert generate_grid(100, 140, seed=2).is_connected()

    def test_deterministic_per_seed(self):
        a = generate_grid(40, 55, seed=9)
        b = generate_grid(40, 55, seed=9)
        assert [(l.from_bus, l.to_bus, l.admittance) for l in a.lines] == [
            (l.from_bus, l.to_bus, l.admittance) for l in b.lines
        ]

    def test_different_seeds_differ(self):
        a = generate_grid(40, 55, seed=1)
        b = generate_grid(40, 55, seed=2)
        assert [(l.from_bus, l.to_bus) for l in a.lines] != [
            (l.from_bus, l.to_bus) for l in b.lines
        ]

    def test_no_duplicate_edges(self):
        g = generate_grid(80, 112, seed=3)
        seen = set()
        for line in g.lines:
            key = (min(line.from_bus, line.to_bus), max(line.from_bus, line.to_bus))
            assert key not in seen
            seen.add(key)

    def test_reactance_range(self):
        g = generate_grid(30, 42, seed=4, min_reactance=0.1, max_reactance=0.2)
        for line in g.lines:
            assert 0.1 <= line.reactance <= 0.2 + 1e-9

    def test_tree_only(self):
        g = generate_grid(10, 9, seed=5)
        assert g.is_connected()
        assert g.num_lines == 9

    def test_too_few_lines_rejected(self):
        with pytest.raises(ValueError, match="spanning tree"):
            generate_grid(10, 8)

    def test_too_many_lines_rejected(self):
        # 4 buses admit at most C(4,2) = 6 simple edges; asking for more
        # must fail fast instead of looping (regression test)
        with pytest.raises(ValueError, match="capacity"):
            generate_grid(4, 7)

    def test_complete_graph_is_reachable(self):
        g = generate_grid(4, 6, seed=1)
        assert g.num_lines == 6


@settings(max_examples=20, deadline=None)
@given(
    st.integers(5, 80).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.integers(n - 1, min(2 * n, n * (n - 1) // 2)),
            st.integers(0, 1000),
        )
    )
)
def test_hypothesis_always_connected_and_sized(params):
    n, m, seed = params
    g = generate_grid(n, m, seed=seed)
    assert g.num_buses == n
    assert g.num_lines == m
    assert g.is_connected()
