"""Tests for the topology processor and poisoning rules."""

import pytest

from repro.grid.cases import ieee14
from repro.grid.model import Grid, Line
from repro.grid.topology import (
    BreakerStatus,
    TopologyAttackError,
    TopologyProcessor,
)


def processor_with(line_overrides):
    grid = ieee14()
    statuses = []
    for line in grid.lines:
        kwargs = line_overrides.get(line.index, {})
        statuses.append(BreakerStatus(line.index, **kwargs))
    return TopologyProcessor(grid, statuses)


class TestBreakerStatus:
    def test_fixed_open_is_invalid(self):
        with pytest.raises(ValueError, match="must be closed"):
            BreakerStatus(1, closed=False, fixed=True)

    def test_defaults(self):
        s = BreakerStatus(3)
        assert s.closed and not s.fixed and not s.secured


class TestTrueTopology:
    def test_all_closed_by_default(self):
        proc = TopologyProcessor(ieee14())
        snap = proc.true_topology()
        assert snap.mapped_lines == frozenset(range(1, 21))
        assert not snap.poisoned
        assert snap.is_connected()

    def test_open_lines_excluded_from_mapping(self):
        proc = processor_with({5: dict(closed=False)})
        snap = proc.true_topology()
        assert 5 not in snap.mapped_lines
        assert snap.is_mapped(4)

    def test_duplicate_status_rejected(self):
        grid = ieee14()
        with pytest.raises(ValueError, match="duplicate"):
            TopologyProcessor(grid, [BreakerStatus(1), BreakerStatus(1)])

    def test_unknown_line_rejected(self):
        with pytest.raises(ValueError, match="unknown line"):
            TopologyProcessor(ieee14(), [BreakerStatus(99)])


class TestPoisoningRules:
    def test_exclusion_of_plain_line(self):
        proc = processor_with({})
        snap = proc.apply_poisoning(exclusions=[13])
        assert 13 not in snap.mapped_lines
        assert snap.excluded_lines == frozenset({13})
        assert snap.poisoned

    def test_exclusion_of_fixed_line_rejected(self):
        proc = processor_with({13: dict(fixed=True)})
        with pytest.raises(TopologyAttackError, match="fixed"):
            proc.apply_poisoning(exclusions=[13])

    def test_exclusion_of_secured_status_rejected(self):
        proc = processor_with({13: dict(secured=True)})
        with pytest.raises(TopologyAttackError, match="secured"):
            proc.apply_poisoning(exclusions=[13])

    def test_exclusion_of_open_line_rejected(self):
        proc = processor_with({13: dict(closed=False)})
        with pytest.raises(TopologyAttackError, match="open"):
            proc.apply_poisoning(exclusions=[13])

    def test_inclusion_of_open_line(self):
        proc = processor_with({5: dict(closed=False)})
        snap = proc.apply_poisoning(inclusions=[5])
        assert 5 in snap.mapped_lines
        assert snap.included_lines == frozenset({5})

    def test_inclusion_of_closed_line_rejected(self):
        proc = processor_with({})
        with pytest.raises(TopologyAttackError, match="closed"):
            proc.apply_poisoning(inclusions=[5])

    def test_inclusion_of_secured_open_line_rejected(self):
        proc = processor_with({5: dict(closed=False, secured=True)})
        with pytest.raises(TopologyAttackError, match="secured"):
            proc.apply_poisoning(inclusions=[5])

    def test_exclude_and_include_same_line_rejected(self):
        proc = processor_with({})
        with pytest.raises(TopologyAttackError, match="both"):
            proc.apply_poisoning(exclusions=[5], inclusions=[5])


class TestSnapshot:
    def test_effective_grid_renumbered(self):
        proc = processor_with({})
        snap = proc.apply_poisoning(exclusions=[1])
        eff = snap.effective_grid()
        assert eff.num_lines == 19
        assert eff.num_buses == 14

    def test_islands_after_cut(self):
        # removing both lines at bus 8's only connection isolates it
        grid = Grid(
            3,
            [Line(1, 1, 2, 1.0), Line(2, 2, 3, 1.0)],
        )
        proc = TopologyProcessor(grid)
        snap = proc.apply_poisoning(exclusions=[2])
        islands = snap.islands()
        assert sorted(map(sorted, islands)) == [[1, 2], [3]]
        assert not snap.is_connected()
