"""Tests for PTDF/LODF sensitivity factors."""

import numpy as np
import pytest

from repro.grid.cases import ieee14, ieee30
from repro.grid.dcflow import nominal_injections, solve_dc_flow
from repro.grid.model import Grid, Line
from repro.grid.sensitivities import (
    lodf_matrix,
    post_outage_flows,
    ptdf_matrix,
)


class TestPtdf:
    def test_reference_column_zero(self):
        grid = ieee14()
        ptdf = ptdf_matrix(grid, reference_bus=1)
        assert np.allclose(ptdf[:, 0], 0.0)

    def test_injection_superposition_matches_power_flow(self):
        grid = ieee14()
        inj = nominal_injections(grid)
        base = solve_dc_flow(grid, inj)
        ptdf = ptdf_matrix(grid)
        # shift 0.1 pu from bus 9 to bus 1 (the reference)
        shifted = inj.copy()
        shifted[8] += 0.1
        shifted[0] -= 0.1
        resolved = solve_dc_flow(grid, shifted)
        predicted = base.line_flows + 0.1 * ptdf[:, 8]
        assert np.allclose(predicted, resolved.line_flows, atol=1e-9)

    def test_radial_line_ptdf_is_unit(self):
        # in a path grid, all power from the end flows over every line
        grid = Grid(3, [Line(1, 1, 2, 5.0), Line(2, 2, 3, 2.0)])
        ptdf = ptdf_matrix(grid, reference_bus=1)
        assert ptdf[0, 2] == pytest.approx(-1.0)  # inject at 3: flows 3->1
        assert ptdf[1, 2] == pytest.approx(-1.0)

    def test_rows_cover_all_lines(self):
        grid = ieee30()
        ptdf = ptdf_matrix(grid)
        assert ptdf.shape == (41, 30)
        assert np.all(np.isfinite(ptdf))


class TestLodf:
    def test_diagonal_minus_one(self):
        grid = ieee14()
        lodf = lodf_matrix(grid)
        for k in range(20):
            if not np.isnan(lodf[k, k]):
                assert lodf[k, k] == pytest.approx(-1.0)

    def test_bridge_lines_are_nan(self):
        grid = ieee14()
        lodf = lodf_matrix(grid)
        # line 14 (7-8) is bus 8's only connection: a bridge
        assert np.all(np.isnan(lodf[:, 13]))

    def test_meshed_lines_finite(self):
        grid = ieee14()
        lodf = lodf_matrix(grid)
        # line 1 (1-2) is part of a mesh
        assert np.all(np.isfinite(lodf[:, 0]))


class TestPostOutageFlows:
    @pytest.mark.parametrize("outage", [1, 5, 7, 13, 16])
    def test_matches_resolved_power_flow(self, outage):
        grid = ieee14()
        inj = nominal_injections(grid)
        base = solve_dc_flow(grid, inj)
        predicted = post_outage_flows(grid, base, outage)
        assert predicted is not None
        lines = [i for i in range(1, 21) if i != outage]
        resolved = solve_dc_flow(grid, inj, line_indices=lines)
        assert np.allclose(predicted, resolved.line_flows, atol=1e-8)

    def test_bridge_outage_returns_none(self):
        grid = ieee14()
        inj = nominal_injections(grid)
        base = solve_dc_flow(grid, inj)
        assert post_outage_flows(grid, base, 14) is None  # islands bus 8

    def test_flow_conservation_after_outage(self):
        grid = ieee30()
        inj = nominal_injections(grid)
        base = solve_dc_flow(grid, inj)
        predicted = post_outage_flows(grid, base, 1)
        assert predicted is not None
        for j in grid.buses:
            net = 0.0
            for line in grid.lines_at(j):
                sign = 1.0 if line.from_bus == j else -1.0
                net += sign * predicted[line.index - 1]
            assert net == pytest.approx(inj[j - 1], abs=1e-7)
