"""Tests for the DC power-flow solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.cases import ieee14, load_case
from repro.grid.dcflow import (
    nominal_injections,
    solve_dc_flow,
    susceptance_matrix,
)
from repro.grid.model import Grid, Line


def two_bus():
    return Grid(2, [Line(1, 1, 2, 5.0)])


class TestTwoBus:
    def test_flow_matches_injection(self):
        g = two_bus()
        result = solve_dc_flow(g, [1.0, -1.0])
        assert result.flow(1) == pytest.approx(1.0)
        assert result.angle(1) == 0.0
        assert result.angle(2) == pytest.approx(-0.2)  # P = y * (t1 - t2)

    def test_consumption_sign(self):
        g = two_bus()
        result = solve_dc_flow(g, [1.0, -1.0])
        assert result.consumption(2) == pytest.approx(1.0)  # bus 2 is a load
        assert result.consumption(1) == pytest.approx(-1.0)


class TestValidation:
    def test_unbalanced_injections_rejected(self):
        with pytest.raises(ValueError, match="balance"):
            solve_dc_flow(two_bus(), [1.0, 0.0])

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            solve_dc_flow(two_bus(), [1.0, -0.5, -0.5])


class TestPhysics:
    def test_power_balance_at_every_bus(self):
        g = ieee14()
        inj = nominal_injections(g)
        result = solve_dc_flow(g, inj)
        for j in g.buses:
            net = 0.0
            for line in g.lines_at(j):
                sign = 1.0 if line.from_bus == j else -1.0
                net += sign * result.flow(line.index)
            assert net == pytest.approx(inj[j - 1], abs=1e-9)

    def test_reference_angle_zero(self):
        g = ieee14()
        result = solve_dc_flow(g, nominal_injections(g), reference_bus=5)
        assert result.angle(5) == 0.0

    def test_flows_scale_linearly(self):
        g = ieee14()
        inj = nominal_injections(g)
        r1 = solve_dc_flow(g, inj)
        r2 = solve_dc_flow(g, 2 * inj)
        assert np.allclose(2 * r1.line_flows, r2.line_flows)

    @pytest.mark.parametrize("name", ["ieee30", "ieee57", "ieee118"])
    def test_larger_cases_solve(self, name):
        g = load_case(name)
        result = solve_dc_flow(g, nominal_injections(g))
        assert np.all(np.isfinite(result.theta))

    def test_restricted_topology_flow(self):
        g = ieee14()
        inj = nominal_injections(g)
        lines = [i for i in range(1, 21) if i != 13]
        result = solve_dc_flow(g, inj, line_indices=lines)
        assert result.flow(13) == 0.0  # open line carries nothing


class TestSusceptance:
    def test_symmetric_and_zero_row_sum(self):
        g = ieee14()
        b = susceptance_matrix(g)
        assert np.allclose(b, b.T)
        assert np.allclose(b.sum(axis=1), 0.0)


class TestNominalInjections:
    def test_balanced(self):
        g = ieee14()
        assert nominal_injections(g).sum() == pytest.approx(0.0, abs=1e-12)

    def test_deterministic(self):
        g = ieee14()
        assert np.array_equal(nominal_injections(g), nominal_injections(g))

    def test_magnitude(self):
        g = ieee14()
        p = nominal_injections(g, magnitude=2.5)
        assert np.abs(p).max() == pytest.approx(2.5)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_hypothesis_random_injections_balance(seed):
    """Flows always balance injections for any balanced profile."""
    g = ieee14()
    rng = np.random.default_rng(seed)
    inj = rng.normal(size=g.num_buses)
    inj -= inj.mean()
    result = solve_dc_flow(g, inj)
    for j in g.buses:
        net = sum(
            (1.0 if line.from_bus == j else -1.0) * result.flow(line.index)
            for line in g.lines_at(j)
        )
        assert net == pytest.approx(inj[j - 1], abs=1e-8)
