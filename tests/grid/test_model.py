"""Unit tests for the bus/branch grid model."""

import pytest

from repro.grid.model import Grid, Line


def tiny_grid():
    """1 -- 2 -- 3 with a 1-3 chord."""
    return Grid(
        3,
        [
            Line.from_reactance(1, 1, 2, 0.1),
            Line.from_reactance(2, 2, 3, 0.2),
            Line.from_reactance(3, 1, 3, 0.25),
        ],
        name="triangle",
    )


class TestLine:
    def test_from_reactance(self):
        line = Line.from_reactance(1, 1, 2, 0.05917)
        assert line.admittance == pytest.approx(16.90, abs=0.005)
        assert line.reactance == pytest.approx(0.05917)

    def test_nonpositive_reactance_rejected(self):
        with pytest.raises(ValueError):
            Line.from_reactance(1, 1, 2, 0.0)
        with pytest.raises(ValueError):
            Line.from_reactance(1, 1, 2, -1.0)

    def test_other_end(self):
        line = Line(1, 4, 7, 1.0)
        assert line.other_end(4) == 7
        assert line.other_end(7) == 4
        with pytest.raises(ValueError):
            line.other_end(5)


class TestGridValidation:
    def test_line_indices_must_be_sequential(self):
        with pytest.raises(ValueError, match="1..l in order"):
            Grid(2, [Line(2, 1, 2, 1.0)])

    def test_bus_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Grid(2, [Line(1, 1, 3, 1.0)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Grid(2, [Line(1, 1, 1, 1.0)])

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            Grid(0, [])


class TestTopologyAccessors:
    def test_counts(self):
        g = tiny_grid()
        assert g.num_buses == 3
        assert g.num_lines == 3
        assert list(g.buses) == [1, 2, 3]

    def test_lines_at(self):
        g = tiny_grid()
        assert {l.index for l in g.lines_at(1)} == {1, 3}
        assert {l.index for l in g.lines_at(2)} == {1, 2}

    def test_lines_from_and_to(self):
        g = tiny_grid()
        assert [l.index for l in g.lines_from(1)] == [1, 3]
        assert [l.index for l in g.lines_to(3)] == [2, 3]
        assert g.lines_from(3) == []

    def test_neighbors(self):
        g = tiny_grid()
        assert g.neighbors(1) == [2, 3]
        assert g.neighbors(2) == [1, 3]

    def test_degree_and_average(self):
        g = tiny_grid()
        assert g.degree(1) == 2
        assert g.average_degree() == pytest.approx(2.0)

    def test_parallel_lines_supported(self):
        g = Grid(2, [Line(1, 1, 2, 1.0), Line(2, 1, 2, 2.0)])
        assert g.degree(1) == 2
        assert g.neighbors(1) == [2]


class TestGraphOperations:
    def test_connected(self):
        assert tiny_grid().is_connected()

    def test_islands_under_restriction(self):
        g = tiny_grid()
        islands = g.islands(line_indices=[1])  # only 1-2 closed
        assert sorted(map(sorted, islands)) == [[1, 2], [3]]

    def test_restrict_renumbers(self):
        g = tiny_grid()
        sub = g.restrict([2, 3])
        assert sub.num_lines == 2
        assert [l.index for l in sub.lines] == [1, 2]
        assert (sub.line(1).from_bus, sub.line(1).to_bus) == (2, 3)

    def test_graph_has_all_nodes(self):
        g = tiny_grid()
        assert set(g.graph(line_indices=[]).nodes) == {1, 2, 3}
