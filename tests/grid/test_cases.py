"""Tests for the test-case registry, including the paper's Table II data."""

import pytest

from repro.grid.cases import available_cases, ieee14, ieee30, load_case

# the admittance column of the paper's Table II, line by line
PAPER_TABLE_II_ADMITTANCES = [
    16.90, 4.48, 5.05, 5.67, 5.75, 5.85, 23.75, 4.78, 1.80, 3.97,
    5.03, 3.91, 7.68, 5.68, 9.09, 11.83, 3.70, 5.21, 5.00, 2.87,
]
PAPER_TABLE_II_ENDPOINTS = [
    (1, 2), (1, 5), (2, 3), (2, 4), (2, 5), (3, 4), (4, 5), (4, 7),
    (4, 9), (5, 6), (6, 11), (6, 12), (6, 13), (7, 8), (7, 9), (9, 10),
    (9, 14), (10, 11), (12, 13), (13, 14),
]

# published sizes of the real IEEE test systems, plus the deterministic
# large-grid scaling ladder (1.5 lines per bus -> avg degree 3.0)
EXPECTED_SIZES = {
    "ieee14": (14, 20),
    "ieee30": (30, 41),
    "ieee57": (57, 80),
    "ieee118": (118, 186),
    "ieee300": (300, 411),
    "synthetic1000": (1000, 1500),
    "synthetic2000": (2000, 3000),
    "synthetic3000": (3000, 4500),
}


class TestIeee14MatchesPaper:
    def test_size(self):
        g = ieee14()
        assert (g.num_buses, g.num_lines) == (14, 20)

    def test_endpoints_match_table_ii(self):
        g = ieee14()
        for line, (f, t) in zip(g.lines, PAPER_TABLE_II_ENDPOINTS):
            assert (line.from_bus, line.to_bus) == (f, t)

    def test_admittances_match_table_ii(self):
        g = ieee14()
        for line, expected in zip(g.lines, PAPER_TABLE_II_ADMITTANCES):
            assert line.admittance == pytest.approx(expected, abs=0.005)


class TestRegistry:
    @pytest.mark.parametrize("name", available_cases())
    def test_sizes_match_published(self, name):
        grid = load_case(name)
        assert (grid.num_buses, grid.num_lines) == EXPECTED_SIZES[name]

    @pytest.mark.parametrize("name", available_cases())
    def test_connected(self, name):
        assert load_case(name).is_connected()

    @pytest.mark.parametrize("name", available_cases())
    def test_average_degree_near_3(self, name):
        # the paper's structural argument [16]: grids have ~3 avg degree
        avg = load_case(name).average_degree()
        assert 2.5 <= avg <= 3.5

    def test_numeric_aliases(self):
        assert load_case("30").num_buses == 30
        assert load_case("1000").num_buses == 1000

    def test_unknown_case(self):
        with pytest.raises(KeyError):
            load_case("ieee9999")

    def test_deterministic_synthetic_generation(self):
        a = load_case("ieee118")
        b = load_case("ieee118")
        assert [
            (l.from_bus, l.to_bus, l.admittance) for l in a.lines
        ] == [(l.from_bus, l.to_bus, l.admittance) for l in b.lines]

    def test_ieee30_size(self):
        g = ieee30()
        assert g.num_buses == 30 and g.num_lines == 41
