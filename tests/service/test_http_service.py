"""End-to-end HTTP service tests: real sockets, real client, one process.

The server runs on a background thread with ``jobs=1`` so all solver
work stays in-process — which lets ``monkeypatch`` count actual solver
invocations across the HTTP boundary.
"""

import concurrent.futures
import json
import http.client
import threading
import time

import pytest

import repro.runtime.executor as executor_module
import repro.service.batching as batching_module
from repro.core.io import write_spec
from repro.core.spec import AttackGoal, AttackSpec, ResourceLimits
from repro.grid.cases import ieee14
from repro.runtime import ResultCache, RuntimeOptions
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import start_in_thread
from repro.service.jobs import JobState


def make_spec(bus=9):
    return AttackSpec.default(ieee14(), goal=AttackGoal.states(bus))


@pytest.fixture
def server():
    handle = start_in_thread(
        options=RuntimeOptions(jobs=1, cache=ResultCache()),
        window=0.05,
        max_batch=32,
    )
    client = ServiceClient(port=handle.port)
    client.wait_until_ready()
    yield handle, client
    handle.request_shutdown()
    handle.join(timeout=10.0)
    assert not handle.thread.is_alive()


class TestBasics:
    def test_healthz(self, server):
        _, client = server
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_verify_round_trip_with_payload_spec(self, server):
        _, client = server
        job = client.verify(make_spec(), timeout=60)
        assert job["state"] == "done"
        assert job["result"]["outcome"] == "sat"
        assert job["result"]["attack"] is not None

    def test_verify_round_trip_with_spec_text(self, server):
        _, client = server
        secure = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.any(),
            limits=ResourceLimits(max_measurements=0),
        )
        job = client.verify(spec_text=write_spec(secure), timeout=60)
        assert job["result"]["outcome"] == "unsat"

    def test_wait_inline(self, server):
        _, client = server
        job = client.submit_verify(make_spec(), wait=True, wait_timeout=60)
        assert job["state"] == "done"

    def test_synthesize_round_trip(self, server):
        _, client = server
        spec = AttackSpec.default(
            ieee14(),
            goal=AttackGoal.states(9),
            limits=ResourceLimits(max_measurements=10),
        )
        job = client.synthesize(spec, budget=6, timeout=120)
        assert job["state"] == "done"
        assert job["result"]["feasible"] is True
        assert job["result"]["architecture"]


class TestValidation:
    def test_missing_spec_is_400(self, server):
        _, client = server
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/verify", {"backend": "smt"})
        assert excinfo.value.status == 400

    def test_both_spec_fields_is_400(self, server):
        _, client = server
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST", "/v1/verify", {"spec": {}, "spec_text": "buses 2"}
            )
        assert excinfo.value.status == 400

    def test_bad_backend_is_400(self, server):
        _, client = server
        with pytest.raises(ServiceError) as excinfo:
            client.submit_verify(make_spec(), backend="z3")
        assert excinfo.value.status == 400
        assert "backend" in excinfo.value.payload["error"]

    def test_malformed_spec_payload_is_400(self, server):
        _, client = server
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/verify", {"spec": {"format": 99}})
        assert excinfo.value.status == 400

    def test_synthesize_requires_budget(self, server):
        _, client = server
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST",
                "/v1/synthesize",
                {"spec": None, "spec_text": write_spec(make_spec()), "settings": {}},
            )
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, server):
        _, client = server
        with pytest.raises(ServiceError) as excinfo:
            client.job("no-such-job")
        assert excinfo.value.status == 404

    def test_unknown_path_is_404(self, server):
        _, client = server
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v2/everything")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, server):
        _, client = server
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/healthz", {})
        assert excinfo.value.status == 405

    def test_invalid_json_body_is_400(self, server):
        handle, _ = server
        connection = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10)
        try:
            connection.request(
                "POST",
                "/v1/verify",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert "JSON" in payload["error"]


class TestAcceptanceDedup:
    """ISSUE 2 acceptance: N identical concurrent POSTs, one solver call."""

    N = 6

    def test_identical_concurrent_requests_one_solver_invocation(
        self, server, monkeypatch
    ):
        handle, client = server
        calls = []
        lock = threading.Lock()
        real = executor_module.verify_attack

        def counting(spec, **kwargs):
            with lock:
                calls.append(spec)
            return real(spec, **kwargs)

        monkeypatch.setattr(executor_module, "verify_attack", counting)

        spec = make_spec()
        with concurrent.futures.ThreadPoolExecutor(max_workers=self.N) as pool:
            jobs = list(
                pool.map(lambda _: client.verify(spec, timeout=60), range(self.N))
            )

        # every request answered, identically
        assert all(job["state"] == "done" for job in jobs)
        outcomes = {job["result"]["outcome"] for job in jobs}
        assert outcomes == {"sat"}

        # ... by exactly one solver invocation
        assert len(calls) == 1

        stats = client.stats()
        batching = stats["batching"]
        assert batching["solver_calls"] == 1
        # the other N-1 were answered in-batch (dedup) or cross-batch (cache)
        assert batching["dedup_hits"] + batching["cache_hits"] == self.N - 1
        assert batching["jobs"] == self.N

        # batch-size histogram covers all N jobs across the batches run
        histogram = batching["batch_size_histogram"]
        assert sum(int(k) * v for k, v in histogram.items()) == self.N
        assert sum(histogram.values()) == batching["batches"]

        # queue fully drained
        queue = stats["queue"]
        assert queue["depth"] == 0
        assert queue["running"] == 0
        assert queue["done"] == self.N

        # cache consistency: one store (the solved spec); any cache_hits
        # seen by batching are reflected in the cache's own counters
        cache = stats["cache"]
        assert cache["stores"] == 1
        assert cache["hits"] == batching["cache_hits"]
        assert 0.0 <= cache["hit_rate"] <= 1.0

        # latency percentiles exist once jobs have flowed
        assert batching["latency_p50"] is not None
        assert batching["latency_p95"] >= batching["latency_p50"]

        # warm-session registry counters are always published (zeros
        # here: sessions are opt-in and this server runs without them)
        sessions = stats["sessions"]
        assert sessions["limit"] >= 1
        assert {"opened", "reused", "probes", "evicted", "open"} <= set(sessions)
        assert stats["runtime"]["sessions"] is False


class TestDeadline:
    def test_deadline_expiry_returns_timeout_state(self, server):
        _, client = server
        job = client.submit_verify(make_spec(), deadline=0.0)
        terminal = client.wait(job["id"], timeout=10)
        assert terminal["state"] == "timeout"
        assert "deadline" in terminal["error"]


class TestGracefulDrain:
    def test_drain_completes_in_flight_and_rejects_new(
        self, server, monkeypatch
    ):
        handle, client = server
        release = threading.Event()
        real = batching_module.verify_many

        def slow(specs, options):
            release.wait(timeout=10.0)
            return real(specs, options)

        monkeypatch.setattr(batching_module, "verify_many", slow)

        job = client.submit_verify(make_spec())
        # wait until the scheduler has the job in flight
        deadline = time.monotonic() + 5.0
        while client.job(job["id"])["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.01)

        handle.request_shutdown()
        time.sleep(0.1)  # let the drain flag flip

        # drain: health flips, new submissions are refused with 503 ...
        assert client.health()["status"] == "draining"
        with pytest.raises(ServiceError) as excinfo:
            client.submit_verify(make_spec())
        assert excinfo.value.status == 503

        # ... but polling still works and the in-flight job completes
        assert client.job(job["id"])["state"] == "running"
        release.set()
        handle.join(timeout=10.0)
        assert not handle.thread.is_alive()
        finished = handle.app.queue.get(job["id"])
        assert finished.state is JobState.DONE
        assert finished.result["outcome"] == "sat"
