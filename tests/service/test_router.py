"""Router tests: consistent hashing, affinity, failover, admission.

End-to-end tests run real sockets — N in-thread replicas behind an
in-thread router — but stay in one process so white-box state (queue
snapshots, replica endpoints) is reachable.  Affinity is asserted two
ways: deterministically against the ring's preference order, and
behaviorally via which replica's queue did the work.
"""

import threading

import pytest

from repro.core.spec import AttackGoal, AttackSpec
from repro.grid.cases import ieee14
from repro.runtime import ResultCache, RuntimeOptions
from repro.runtime.serialize import family_fingerprint
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import start_in_thread
from repro.service.router import (
    HashRing,
    ReplicaEndpoint,
    start_router_in_thread,
)


def make_spec(bus=9):
    return AttackSpec.default(ieee14(), goal=AttackGoal.states(bus))


# ----------------------------------------------------------------------
# HashRing
# ----------------------------------------------------------------------
class TestHashRing:
    MEMBERS = ["r0", "r1", "r2"]

    def test_preference_is_deterministic_and_total(self):
        ring = HashRing(self.MEMBERS)
        for key in ("a", "b", "some-fingerprint", ""):
            order = ring.preference(key)
            assert sorted(order) == self.MEMBERS
            assert order == HashRing(self.MEMBERS).preference(key)

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing(self.MEMBERS, vnodes=64)
        counts = {member: 0 for member in self.MEMBERS}
        for i in range(300):
            counts[ring.owner(f"key-{i}")] += 1
        # 64 vnodes/member: no member should own almost nothing
        assert min(counts.values()) >= 30

    def test_removing_a_member_only_moves_its_keys(self):
        full = HashRing(self.MEMBERS)
        without_r1 = HashRing(["r0", "r2"])
        for i in range(200):
            key = f"key-{i}"
            if full.owner(key) != "r1":
                assert without_r1.owner(key) == full.owner(key)

    def test_failover_order_matches_shrunk_ring(self):
        # the next preference after a downed owner is that key's owner
        # in a ring without the downed member — so static-membership
        # preference failover behaves like consistent-hash re-homing
        full = HashRing(self.MEMBERS)
        for i in range(100):
            key = f"key-{i}"
            order = full.preference(key)
            survivors = [m for m in self.MEMBERS if m != order[0]]
            assert HashRing(survivors).owner(key) == order[1]

    def test_rejects_empty_membership(self):
        with pytest.raises(ValueError):
            HashRing([])


# ----------------------------------------------------------------------
# end-to-end: router over in-thread replicas
# ----------------------------------------------------------------------
@pytest.fixture
def cluster(tmp_path):
    """3 in-thread replicas sharing a disk cache tier, one router."""
    cache_dir = tmp_path / "shared-cache"
    handles = {}
    endpoints = []
    for index in range(3):
        replica_id = f"r{index}"
        handle = start_in_thread(
            options=RuntimeOptions(jobs=1, cache=ResultCache(directory=cache_dir)),
            replica_id=replica_id,
        )
        handles[replica_id] = handle
        endpoints.append(
            ReplicaEndpoint(replica_id=replica_id, host="127.0.0.1", port=handle.port)
        )
    router = start_router_in_thread(endpoints)
    client = ServiceClient(port=router.port)
    client.wait_until_ready()
    yield router, handles, client
    router.request_shutdown()
    router.join(timeout=10.0)
    for handle in handles.values():
        handle.request_shutdown()
        handle.join(timeout=10.0)


class TestRouting:
    def test_health_reports_cluster(self, cluster):
        _, handles, client = cluster
        health = client.health()
        assert health["role"] == "router"
        assert health["status"] == "ok"
        assert health["replicas"] == {rid: True for rid in handles}

    def test_clusterz_topology(self, cluster):
        router, handles, client = cluster
        topology = client._request("GET", "/clusterz")
        assert [r["replica_id"] for r in topology["replicas"]] == sorted(handles)
        assert topology["ring"]["members"] == sorted(handles)
        assert topology["ring"]["vnodes"] == 64

    def test_submission_lands_on_ring_owner(self, cluster):
        router, handles, client = cluster
        spec = make_spec()
        owner = router.app.ring.owner(family_fingerprint(spec))
        job = client.verify(spec, timeout=60)
        assert job["state"] == "done"
        assert job["result"]["outcome"] == "sat"
        assert job["replica"] == owner
        # the owning replica's queue did the work; the others are idle
        assert handles[owner].app.queue.snapshot()["done"] == 1
        for rid, handle in handles.items():
            if rid != owner:
                assert handle.app.queue.snapshot()["done"] == 0

    def test_family_affinity_across_probes(self, cluster):
        router, handles, client = cluster
        # same family (different goal targets) -> same replica, every time
        replicas_seen = set()
        for bus in (3, 6, 9):
            job = client.verify(make_spec(bus), timeout=60)
            replicas_seen.add(job["replica"])
        assert len(replicas_seen) == 1
        assert replicas_seen == {router.app.ring.owner(family_fingerprint(make_spec()))}

    def test_job_poll_follows_owner(self, cluster):
        _, _, client = cluster
        job = client.submit_verify(make_spec())
        terminal = client.wait(job["id"], timeout=60)
        assert terminal["state"] == "done"
        assert terminal["replica"] == job["replica"]

    def test_statsz_aggregates_replicas(self, cluster):
        _, handles, client = cluster
        client.verify(make_spec(), timeout=60)
        stats = client.stats()
        assert stats["role"] == "router"
        assert set(stats["replicas"]) == set(handles)
        for rid, replica_stats in stats["replicas"].items():
            assert replica_stats["replica"] == rid
        assert stats["counters"]["forwarded"] >= 1

    def test_incidents_have_one_home(self, cluster):
        _, _, client = cluster
        incident = {
            "id": "inc-1",
            "kind": "detector_alarm",
            "severity": "minor",
            "tick": 1,
            "detector": "chi_square",
        }
        posted = client.post_incident(incident)
        assert posted["stored"] == 1
        listed = client.incidents()
        assert listed["count"] == 1
        assert listed["replica"] == posted["replica"]


class TestFailover:
    def test_kill_owner_fails_over_and_shared_cache_answers(self, cluster):
        router, handles, client = cluster
        spec = make_spec()
        preference = router.app.ring.preference(family_fingerprint(spec))
        first = client.verify(spec, timeout=60)
        assert first["replica"] == preference[0]

        # owner dies (graceful here; the connection-refused path is the
        # same either way once the socket is gone)
        handles[preference[0]].request_shutdown()
        handles[preference[0]].join(timeout=10.0)

        second = client.verify(spec, timeout=60)
        assert second["replica"] == preference[1]
        # bit-identical answer, served from the shared disk tier
        assert second["result"]["outcome"] == first["result"]["outcome"]
        assert second["result"]["attack"] == first["result"]["attack"]
        survivor_cache = handles[preference[1]].app.options.cache
        assert survivor_cache.snapshot()["disk_hits"] >= 1

        # the router noticed the death
        topology = client._request("GET", "/clusterz")
        alive = {r["replica_id"]: r["alive"] for r in topology["replicas"]}
        assert alive[preference[0]] is False
        assert topology["counters"]["failovers"] >= 1

    def test_all_replicas_down_is_structured_503(self, cluster):
        router, handles, client = cluster
        for handle in handles.values():
            handle.request_shutdown()
            handle.join(timeout=10.0)
        with pytest.raises(ServiceError) as excinfo:
            client.submit_verify(make_spec())
        assert excinfo.value.status == 503
        assert excinfo.value.payload["code"] == "no_replicas"


class TestAdmissionAndErrors:
    def test_unknown_replica_pin_is_structured_503(self, cluster):
        _, _, client = cluster
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/jobs/any-id?replica=r99")
        assert excinfo.value.status == 503
        assert excinfo.value.payload["code"] == "unknown_replica"

    def test_pinned_replica_is_honored(self, cluster):
        _, _, client = cluster
        # pin a submission to an explicit replica, bypassing the ring
        from repro.runtime.serialize import spec_to_payload

        job = client._request(
            "POST", "/v1/verify?replica=r1", {"spec": spec_to_payload(make_spec())}
        )
        assert job["replica"] == "r1"

    def test_router_inflight_cap_is_429_queue_full(self, cluster):
        router, _, client = cluster
        router.app.max_inflight = 0
        with pytest.raises(ServiceError) as excinfo:
            client.submit_verify(make_spec())
        assert excinfo.value.status == 429
        assert excinfo.value.payload["code"] == "queue_full"

    def test_draining_router_rejects_submissions(self, cluster):
        router, _, client = cluster
        router.app.draining = True
        with pytest.raises(ServiceError) as excinfo:
            client.submit_verify(make_spec())
        assert excinfo.value.status == 503
        assert excinfo.value.payload["code"] == "draining"
        # polling still answers
        assert client._request("GET", "/clusterz")["draining"] is True

    def test_unknown_job_is_structured_404(self, cluster):
        _, _, client = cluster
        with pytest.raises(ServiceError) as excinfo:
            client.job("no-such-job")
        assert excinfo.value.status == 404

    def test_unknown_path_is_structured_404(self, cluster):
        _, _, client = cluster
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v2/everything")
        assert excinfo.value.status == 404
        assert excinfo.value.payload["code"] == "not_found"


class TestConcurrentSweep:
    def test_sweep_spreads_families_and_matches_owners(self, cluster):
        router, _, client = cluster
        # distinct epsilon values are distinct families: deterministic
        # spread across the ring
        variants = [("1/100", 3), ("1/200", 6), ("1/300", 9), ("1/400", 4)]
        results = {}
        errors = []

        def probe(eps, bus):
            try:
                results[(eps, bus)] = client.verify(
                    make_spec(bus), epsilon=eps, timeout=60
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=probe, args=variant) for variant in variants
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=90.0)
        assert not errors
        assert len(results) == len(variants)
        from fractions import Fraction

        for (eps, bus), job in results.items():
            assert job["state"] == "done"
            expected = router.app.ring.owner(
                family_fingerprint(make_spec(bus), epsilon=Fraction(eps))
            )
            assert job["replica"] == expected
