"""Batching scheduler: coalescing, dedup, retries, stats, shared sweep path."""

import asyncio

import pytest

import repro.runtime.executor as executor_module
import repro.service.batching as batching_module
from repro.core.spec import AttackGoal, AttackSpec
from repro.grid.cases import ieee14
from repro.runtime import ResultCache, RuntimeOptions
from repro.runtime.serialize import spec_to_payload
from repro.service.batching import (
    BatchingScheduler,
    BatchStats,
    verify_specs_batched,
)
from repro.service.jobs import JobQueue, JobState


def make_spec(bus=9):
    return AttackSpec.default(ieee14(), goal=AttackGoal.states(bus))


def verify_payload(spec, **extra):
    return {"spec": spec_to_payload(spec), **extra}


async def run_jobs(scheduler, queue, jobs, timeout=60.0):
    """Start the scheduler, wait for every given job to turn terminal."""
    task = asyncio.create_task(scheduler.run())
    try:
        await asyncio.wait_for(
            asyncio.gather(*(job.done.wait() for job in jobs)), timeout
        )
    finally:
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass


class TestSchedulerLifecycle:
    def test_queue_batch_done(self):
        async def body():
            queue = JobQueue()
            scheduler = BatchingScheduler(queue, RuntimeOptions(), window=0.01)
            job = await queue.submit("verify", verify_payload(make_spec()))
            assert job.state is JobState.QUEUED
            await run_jobs(scheduler, queue, [job])
            assert job.state is JobState.DONE
            assert job.result["outcome"] in ("sat", "unsat")
            assert scheduler.stats.batches == 1
            assert scheduler.stats.jobs == 1

        asyncio.run(body())

    def test_unknown_kind_fails_cleanly(self):
        async def body():
            queue = JobQueue()
            scheduler = BatchingScheduler(queue, RuntimeOptions(), window=0.01)
            job = await queue.submit("frobnicate", {})
            await run_jobs(scheduler, queue, [job])
            assert job.state is JobState.FAILED
            assert "unknown job kind" in job.error

        asyncio.run(body())

    def test_synthesize_job(self):
        async def body():
            queue = JobQueue()
            scheduler = BatchingScheduler(queue, RuntimeOptions(), window=0.01)
            payload = verify_payload(
                make_spec(), settings={"max_secured_buses": 6, "excluded_buses": []}
            )
            job = await queue.submit("synthesize", payload)
            await run_jobs(scheduler, queue, [job])
            assert job.state is JobState.DONE
            assert job.result["feasible"] is True
            assert isinstance(job.result["architecture"], list)

        asyncio.run(body())


class TestDedup:
    def test_identical_concurrent_jobs_one_solver_call(self, monkeypatch):
        calls = []
        real = executor_module.verify_attack

        def counting(spec, **kwargs):
            calls.append(spec)
            return real(spec, **kwargs)

        monkeypatch.setattr(executor_module, "verify_attack", counting)

        async def body():
            queue = JobQueue()
            stats = BatchStats()
            scheduler = BatchingScheduler(
                queue,
                RuntimeOptions(cache=ResultCache()),
                window=0.05,
                max_batch=16,
                stats=stats,
            )
            spec = make_spec()
            jobs = [
                await queue.submit("verify", verify_payload(spec)) for _ in range(5)
            ]
            await run_jobs(scheduler, queue, jobs)
            assert all(job.state is JobState.DONE for job in jobs)
            outcomes = {job.result["outcome"] for job in jobs}
            assert len(outcomes) == 1
            return stats

        stats = asyncio.run(body())
        assert len(calls) == 1
        assert stats.solver_calls == 1
        assert stats.dedup_hits + stats.cache_hits == 4

    def test_different_specs_not_deduped(self):
        async def body():
            queue = JobQueue()
            stats = BatchStats()
            scheduler = BatchingScheduler(
                queue, RuntimeOptions(), window=0.05, max_batch=16, stats=stats
            )
            jobs = [
                await queue.submit("verify", verify_payload(make_spec(bus)))
                for bus in (4, 9, 13)
            ]
            await run_jobs(scheduler, queue, jobs)
            assert stats.solver_calls == 3
            assert stats.dedup_hits == 0

        asyncio.run(body())

    def test_per_job_backend_split_into_groups(self):
        async def body():
            queue = JobQueue()
            stats = BatchStats()
            scheduler = BatchingScheduler(
                queue, RuntimeOptions(), window=0.05, max_batch=16, stats=stats
            )
            spec = make_spec()
            smt = await queue.submit("verify", verify_payload(spec, backend="smt"))
            milp = await queue.submit("verify", verify_payload(spec, backend="milp"))
            await run_jobs(scheduler, queue, [smt, milp])
            assert smt.result["backend"] != milp.result["backend"]
            assert smt.result["outcome"] == milp.result["outcome"]
            # different backends are different fingerprints: no dedup
            assert stats.solver_calls == 2

        asyncio.run(body())


class TestRetry:
    def test_transient_failure_retried_then_done(self, monkeypatch):
        real = batching_module.verify_many
        failures = {"left": 1}

        def flaky(specs, options):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("worker pool died")
            return real(specs, options)

        monkeypatch.setattr(batching_module, "verify_many", flaky)

        async def body():
            queue = JobQueue()
            stats = BatchStats()
            scheduler = BatchingScheduler(
                queue, RuntimeOptions(), window=0.01, stats=stats
            )
            job = await queue.submit("verify", verify_payload(make_spec()))
            await run_jobs(scheduler, queue, [job])
            assert job.state is JobState.DONE
            assert job.attempts == 2
            assert stats.retries == 1

        asyncio.run(body())

    def test_persistent_failure_exhausts_retries(self, monkeypatch):
        def broken(specs, options):
            raise RuntimeError("backend permanently broken")

        monkeypatch.setattr(batching_module, "verify_many", broken)

        async def body():
            queue = JobQueue()
            stats = BatchStats()
            scheduler = BatchingScheduler(
                queue, RuntimeOptions(), window=0.01, stats=stats
            )
            job = await queue.submit(
                "verify", verify_payload(make_spec()), max_retries=1
            )
            await run_jobs(scheduler, queue, [job])
            assert job.state is JobState.FAILED
            assert "permanently broken" in job.error
            assert job.attempts == 2
            assert stats.failures == 1

        asyncio.run(body())


class TestDeadline:
    def test_expired_job_never_reaches_solver(self, monkeypatch):
        calls = []
        real = executor_module.verify_attack

        def counting(spec, **kwargs):
            calls.append(spec)
            return real(spec, **kwargs)

        monkeypatch.setattr(executor_module, "verify_attack", counting)

        async def body():
            queue = JobQueue()
            scheduler = BatchingScheduler(queue, RuntimeOptions(), window=0.01)
            job = await queue.submit(
                "verify", verify_payload(make_spec()), deadline=0.0
            )
            await asyncio.sleep(0.005)
            await run_jobs(scheduler, queue, [job])
            assert job.state is JobState.TIMEOUT

        asyncio.run(body())
        assert calls == []


class TestBatchStats:
    def test_histogram_and_percentiles(self):
        stats = BatchStats()
        stats.observe_batch(3)
        stats.observe_batch(3)
        stats.observe_batch(1)
        for latency in (0.1, 0.2, 0.3, 0.4):
            stats.observe_latency(latency)
        snap = stats.snapshot()
        assert snap["batch_size_histogram"] == {"1": 1, "3": 2}
        assert snap["jobs"] == 7
        assert snap["latency_p50"] == pytest.approx(0.2, abs=0.11)
        assert snap["latency_p95"] == pytest.approx(0.4, abs=0.11)

    def test_empty_percentiles_are_none(self):
        snap = BatchStats().snapshot()
        assert snap["latency_p50"] is None and snap["latency_p95"] is None

    def test_rejects_bad_config(self):
        queue = JobQueue.__new__(JobQueue)  # no loop needed for ctor checks
        with pytest.raises(ValueError):
            BatchingScheduler(queue, window=-1.0)
        with pytest.raises(ValueError):
            BatchingScheduler(queue, max_batch=0)


class TestSharedOfflinePath:
    def test_matches_verify_many(self):
        from repro.runtime import verify_many

        specs = [make_spec(bus) for bus in (4, 9, 13)]
        direct = verify_many(specs, RuntimeOptions())
        batched = verify_specs_batched(specs, RuntimeOptions(), max_batch=2)
        for a, b in zip(direct, batched):
            assert a.outcome == b.outcome
            assert a.attack == b.attack

    def test_chunking_and_stats(self):
        specs = [make_spec(9), make_spec(9), make_spec(13)]
        stats = BatchStats()
        cache = ResultCache()
        results = verify_specs_batched(
            specs, RuntimeOptions(cache=cache), max_batch=2, stats=stats
        )
        assert len(results) == 3
        # chunk 1 = [9, 9]: one solve + one in-batch dedup;
        # chunk 2 = [13]: one solve
        assert stats.solver_calls == 2
        assert stats.dedup_hits == 1

    def test_sweep_goes_through_batching(self):
        from repro.analysis.sweeps import verification_sweep

        rows_one_batch = verification_sweep(["ieee14"], targets_per_case=2)
        rows_chunked = verification_sweep(
            ["ieee14"], targets_per_case=2, max_batch=1
        )
        assert [(n, t, r.outcome) for n, t, r in rows_one_batch] == [
            (n, t, r.outcome) for n, t, r in rows_chunked
        ]

    def test_empty_specs(self):
        assert verify_specs_batched([], RuntimeOptions()) == []
