"""Job queue: ordering, lifecycle, deadlines, cancellation, retry bookkeeping."""

import asyncio

import pytest

from repro.service.jobs import JobQueue, JobState, QueueFull


def run(coro):
    return asyncio.run(coro)


class TestOrdering:
    def test_fifo_within_priority(self):
        async def body():
            queue = JobQueue()
            a = await queue.submit("verify", {"n": 1})
            b = await queue.submit("verify", {"n": 2})
            assert (await queue.take()) is a
            assert (await queue.take()) is b

        run(body())

    def test_lower_priority_number_runs_first(self):
        async def body():
            queue = JobQueue()
            late = await queue.submit("verify", {}, priority=5)
            urgent = await queue.submit("verify", {}, priority=-1)
            normal = await queue.submit("verify", {}, priority=0)
            order = [await queue.take() for _ in range(3)]
            assert order == [urgent, normal, late]

        run(body())

    def test_take_timeout_on_empty_queue(self):
        async def body():
            queue = JobQueue()
            assert await queue.take(timeout=0.01) is None

        run(body())


class TestLifecycle:
    def test_queued_running_done(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {})
            assert job.state is JobState.QUEUED
            assert queue.depth() == 1

            taken = await queue.take()
            assert taken is job
            assert job.state is JobState.RUNNING
            assert job.attempts == 1
            assert queue.depth() == 0 and queue.running() == 1

            queue.finish(job, JobState.DONE, result={"outcome": "sat"})
            assert job.state is JobState.DONE
            assert job.done.is_set()
            assert job.finished_at is not None
            assert queue.unfinished() == 0
            assert queue.counters["done"] == 1

        run(body())

    def test_finish_requires_terminal_state(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {})
            with pytest.raises(ValueError):
                queue.finish(job, JobState.RUNNING)

        run(body())

    def test_finish_is_idempotent(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {})
            await queue.take()
            queue.finish(job, JobState.DONE, result={})
            queue.finish(job, JobState.FAILED, error="late failure ignored")
            assert job.state is JobState.DONE
            assert queue.counters["failed"] == 0

        run(body())

    def test_wait_returns_terminal_job(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {})

            async def finisher():
                taken = await queue.take()
                await asyncio.sleep(0.01)
                queue.finish(taken, JobState.DONE, result={})

            task = asyncio.create_task(finisher())
            waited = await queue.wait(job.id, timeout=5.0)
            await task
            assert waited is job and waited.state is JobState.DONE

        run(body())

    def test_describe_is_json_view(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {}, priority=2)
            view = job.describe()
            assert view["state"] == "queued"
            assert view["priority"] == 2
            assert "result" not in view

        run(body())


class TestDeadlines:
    def test_expired_job_times_out_at_dispatch(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {}, deadline=0.0)
            await asyncio.sleep(0.005)
            assert await queue.take(timeout=0.05) is None  # never dispatched
            assert job.state is JobState.TIMEOUT
            assert "deadline" in job.error
            assert queue.counters["timeout"] == 1

        run(body())

    def test_expired_job_times_out_on_get(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {}, deadline=0.0)
            await asyncio.sleep(0.005)
            seen = queue.get(job.id)
            assert seen is job and seen.state is JobState.TIMEOUT

        run(body())

    def test_future_deadline_does_not_expire(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {}, deadline=60.0)
            assert (await queue.take()) is job

        run(body())


class TestCancelAndLimits:
    def test_cancelled_job_is_skipped(self):
        async def body():
            queue = JobQueue()
            victim = await queue.submit("verify", {"n": 1})
            survivor = await queue.submit("verify", {"n": 2})
            assert queue.cancel(victim.id)
            assert victim.state is JobState.CANCELLED
            assert (await queue.take()) is survivor

        run(body())

    def test_cannot_cancel_running_job(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {})
            await queue.take()
            assert not queue.cancel(job.id)
            assert job.state is JobState.RUNNING

        run(body())

    def test_queue_full(self):
        async def body():
            queue = JobQueue(max_depth=2)
            await queue.submit("verify", {})
            await queue.submit("verify", {})
            with pytest.raises(QueueFull):
                await queue.submit("verify", {})

        run(body())

    def test_finished_jobs_pruned_beyond_max_finished(self):
        async def body():
            queue = JobQueue(max_finished=2)
            ids = []
            for _ in range(4):
                job = await queue.submit("verify", {})
                await queue.take()
                queue.finish(job, JobState.DONE, result={})
                ids.append(job.id)
            assert queue.get(ids[0]) is None
            assert queue.get(ids[-1]) is not None

        run(body())


class TestFairness:
    def test_clients_interleave_instead_of_fifo_starvation(self):
        """A heavy sweep queued first must not starve an interactive
        client: dispatch interleaves the streams round-robin-by-rank."""

        async def body():
            queue = JobQueue()
            sweep = [
                await queue.submit("verify", {"n": i}, client="sweep")
                for i in range(3)
            ]
            probe = await queue.submit("verify", {}, client="interactive")
            order = [await queue.take() for _ in range(4)]
            # rank 0: sweep[0] then probe (FIFO within rank); rank 1+: rest
            assert order == [sweep[0], probe, sweep[1], sweep[2]]

        run(body())

    def test_fifo_within_one_client(self):
        async def body():
            queue = JobQueue()
            jobs = [
                await queue.submit("verify", {"n": i}, client="c") for i in range(4)
            ]
            taken = [await queue.take() for _ in range(4)]
            assert taken == jobs

        run(body())

    def test_priority_dominates_fairness(self):
        async def body():
            queue = JobQueue()
            await queue.submit("verify", {}, client="sweep")
            urgent = await queue.submit("verify", {}, priority=-10, client="monitor")
            assert (await queue.take()) is urgent

        run(body())

    def test_anonymous_submitters_share_one_bucket(self):
        async def body():
            queue = JobQueue()
            a = await queue.submit("verify", {"n": 1})
            named = await queue.submit("verify", {}, client="c")
            b = await queue.submit("verify", {"n": 2})
            # anonymous jobs rank as one client; "c" interleaves at rank 0
            assert [await queue.take() for _ in range(3)] == [a, named, b]

        run(body())

    def test_per_client_cap_is_queue_full(self):
        async def body():
            queue = JobQueue(max_per_client=2)
            await queue.submit("verify", {}, client="greedy")
            await queue.submit("verify", {}, client="greedy")
            with pytest.raises(QueueFull) as excinfo:
                await queue.submit("verify", {}, client="greedy")
            assert "max_queue_per_client" in str(excinfo.value)
            # other clients are unaffected
            other = await queue.submit("verify", {}, client="modest")
            assert other.state is JobState.QUEUED

        run(body())

    def test_per_client_count_released_on_dispatch_and_cancel(self):
        async def body():
            queue = JobQueue(max_per_client=1)
            first = await queue.submit("verify", {}, client="c")
            await queue.take()  # dispatch frees the slot
            second = await queue.submit("verify", {}, client="c")
            assert queue.cancel(second.id)  # cancellation frees it too
            third = await queue.submit("verify", {}, client="c")
            assert third.state is JobState.QUEUED
            assert first.state is JobState.RUNNING

        run(body())

    def test_snapshot_reports_per_client_depths(self):
        async def body():
            queue = JobQueue(max_per_client=5)
            await queue.submit("verify", {}, client="sweep")
            await queue.submit("verify", {}, client="sweep")
            await queue.submit("verify", {})
            snapshot = queue.snapshot()
            assert snapshot["depth_by_client"] == {"sweep": 2, "(anonymous)": 1}
            assert snapshot["max_per_client"] == 5

        run(body())

    def test_client_appears_in_describe(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {}, client="monitor")
            assert job.describe()["client"] == "monitor"
            anonymous = await queue.submit("verify", {})
            assert "client" not in anonymous.describe()

        run(body())


class TestRequeue:
    def test_requeue_preserves_attempts(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {}, max_retries=2)
            first = await queue.take()
            assert first.attempts == 1
            await queue.requeue(first)
            assert job.state is JobState.QUEUED
            again = await queue.take()
            assert again is job and again.attempts == 2
            assert queue.counters["retried"] == 1

        run(body())

    def test_join_waits_for_idle(self):
        async def body():
            queue = JobQueue()
            job = await queue.submit("verify", {})
            await queue.take()

            async def finisher():
                await asyncio.sleep(0.01)
                queue.finish(job, JobState.DONE, result={})

            task = asyncio.create_task(finisher())
            await asyncio.wait_for(queue.join(), timeout=5.0)
            await task
            assert queue.unfinished() == 0

        run(body())
