"""End-to-end observability: one verify request → trace tree + metrics.

Boots the real service with tracing pointed at a JSONL sink, drives it
through the real client, then asserts the request left (a) a multi-layer
span tree retrievable by trace_id and (b) incremented Prometheus
families on ``/metricsz``.
"""

import json

import pytest

from repro.core.spec import AttackGoal, AttackSpec
from repro.grid.cases import ieee14
from repro.obs.render import render_file
from repro.obs.trace import get_tracer, set_tracer
from repro.runtime import ResultCache, RuntimeOptions
from repro.service.client import ServiceClient
from repro.service.http import start_in_thread


def make_spec(bus=9):
    return AttackSpec.default(ieee14(), goal=AttackGoal.states(bus))


@pytest.fixture
def traced_server(tmp_path):
    """Service with span tracing on and a JSONL sink under tmp_path."""
    previous = get_tracer()
    sink = tmp_path / "spans.jsonl"
    handle = start_in_thread(
        options=RuntimeOptions(jobs=1, cache=ResultCache()),
        window=0.05,
        max_batch=32,
        trace_file=str(sink),
    )
    client = ServiceClient(port=handle.port)
    client.wait_until_ready()
    yield handle, client, sink
    handle.request_shutdown()
    handle.join(timeout=10.0)
    assert not handle.thread.is_alive()
    set_tracer(previous)


def sink_spans(sink):
    return [json.loads(line) for line in sink.read_text().splitlines()]


class TestTracePipeline:
    def test_verify_produces_multi_layer_trace(self, traced_server):
        _, client, sink = traced_server
        job = client.verify(make_spec(), timeout=60)
        assert job["result"]["outcome"] == "sat"
        trace_id = job["trace_id"]
        assert trace_id

        spans = [s for s in sink_spans(sink) if s["trace_id"] == trace_id]
        names = {s["name"] for s in spans}
        # request → job → runtime task → encode/solve: four layers deep
        assert {"job", "runtime.task", "verify.encode", "verify.solve"} <= names
        assert len(spans) >= 4

        by_id = {s["span_id"]: s for s in spans}
        solve = next(s for s in spans if s["name"] == "verify.solve")
        task = by_id[solve["parent_id"]]
        assert task["name"] == "runtime.task"
        job_span = by_id[task["parent_id"]]
        assert job_span["name"] == "job"
        assert solve["attributes"]["outcome"] == "sat"
        assert solve["attributes"]["backend"] == "smt"

    def test_trace_renders_as_waterfall(self, traced_server):
        _, client, sink = traced_server
        job = client.verify(make_spec(), timeout=60)
        text = render_file(sink, trace_id=job["trace_id"])
        assert f"trace {job['trace_id']}" in text
        assert "verify.solve" in text

    def test_http_request_span_recorded(self, traced_server):
        _, client, sink = traced_server
        client.health()
        spans = sink_spans(sink)
        http_spans = [s for s in spans if s["name"] == "http.request"]
        assert any(s["attributes"].get("path") == "/healthz" for s in http_spans)


class TestMetricsEndpoint:
    def test_scrape_covers_all_families(self, traced_server):
        _, client, _ = traced_server
        client.verify(make_spec(), timeout=60)
        text = client.metrics_text()
        for family in (
            "repro_http_requests_total",
            "repro_jobs_submitted_total",
            "repro_queue_depth",
            "repro_batch_size",
            "repro_cache_lookups_total",
            "repro_portfolio_races_total",
            "repro_session_events_total",
            "repro_solver_conflicts_total",
            "repro_solver_fill_ratio",
            "repro_solve_seconds",
        ):
            assert f"# TYPE {family} " in text

    def test_request_increments_counters(self, traced_server):
        _, client, _ = traced_server

        def submitted(text):
            # sum every label series: earlier tests in the process may
            # already have populated other `kind` values
            return sum(
                float(line.rsplit(" ", 1)[1])
                for line in text.splitlines()
                if line.startswith("repro_jobs_submitted_total{")
            )

        before = submitted(client.metrics_text())
        client.verify(make_spec(), timeout=60)
        after = submitted(client.metrics_text())
        assert after >= before + 1

    def test_healthz_reports_runtime_and_engine(self, traced_server):
        _, client, _ = traced_server
        health = client.health()
        assert health["runtime"]["jobs"] == 1
        assert "engine" in health and health["engine"]


class TestMonotonicJobClocks:
    def test_lifecycle_durations_are_non_negative(self, traced_server):
        _, client, _ = traced_server
        job = client.verify(make_spec(), timeout=60)
        assert job["queue_wait_seconds"] >= 0
        assert job["run_seconds"] >= 0
