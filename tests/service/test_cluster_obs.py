"""Cluster telemetry endpoints end-to-end, in one process.

Two in-thread replicas behind an in-thread router exercise the real
wire paths of the telemetry plane: ``/clusterz/metrics`` (merged +
per-replica scrape), ``/sloz`` (burn-rate evaluation over the merged
scrape, alerts bridged to ``/v1/incidents``) and ``/debugz/flight``.
"""

import json
import time
from contextlib import contextmanager

import pytest

from repro.obs import agg
from repro.obs import flight as flight_mod
from repro.obs.flight import configure_flight, get_flight_recorder
from repro.obs.trace import get_tracer, set_tracer
from repro.runtime import ResultCache, RuntimeOptions
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import start_in_thread
from repro.service.router import ReplicaEndpoint, start_router_in_thread


@pytest.fixture(autouse=True)
def restore_obs_globals():
    prev_tracer = get_tracer()
    prev_recorder = get_flight_recorder()
    yield
    configure_flight(enabled=False)
    flight_mod._recorder = prev_recorder
    set_tracer(prev_tracer)


@contextmanager
def cluster(tmp_path, replicas=2, **router_kwargs):
    handles = {}
    endpoints = []
    for index in range(replicas):
        replica_id = f"r{index}"
        handle = start_in_thread(
            options=RuntimeOptions(jobs=1, cache=ResultCache()),
            replica_id=replica_id,
        )
        handles[replica_id] = handle
        endpoints.append(
            ReplicaEndpoint(
                replica_id=replica_id, host="127.0.0.1", port=handle.port
            )
        )
    router = start_router_in_thread(endpoints, **router_kwargs)
    client = ServiceClient(port=router.port)
    client.wait_until_ready()
    try:
        yield router, handles, client
    finally:
        router.request_shutdown()
        router.join(timeout=10.0)
        for handle in handles.values():
            handle.request_shutdown()
            handle.join(timeout=10.0)


def get_text(client, path):
    status, raw = client._raw_request("GET", path)
    assert status == 200, raw
    return raw.decode("utf-8")


def get_json(client, path):
    return json.loads(get_text(client, path))


class TestClusterMetrics:
    def test_merged_scrape_covers_replicas_and_router(self, tmp_path):
        with cluster(tmp_path) as (_, _, client):
            # the first scrape's own /metricsz requests guarantee every
            # replica has request series by the second scrape
            get_text(client, "/clusterz/metrics")
            families = agg.parse_text(get_text(client, "/clusterz/metrics"))
            requests = families["repro_http_requests_total"].samples
            replicas_seen = {s.label("replica") for s in requests}
            # merged series (no label) + every process's audit series
            assert {None, "r0", "r1", "router"} <= replicas_seen

    def test_merged_series_is_sum_of_replica_series(self, tmp_path):
        with cluster(tmp_path) as (_, _, client):
            get_text(client, "/clusterz/metrics")
            families = agg.parse_text(get_text(client, "/clusterz/metrics"))
            family = families["repro_http_requests_total"]
            merged = {
                s.labels: s.value
                for s in family.samples
                if s.label("replica") is None
            }
            summed = {}
            for s in family.samples:
                if s.label("replica") is None:
                    continue
                key = s.without_labels("replica")
                summed[key] = summed.get(key, 0.0) + s.value
            assert merged == summed

    def test_build_info_present_for_every_process(self, tmp_path):
        with cluster(tmp_path) as (_, _, client):
            families = agg.parse_text(get_text(client, "/clusterz/metrics"))
            info = families["repro_build_info"].samples
            by_replica = {
                s.label("replica"): s for s in info if s.label("replica")
            }
            assert {"r0", "r1", "router"} <= set(by_replica)
            for sample in by_replica.values():
                assert sample.value == 1.0
                assert sample.label("engine_signature")
                assert sample.label("kernel")


class TestSlozEndpoint:
    def test_disabled_router_answers_404(self, tmp_path):
        with cluster(tmp_path) as (_, _, client):
            with pytest.raises(ServiceError) as err:
                client._request("GET", "/sloz")
            assert err.value.status == 404
            assert err.value.payload["code"] == "slo_disabled"

    def test_clusterz_reports_slo_and_flight_state(self, tmp_path):
        with cluster(tmp_path) as (_, _, client):
            payload = client._request("GET", "/clusterz")
            assert payload["slo"] is None
            assert payload["flight"] is False


def aggressive_slo_config(tmp_path):
    """Counts 4xx answers as bad so tests can burn without crashing."""
    path = tmp_path / "slo.json"
    path.write_text(
        json.dumps(
            {
                "interval_seconds": 0.1,
                "windows": [
                    {
                        "name": "t",
                        "short_seconds": 0.3,
                        "long_seconds": 0.8,
                        "burn_threshold": 0.5,
                        "severity": "critical",
                    }
                ],
                "slos": [
                    {
                        "name": "notfound",
                        "objective": 0.9,
                        "metric": "repro_router_requests_total",
                        "bad_label": "status",
                        "bad_prefix": "4",
                    }
                ],
            }
        )
    )
    return str(path)


def wait_for(predicate, timeout=15.0, poll=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(poll)
    raise AssertionError("condition not met within timeout")


class TestSloBurnPipeline:
    def test_burn_alert_fires_once_and_becomes_incident(self, tmp_path):
        config = aggressive_slo_config(tmp_path)
        with cluster(tmp_path, slo=config, flight=True) as (_, _, client):
            # burn is a delta: the evaluator needs a clean baseline
            # sample before the burst or the bad counts are invisible
            wait_for(
                lambda: (
                    lambda p: p["slos"] and "good" in p["slos"][0]
                )(get_json(client, "/sloz"))
            )
            # a burst of 404s: way past 10% bad in both windows
            for _ in range(20):
                status, _ = client._raw_request("GET", "/no-such-endpoint")
                assert status == 404

            status_payload = wait_for(
                lambda: (
                    lambda p: p if p["alerts"] else None
                )(get_json(client, "/sloz"))
            )
            alerts = status_payload["alerts"]
            assert len(alerts) == 1  # rising edge, not one per tick
            assert alerts[0]["slo"] == "notfound"
            assert alerts[0]["severity"] == "critical"

            # the alert is bridged to the monitor incident store
            incidents = wait_for(
                lambda: client.incidents(kind="slo_burn")["incidents"]
            )
            assert incidents[0]["kind"] == "slo_burn"
            assert incidents[0]["detector"] == "slo"
            assert incidents[0]["evidence"]["slo"] == "notfound"

            # and the router flight recorder froze a slo_burn snapshot
            flight = get_json(client, "/debugz/flight")
            assert flight["role"] == "router"
            assert flight["router"]["enabled"] is True
            reasons = {s["reason"] for s in flight["router"]["snapshots"]}
            assert "slo_burn" in reasons

    def test_sloz_status_shape_under_config(self, tmp_path):
        config = aggressive_slo_config(tmp_path)
        with cluster(tmp_path, slo=config) as (_, _, client):
            payload = wait_for(
                lambda: (
                    lambda p: p if p["slos"] and "good" in p["slos"][0] else None
                )(get_json(client, "/sloz"))
            )
            assert payload["config"]["interval_seconds"] == 0.1
            slo = payload["slos"][0]
            assert slo["name"] == "notfound"
            assert slo["total"] >= slo["good"] >= 0
            clusterz = client._request("GET", "/clusterz")
            assert clusterz["slo"] == {"slos": 1, "alerts": 0}


class TestFlightEndpoint:
    def test_disabled_flight_payload(self, tmp_path):
        with cluster(tmp_path) as (_, _, client):
            payload = get_json(client, "/debugz/flight")
            assert payload["role"] == "router"
            assert payload["router"]["enabled"] is False
            assert set(payload["replicas"]) == {"r0", "r1"}

    def test_trace_id_filter_forwarded(self, tmp_path):
        with cluster(tmp_path, flight=True) as (_, _, client):
            recorder = get_flight_recorder()
            recorder.trigger("http_5xx", trace_id="feedface" * 4)
            payload = get_json(client, "/debugz/flight?trace_id=feedface")
            snapshots = payload["router"]["snapshots"]
            # the prefix filter keeps the trigger we planted (in-thread
            # replicas share the recorder, so on-demand freezes from the
            # forwarded queries can add snapshots for the same trace)
            assert any(s["reason"] == "http_5xx" for s in snapshots)
            assert all(
                str(s["trace_id"]).startswith("feedface") for s in snapshots
            )
            other = get_json(client, "/debugz/flight?trace_id=0000dead")
            assert not any(
                s["reason"] == "http_5xx"
                for s in other["router"]["snapshots"]
            )
