"""Incident ingestion/query, structured 400s, and per-priority depths."""

import asyncio
import http.client
import json

import pytest

from repro.obs.trace import get_tracer, set_tracer
from repro.runtime import ResultCache, RuntimeOptions
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import start_in_thread
from repro.service.jobs import JobQueue


def incident_payload(id="state_drift-00020-00", **overrides):
    payload = {
        "id": id,
        "kind": "state_drift",
        "severity": "critical",
        "tick": 20,
        "detector": "state_drift",
        "evidence_ticks": [11, 20],
        "evidence": {"drifted_buses": [4]},
        "verification": {"outcome": "sat", "min_cost": 7},
        "countermeasure": {"feasible": True, "secured_buses": [5]},
    }
    payload.update(overrides)
    return payload


@pytest.fixture
def server():
    handle = start_in_thread(
        options=RuntimeOptions(jobs=1, cache=ResultCache()),
        window=0.05,
        max_batch=32,
    )
    client = ServiceClient(port=handle.port)
    client.wait_until_ready()
    yield handle, client
    handle.request_shutdown()
    handle.join(timeout=10.0)
    assert not handle.thread.is_alive()


def raw_post(port, path, body: bytes):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestIncidentRoundTrip:
    def test_post_then_get(self, server):
        _, client = server
        answer = client.post_incident(incident_payload())
        assert answer == {"id": "state_drift-00020-00", "stored": 1}
        result = client.incidents()
        assert result["count"] == 1
        stored = result["incidents"][0]
        assert stored["kind"] == "state_drift"
        assert stored["countermeasure"]["secured_buses"] == [5]

    def test_query_filters(self, server):
        _, client = server
        client.post_incident(incident_payload())
        client.post_incident(
            incident_payload(
                id="bad_data-00030-00", kind="bad_data", severity="minor", tick=30
            )
        )
        client.post_incident(
            incident_payload(
                id="vulnerability_shift-00040-00",
                kind="vulnerability_shift",
                severity="major",
                tick=40,
            )
        )
        assert client.incidents(kind="bad_data")["count"] == 1
        assert client.incidents(min_severity="major")["count"] == 2
        assert client.incidents(since_tick=35)["count"] == 1
        limited = client.incidents(limit=1)
        assert limited["count"] == 1
        assert limited["incidents"][0]["tick"] == 40  # newest kept

    def test_incidents_visible_in_statsz(self, server):
        _, client = server
        client.post_incident(incident_payload())
        stats = client.stats()
        assert stats["incidents"]["stored"] == 1
        assert stats["incidents"]["by_severity"] == {"critical": 1}
        assert stats["incidents"]["by_kind"] == {"state_drift": 1}

    def test_invalid_incident_rejected(self, server):
        _, client = server
        with pytest.raises(ServiceError) as excinfo:
            client.post_incident({"id": "x", "kind": "state_drift"})
        assert excinfo.value.status == 400
        assert "invalid incident" in excinfo.value.payload["error"]

    def test_bad_query_value_rejected(self, server):
        _, client = server
        with pytest.raises(ServiceError) as excinfo:
            client.incidents(since_tick="soon")
        assert excinfo.value.status == 400
        assert "integer" in excinfo.value.payload["error"]


class TestMalformedBodies:
    """Satellite: non-JSON bodies answer 400, never a traceback."""

    @pytest.mark.parametrize(
        "path", ["/v1/verify", "/v1/synthesize", "/v1/incidents"]
    )
    def test_non_json_body_is_structured_400(self, server, path):
        handle, _ = server
        status, payload = raw_post(handle.port, path, b"{definitely not json")
        assert status == 400
        assert payload["code"] == "invalid_json"
        assert "JSON" in payload["error"]

    def test_unknown_endpoint_has_code(self, server):
        handle, _ = server
        status, payload = raw_post(handle.port, "/v1/nothing", b"{}")
        assert status == 404
        assert payload["code"] == "not_found"


class TestPerPriorityDepths:
    def test_queue_counts_by_priority(self):
        async def scenario():
            queue = JobQueue()
            await queue.submit("verify", {}, priority=0)
            await queue.submit("verify", {}, priority=0)
            await queue.submit("verify", {}, priority=-10)
            return queue.depth_by_priority(), queue.snapshot()

        depths, snapshot = asyncio.run(scenario())
        assert depths == {"-10": 1, "0": 2}
        assert list(depths) == ["-10", "0"]  # sorted by priority
        assert snapshot["depth_by_priority"] == depths

    def test_statsz_exposes_depths(self, server):
        _, client = server
        stats = client.stats()
        assert "depth_by_priority" in stats["queue"]
        assert stats["queue"]["depth_by_priority"] == {}  # idle service


class TestTraceContextHeader:
    def test_server_span_joins_client_trace(self, tmp_path):
        previous = get_tracer()
        sink = tmp_path / "spans.jsonl"
        handle = start_in_thread(
            options=RuntimeOptions(jobs=1, cache=ResultCache()),
            window=0.05,
            max_batch=32,
            trace_file=str(sink),
        )
        try:
            client = ServiceClient(port=handle.port)
            client.wait_until_ready()
            with get_tracer().span("monitor.publish") as span:
                client.post_incident(incident_payload())
                trace_id = span.trace_id
            assert trace_id
            spans = [json.loads(line) for line in sink.read_text().splitlines()]
            joined = [
                s
                for s in spans
                if s["name"] == "http.request"
                and s["trace_id"] == trace_id
                and s["attributes"].get("path") == "/v1/incidents"
            ]
            assert joined, "server request span must join the caller's trace"
        finally:
            handle.request_shutdown()
            handle.join(timeout=10.0)
            set_tracer(previous)
