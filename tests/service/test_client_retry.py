"""Client resilience: transient-connection retry, backoff, failover.

A replica restarting under the supervisor answers connection-refused
(socket gone) or resets mid-exchange; the client must ride through
that window instead of surfacing it to every caller.  HTTP-level
errors, by contrast, mean the server *spoke* — they must not be
retried.
"""

import threading
import time

import pytest

import repro.service.client as client_module
from repro.core.spec import AttackGoal, AttackSpec
from repro.grid.cases import ieee14
from repro.runtime import ResultCache, RuntimeOptions
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import start_in_thread
from repro.service.router import _free_port


def make_spec(bus=9):
    return AttackSpec.default(ieee14(), goal=AttackGoal.states(bus))


def start_server(port=0):
    return start_in_thread(
        options=RuntimeOptions(jobs=1, cache=ResultCache()), port=port
    )


class TestRetry:
    def test_restart_mid_request_is_transparent(self):
        """Kill the server, restart it on the same port while a request
        is in flight: the retrying client never sees the gap."""
        port = _free_port("127.0.0.1")
        first = start_server(port=port)
        client = ServiceClient(port=port, retries=5, backoff=0.05)
        client.wait_until_ready()
        assert client.verify(make_spec(), timeout=60)["state"] == "done"

        first.request_shutdown()
        first.join(timeout=10.0)
        assert not first.thread.is_alive()

        box = {}

        def restart_later():
            time.sleep(0.15)  # inside the client's backoff window
            box["handle"] = start_server(port=port)

        restarter = threading.Thread(target=restart_later)
        restarter.start()
        try:
            # issued while the port is dead: retried until the restarted
            # server answers
            job = client.verify(make_spec(), timeout=60)
            assert job["state"] == "done"
            assert client.retry_stats["retries"] >= 1
        finally:
            restarter.join(timeout=10.0)
            box["handle"].request_shutdown()
            box["handle"].join(timeout=10.0)

    def test_failover_to_next_endpoint(self):
        live = start_server()
        dead_port = _free_port("127.0.0.1")
        client = ServiceClient(
            endpoints=[("127.0.0.1", dead_port), ("127.0.0.1", live.port)],
            retries=3,
            backoff=0.01,
        )
        try:
            health = client.health()
            assert health["status"] == "ok"
            assert client.retry_stats["failovers"] >= 1
            # the cursor stuck to the endpoint that answered
            assert client.port == live.port
            client.health()
            assert client.retry_stats["failovers"] == 1
        finally:
            live.request_shutdown()
            live.join(timeout=10.0)

    def test_http_errors_are_not_retried(self):
        live = start_server()
        client = ServiceClient(port=live.port, retries=3)
        try:
            client.wait_until_ready()
            before = client.retry_stats["attempts"]
            with pytest.raises(ServiceError) as excinfo:
                client.job("no-such-job")
            assert excinfo.value.status == 404
            assert client.retry_stats["attempts"] == before + 1
            assert client.retry_stats["retries"] == 0
        finally:
            live.request_shutdown()
            live.join(timeout=10.0)

    def test_exhausted_retries_raise_original_error(self):
        dead_port = _free_port("127.0.0.1")
        client = ServiceClient(port=dead_port, retries=2, backoff=0.01)
        with pytest.raises(ConnectionError):
            client.health()
        assert client.retry_stats["attempts"] == 3  # initial + 2 retries
        assert client.retry_stats["retries"] == 2

    def test_zero_retries_raise_immediately(self):
        dead_port = _free_port("127.0.0.1")
        client = ServiceClient(port=dead_port, retries=0)
        with pytest.raises(ConnectionError):
            client.health()
        assert client.retry_stats["attempts"] == 1

    def test_backoff_doubles_and_caps(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(client_module.time, "sleep", sleeps.append)
        dead_port = _free_port("127.0.0.1")
        client = ServiceClient(
            port=dead_port, retries=4, backoff=0.5, max_backoff=2.0
        )
        with pytest.raises(ConnectionError):
            client.health()
        assert sleeps == [0.5, 1.0, 2.0, 2.0]


class TestClientIdentity:
    def test_client_id_stamped_on_submissions(self):
        live = start_server()
        client = ServiceClient(port=live.port, client_id="sweeper")
        try:
            client.wait_until_ready()
            job = client.submit_verify(make_spec())
            assert job["client"] == "sweeper"
            # explicit field wins over the default identity
            job = client.submit_verify(make_spec(), client="probe")
            assert job["client"] == "probe"
        finally:
            live.request_shutdown()
            live.join(timeout=10.0)
