"""MILP backends for the verification model.

Two alternative deciders for the same constraint system the SMT engine
solves:

* :mod:`repro.milp.backend` — a big-M mirror of the SMT encoding solved
  with scipy's HiGHS (``scipy.optimize.milp``); the fast path on large
  systems and the cross-validation oracle for the bundled SMT solver;
* :mod:`repro.milp.branch_bound` — a small from-scratch branch-and-bound
  MILP solver over ``scipy.optimize.linprog``, included as a third,
  independent decision procedure (used in tests on small instances).
"""

from repro.milp.backend import MilpResult, solve_encoder_milp

__all__ = ["MilpResult", "solve_encoder_milp"]
