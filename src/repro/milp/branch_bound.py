"""A small branch-and-bound MILP solver on top of ``scipy.optimize.linprog``.

A third, independent decision procedure for mixed binary/continuous
linear feasibility problems (besides the bundled SMT engine and HiGHS).
Depth-first search branching on the most-fractional integer variable,
with best-bound pruning when an objective is given.  Used in the test
suite to cross-check the other two backends on small instances, and as
a readable reference implementation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog


class BnbStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    NODE_LIMIT = "node_limit"


@dataclass
class BnbResult:
    status: BnbStatus
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    nodes_explored: int = 0


def branch_and_bound(
    c: Sequence[float],
    a_ub: Optional[np.ndarray] = None,
    b_ub: Optional[Sequence[float]] = None,
    a_eq: Optional[np.ndarray] = None,
    b_eq: Optional[Sequence[float]] = None,
    bounds: Optional[Sequence[Tuple[Optional[float], Optional[float]]]] = None,
    integer_mask: Optional[Sequence[bool]] = None,
    max_nodes: int = 10_000,
    int_tol: float = 1e-6,
) -> BnbResult:
    """Minimize ``c @ x`` subject to linear constraints and integrality.

    ``integer_mask[i]`` marks variables that must take integer values.
    Uses LP relaxations solved by HiGHS-simplex via ``linprog``; branches
    on the most fractional integer variable; prunes nodes whose LP bound
    cannot beat the incumbent.
    """
    c = np.asarray(c, dtype=float)
    n = len(c)
    if bounds is None:
        bounds = [(None, None)] * n
    if integer_mask is None:
        integer_mask = [False] * n
    integer_cols = [i for i, flag in enumerate(integer_mask) if flag]

    best_x: Optional[np.ndarray] = None
    best_obj = np.inf
    nodes = 0
    # each stack entry: list of per-variable (lb, ub) overrides
    stack: List[List[Tuple[Optional[float], Optional[float]]]] = [list(bounds)]

    while stack and nodes < max_nodes:
        node_bounds = stack.pop()
        nodes += 1
        res = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=node_bounds,
            method="highs",
        )
        if res.status != 0:
            continue  # infeasible or unbounded branch
        if best_x is not None and res.fun >= best_obj - 1e-9:
            continue  # bound pruning
        x = res.x
        # find most fractional integer variable
        branch_var = -1
        branch_frac = int_tol
        for i in integer_cols:
            frac = abs(x[i] - round(x[i]))
            if frac > branch_frac:
                branch_var = i
                branch_frac = frac
        if branch_var == -1:
            # integral: new incumbent
            obj = float(res.fun)
            if obj < best_obj:
                best_obj = obj
                best_x = x.copy()
                for i in integer_cols:
                    best_x[i] = round(best_x[i])
            continue
        value = x[branch_var]
        lo, hi = node_bounds[branch_var]
        down = list(node_bounds)
        down[branch_var] = (lo, float(np.floor(value)))
        up = list(node_bounds)
        up[branch_var] = (float(np.ceil(value)), hi)
        stack.append(down)
        stack.append(up)

    if best_x is not None:
        return BnbResult(BnbStatus.OPTIMAL, best_x, best_obj, nodes)
    if nodes >= max_nodes and stack:
        return BnbResult(BnbStatus.NODE_LIMIT, nodes_explored=nodes)
    return BnbResult(BnbStatus.INFEASIBLE, nodes_explored=nodes)
