"""Big-M MILP mirror of the SMT encoding, solved with HiGHS.

The mirror consumes the *exact same* formula the SMT solver decides:
the CNF clauses (boolean structure plus cardinality counters) become
covering constraints over binaries, and each arithmetic atom variable is
linked to its linear form with big-M indicator constraints.  Because
both backends share one encoder there is no duplicated modeling logic —
agreement between them validates the solver, not just the model.

Caveat (documented in DESIGN.md): big-M encodings bound the continuous
variables to ``[-B, B]`` and separate negated atoms by a small
``strict_eps``.  The UFDI system is homogeneous, so any attack scales
into the box; only solutions requiring a dynamic range beyond ``B/eps``
could be missed.  The SMT backend has no such limit and is the reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.attacks.vector import AttackVector
from repro.smt.solver import Model


@dataclass
class MilpResult:
    """Outcome of a MILP feasibility solve."""

    outcome: "VerificationOutcome"
    attack: Optional[AttackVector]
    statistics: Dict[str, int] = field(default_factory=dict)


def solve_encoder_milp(
    encoder,
    secured_buses: Sequence[int] = (),
    secured_measurements: Sequence[int] = (),
    box: float = 1e4,
    strict_eps: float = 1e-6,
    time_limit: Optional[float] = None,
    max_refinements: int = 200,
    _retry_boxes: Sequence[float] = (1e3, 1e2),
) -> MilpResult:
    """Decide the encoder's formula: HiGHS enumeration + exact refinement.

    HiGHS works within floating-point feasibility tolerances, which on
    tightly resource-constrained instances can admit *spurious* integer
    solutions (a "zero" delta of 1e-6 slipping past a cardinality
    limit).  Every candidate integer assignment is therefore re-checked
    **exactly**: the boolean atom values are asserted into a fresh
    rational simplex; if consistent the attack is extracted from the
    exact simplex model, otherwise the simplex conflict explanation is
    added to the MILP as a cut and the solve repeats — a lazy DPLL(T)
    loop with HiGHS as the boolean enumerator.  SAT answers are thus
    exact; SECURE answers inherit MILP completeness up to the ``box``
    bound on continuous variables (harmless for the homogeneous UFDI
    system; see module docstring).

    ``secured_buses``/``secured_measurements`` mirror the assumption
    mechanism of :meth:`UfdiEncoder.check` (requires an encoder built
    with ``symbolic_security=True``).
    """
    from repro.core.verification import VerificationOutcome

    cnf = encoder.solver._cnf
    num_bin = cnf.num_vars
    num_real = encoder.solver._next_real
    n_cols = num_bin + num_real

    rows: List[Tuple[Dict[int, float], float, float]] = []  # (coeffs, lb, ub)

    def real_col(real_index: int) -> int:
        return num_bin + real_index

    def add_clause_row(clause: Sequence[int]) -> None:
        coeffs: Dict[int, float] = {}
        lb = 1.0
        for lit in clause:
            col = abs(lit) - 1
            if lit > 0:
                coeffs[col] = coeffs.get(col, 0.0) + 1.0
            else:
                coeffs[col] = coeffs.get(col, 0.0) - 1.0
                lb -= 1.0
        rows.append((coeffs, lb, np.inf))

    for clause in cnf.clauses:
        add_clause_row(clause)

    # atom indicator links
    for sat_var, (coeff_items, op, bound) in cnf.atom_of_var.items():
        bcol = sat_var - 1
        expr = {real_col(ri): float(c) for ri, c in coeff_items}
        b = float(bound)
        big_m = sum(abs(c) for c in expr.values()) * box + abs(b) + 1.0
        if op == "<=":
            # x=1 -> e <= b        : e + M x <= b + M
            rows.append(({**expr, bcol: big_m}, -np.inf, b + big_m))
            # x=0 -> e >= b + eps  : e + M x >= b + eps
            rows.append(({**expr, bcol: big_m}, b + strict_eps, np.inf))
        else:
            # x=1 -> e >= b        : e - M x >= b - M
            rows.append(({**expr, bcol: -big_m}, b - big_m, np.inf))
            # x=0 -> e <= b - eps  : e - M x <= b - eps
            rows.append(({**expr, bcol: -big_m}, -np.inf, b - strict_eps))

    # assumptions: pin securing binaries
    fixed_ones: List[int] = []
    for bus in secured_buses:
        fixed_ones.append(cnf.var_for_bool(encoder.sb[bus]) - 1)
    for meas in secured_measurements:
        sz = encoder.sz.get(meas)
        if sz is not None:
            fixed_ones.append(cnf.var_for_bool(sz) - 1)

    lower = np.concatenate([np.zeros(num_bin), -box * np.ones(num_real)])
    upper = np.concatenate([np.ones(num_bin), box * np.ones(num_real)])
    for col in fixed_ones:
        lower[col] = 1.0

    integrality = np.concatenate([np.ones(num_bin), np.zeros(num_real)])
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit

    stats = {
        "milp_binaries": num_bin,
        "milp_continuous": num_real,
        "milp_refinements": 0,
    }
    for _ in range(max_refinements):
        data, row_idx, col_idx = [], [], []
        lbs, ubs = [], []
        for r, (coeffs, lb, ub) in enumerate(rows):
            for col, value in coeffs.items():
                row_idx.append(r)
                col_idx.append(col)
                data.append(value)
            lbs.append(lb)
            ubs.append(ub)
        a = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(rows), n_cols)
        )
        res = milp(
            c=np.zeros(n_cols),
            constraints=LinearConstraint(a, np.array(lbs), np.array(ubs)),
            integrality=integrality,
            bounds=Bounds(lower, upper),
            options=options,
        )
        stats["milp_constraints"] = len(rows)
        if res.status == 2:  # proven infeasible
            return MilpResult(VerificationOutcome.SECURE, None, stats)
        if res.status != 0:
            # status 4 is a HiGHS numerical failure, typically from
            # big-M conditioning; retry with a tighter variable box
            # (sound here: the UFDI system is homogeneous, so attacks
            # rescale into any box)
            if _retry_boxes:
                return solve_encoder_milp(
                    encoder,
                    secured_buses=secured_buses,
                    secured_measurements=secured_measurements,
                    box=_retry_boxes[0],
                    strict_eps=strict_eps,
                    time_limit=time_limit,
                    max_refinements=max_refinements,
                    _retry_boxes=_retry_boxes[1:],
                )
            return MilpResult(VerificationOutcome.UNKNOWN, None, stats)
        assignment = [False] + [x > 0.5 for x in res.x[:num_bin]]  # 1-based
        exact = _exact_theory_check(cnf, assignment)
        if isinstance(exact, dict):  # consistent: exact real values
            model = _exact_model(encoder, assignment, exact)
            return MilpResult(
                VerificationOutcome.ATTACK_EXISTS,
                encoder.extract_attack(model=model),
                stats,
            )
        # inconsistent: add the conflict explanation as a cut
        stats["milp_refinements"] += 1
        add_clause_row([-lit for lit in exact])
    return MilpResult(VerificationOutcome.UNKNOWN, None, stats)


def _exact_theory_check(cnf, assignment: Sequence[bool]):
    """Exact simplex check of an integer assignment's theory literals.

    Returns a dict ``real_index -> Fraction`` when consistent, or the
    list of conflicting atom literals otherwise.
    """
    from repro.smt.simplex import DeltaRational, Simplex
    from repro.smt.theory import LraTheory

    theory = LraTheory()
    for sat_var, atom in cnf.atom_of_var.items():
        theory.register_atom(sat_var, atom)
    for sat_var in cnf.atom_of_var:
        lit = sat_var if assignment[sat_var] else -sat_var
        conflict = theory.assert_lit(lit, sat_var)
        if conflict is not None:
            return conflict
    conflict = theory.check()
    if conflict is not None:
        return conflict
    return theory.real_values()


def _exact_model(encoder, assignment: Sequence[bool], reals: Dict[int, Fraction]) -> Model:
    """Build a Model from a verified integer assignment + exact reals."""
    cnf = encoder.solver._cnf
    bools: Dict[int, bool] = {}
    for bool_index, sat_var in cnf._bool_vars.items():
        bools[bool_index] = assignment[sat_var]
    return Model(bools, dict(reals))
