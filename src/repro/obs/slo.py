"""Declarative SLOs with multi-window burn-rate alerting.

An **SLO** states an objective over a request-class metric already in
the registry — "99.9% of HTTP requests answer without a 5xx", "99% of
requests finish under 500 ms", "99.9% of jobs reach ``done``" — and the
evaluator turns the raw counters/histograms into the Google-SRE
burn-rate model:

* the **error budget** for objective *o* is the allowed bad fraction
  ``1 - o``;
* the **burn rate** over a window is ``bad_rate / (1 - o)`` — 1.0 means
  "spending the budget exactly as fast as allowed";
* an alert fires when the burn rate exceeds a window's threshold in
  **both** a short and a long window (``5m``/``1h`` at 14.4x for fast
  burns, ``6h``/``3d`` at 1.0x for slow leaks) — the short window makes
  alerts reset quickly, the long one suppresses blips.

The evaluator is deliberately **pull-based and deterministic**: callers
feed it parsed metric families (:func:`repro.obs.agg.parse_text` on a
local registry render, or the cluster merge on the router) at whatever
cadence they like, and the clock is injected so tests can replay exact
timelines.  Cumulative good/total counts are ring-buffered per SLO;
window rates difference the closest sample at-or-before the window
start (falling back to the oldest sample while history is shorter than
the window — a young process alerts on its lifetime rate, which is the
conservative choice).

Rising-edge semantics: one alert **event** per SLO when it transitions
into the alerting state (severity = worst alerting window); the event
carries the burn rates, remaining budget and — when the metric (or a
configured ``exemplar_metric``) holds trace exemplars — a trace id
linking the breach to a renderable trace.  Events feed
``monitor/incidents.py`` as first-class ``slo_burn`` incidents and the
``repro_slo_*`` metrics; current state is served by ``GET /sloz``.
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs import metrics as obs_metrics
from repro.obs.agg import Family, Sample

#: label added by the cluster merge to per-replica duplicates; the
#: evaluator always skips it so merged scrapes are not double-counted
_REPLICA_LABEL = "replica"


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window burn-rate alerting rule."""

    name: str
    short_seconds: float
    long_seconds: float
    burn_threshold: float
    severity: str = "major"


#: the canonical Google-SRE page/ticket pair
DEFAULT_WINDOWS: Tuple[BurnWindow, ...] = (
    BurnWindow("fast", 300.0, 3600.0, 14.4, "critical"),
    BurnWindow("slow", 21600.0, 259200.0, 1.0, "major"),
)


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective over a registry metric.

    ``kind`` is ``availability`` (a labeled counter; samples whose
    ``bad_label`` value matches ``bad_prefix``/``bad_values`` are bad)
    or ``latency`` (a histogram; samples above ``threshold_seconds`` —
    snapped to the nearest bucket bound — are bad).
    """

    name: str
    objective: float
    kind: str
    metric: str
    labels: Tuple[Tuple[str, str], ...] = ()
    threshold_seconds: Optional[float] = None
    bad_label: str = "status"
    bad_prefix: Optional[str] = "5"
    bad_values: Tuple[str, ...] = ()
    exemplar_metric: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"slo {self.name}: objective must be in (0, 1)")
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"slo {self.name}: unknown kind {self.kind!r}")
        if self.kind == "latency" and self.threshold_seconds is None:
            raise ValueError(f"slo {self.name}: latency needs threshold_seconds")

    def is_bad(self, value: Optional[str]) -> bool:
        if value is None:
            return False
        if self.bad_values:
            return value in self.bad_values
        if self.bad_prefix:
            return value.startswith(self.bad_prefix)
        return False


#: served by ``repro serve --slo`` when no config file is given
DEFAULT_SLOS: Tuple[SloObjective, ...] = (
    SloObjective(
        name="availability",
        objective=0.999,
        kind="availability",
        metric="repro_http_requests_total",
        bad_label="status",
        bad_prefix="5",
        exemplar_metric="repro_http_request_seconds",
    ),
    SloObjective(
        name="latency",
        objective=0.99,
        kind="latency",
        metric="repro_http_request_seconds",
        threshold_seconds=0.5,
    ),
    SloObjective(
        name="jobs",
        objective=0.999,
        kind="availability",
        metric="repro_jobs_finished_total",
        bad_label="state",
        bad_prefix=None,
        bad_values=("failed", "timeout"),
        exemplar_metric="repro_job_run_seconds",
    ),
)


@dataclass
class SloConfig:
    slos: Tuple[SloObjective, ...] = DEFAULT_SLOS
    windows: Tuple[BurnWindow, ...] = DEFAULT_WINDOWS
    interval_seconds: float = 5.0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "interval_seconds": self.interval_seconds,
            "windows": [
                {
                    "name": w.name,
                    "short_seconds": w.short_seconds,
                    "long_seconds": w.long_seconds,
                    "burn_threshold": w.burn_threshold,
                    "severity": w.severity,
                }
                for w in self.windows
            ],
            "slos": [
                {
                    "name": s.name,
                    "objective": s.objective,
                    "kind": s.kind,
                    "metric": s.metric,
                    "labels": dict(s.labels),
                    "threshold_seconds": s.threshold_seconds,
                    "bad_label": s.bad_label,
                    "bad_prefix": s.bad_prefix,
                    "bad_values": list(s.bad_values),
                    "exemplar_metric": s.exemplar_metric,
                }
                for s in self.slos
            ],
        }


def _objective_from_payload(payload: Mapping[str, Any]) -> SloObjective:
    return SloObjective(
        name=str(payload["name"]),
        objective=float(payload["objective"]),
        kind=str(payload.get("kind", "availability")),
        metric=str(payload["metric"]),
        labels=tuple(sorted((str(k), str(v)) for k, v in dict(
            payload.get("labels", {})
        ).items())),
        threshold_seconds=(
            None
            if payload.get("threshold_seconds") is None
            else float(payload["threshold_seconds"])
        ),
        bad_label=str(payload.get("bad_label", "status")),
        bad_prefix=(
            None if payload.get("bad_prefix") is None else str(payload["bad_prefix"])
        ),
        bad_values=tuple(str(v) for v in payload.get("bad_values", ())),
        exemplar_metric=(
            None
            if payload.get("exemplar_metric") is None
            else str(payload["exemplar_metric"])
        ),
    )


def load_slo_config(path: Union[str, Path, None] = None) -> SloConfig:
    """Load a JSON SLO config; ``None`` returns the built-in defaults.

    Schema (every field optional, see ``docs/OBSERVABILITY.md``)::

        {"interval_seconds": 5,
         "windows": [{"name": "fast", "short_seconds": 300,
                      "long_seconds": 3600, "burn_threshold": 14.4,
                      "severity": "critical"}, ...],
         "slos": [{"name": "latency", "objective": 0.99,
                   "kind": "latency",
                   "metric": "repro_http_request_seconds",
                   "threshold_seconds": 0.5}, ...]}
    """
    if path is None:
        return SloConfig()
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError("SLO config must be a JSON object")
    config = SloConfig()
    if "interval_seconds" in payload:
        config.interval_seconds = float(payload["interval_seconds"])
    if "windows" in payload:
        config.windows = tuple(
            BurnWindow(
                name=str(w["name"]),
                short_seconds=float(w["short_seconds"]),
                long_seconds=float(w["long_seconds"]),
                burn_threshold=float(w["burn_threshold"]),
                severity=str(w.get("severity", "major")),
            )
            for w in payload["windows"]
        )
    if "slos" in payload:
        config.slos = tuple(
            _objective_from_payload(s) for s in payload["slos"]
        )
    if not config.slos:
        raise ValueError("SLO config declares no slos")
    return config


# ----------------------------------------------------------------------
# extraction from parsed metric families
# ----------------------------------------------------------------------
def _matches(sample: Sample, slo: SloObjective) -> bool:
    if sample.label(_REPLICA_LABEL) is not None:
        return False  # merged-scrape duplicate of a per-replica series
    for key, value in slo.labels:
        if sample.label(key) != value:
            return False
    return True


def _availability_counts(
    family: Optional[Family], slo: SloObjective
) -> Tuple[float, float]:
    good = total = 0.0
    if family is None:
        return good, total
    for sample in family.samples:
        if not _matches(sample, slo):
            continue
        total += sample.value
        if not slo.is_bad(sample.label(slo.bad_label)):
            good += sample.value
    return good, total


def _latency_counts(
    family: Optional[Family], slo: SloObjective
) -> Tuple[float, float]:
    """good = cumulative count at the largest bucket bound <= threshold."""
    good = total = 0.0
    if family is None:
        return good, total
    threshold = float(slo.threshold_seconds or 0.0)
    # per labelset (minus le): the largest declared bound <= threshold
    best_bound: Dict[Tuple, float] = {}
    bucket_value: Dict[Tuple, Dict[float, float]] = {}
    for sample in family.samples:
        if not _matches(sample, slo):
            continue
        if sample.name == f"{slo.metric}_count":
            total += sample.value
        elif sample.name == f"{slo.metric}_bucket":
            le = sample.label("le", "+Inf")
            bound = math.inf if le == "+Inf" else float(le)
            key = sample.without_labels("le")
            bucket_value.setdefault(key, {})[bound] = sample.value
            if bound <= threshold:
                best_bound[key] = max(best_bound.get(key, -math.inf), bound)
    for key, buckets in bucket_value.items():
        bound = best_bound.get(key)
        if bound is not None:
            good += buckets.get(bound, 0.0)
    return good, total


def _find_exemplar(
    families: Mapping[str, Family], slo: SloObjective
) -> Optional[str]:
    """Newest bad-bucket exemplar trace id for this SLO, if any.

    Prefers buckets *above* the latency threshold (those are the
    breaching samples); for availability SLOs the configured
    ``exemplar_metric`` histogram is searched the same way with a zero
    threshold (any exemplar qualifies).
    """
    metric = slo.exemplar_metric or (
        slo.metric if slo.kind == "latency" else None
    )
    if metric is None:
        return None
    family = families.get(metric)
    if family is None:
        return None
    threshold = float(slo.threshold_seconds or 0.0) if slo.kind == "latency" else 0.0
    best: Optional[Tuple[float, str]] = None
    for sample in family.samples:
        if sample.exemplar is None or not sample.name.endswith("_bucket"):
            continue
        le = sample.label("le", "+Inf")
        bound = math.inf if le == "+Inf" else float(le)
        trace_id, _, stamp = sample.exemplar
        if not trace_id or bound <= threshold:
            continue
        if best is None or stamp >= best[0]:
            best = (stamp, trace_id)
    return best[1] if best else None


# ----------------------------------------------------------------------
# the evaluator
# ----------------------------------------------------------------------
class SloEvaluator:
    """Ring-buffered burn-rate evaluation over sampled metric families."""

    def __init__(
        self,
        config: Optional[SloConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        record_metrics: bool = True,
        registry: Optional[obs_metrics.MetricsRegistry] = None,
    ) -> None:
        self.config = config or SloConfig()
        self.clock = clock or time.time
        self._history: Dict[str, Deque[Tuple[float, float, float]]] = {
            slo.name: deque() for slo in self.config.slos
        }
        self._active: Dict[str, bool] = {slo.name: False for slo in self.config.slos}
        self._exemplars: Dict[str, Optional[str]] = {}
        self._alerts: List[Dict[str, Any]] = []
        self._max_alerts = 64
        self._last_status: Dict[str, Dict[str, Any]] = {}
        self._horizon = max(
            (w.long_seconds for w in self.config.windows), default=259200.0
        )
        self._metrics_enabled = record_metrics
        reg = registry if registry is not None else obs_metrics.get_registry()
        if record_metrics:
            self._g_burn = reg.gauge(
                "repro_slo_burn_rate",
                "Error-budget burn rate per SLO and alert window",
                labels=("slo", "window"),
            )
            self._g_budget = reg.gauge(
                "repro_slo_error_budget_remaining",
                "Fraction of the error budget left over the longest window",
                labels=("slo",),
            )
            self._c_alerts = reg.counter(
                "repro_slo_alerts_total",
                "Burn-rate alerts fired (rising edges)",
                labels=("slo", "severity"),
            )

    # ------------------------------------------------------------------
    def sample(self, families: Mapping[str, Family]) -> List[Dict[str, Any]]:
        """Ingest one scrape; returns newly fired alert events (if any)."""
        now = self.clock()
        fired: List[Dict[str, Any]] = []
        for slo in self.config.slos:
            family = families.get(slo.metric)
            if slo.kind == "latency":
                good, total = _latency_counts(family, slo)
            else:
                good, total = _availability_counts(family, slo)
            history = self._history[slo.name]
            history.append((now, good, total))
            while len(history) > 2 and history[1][0] <= now - self._horizon:
                history.popleft()
            exemplar = _find_exemplar(families, slo)
            if exemplar is not None:
                self._exemplars[slo.name] = exemplar

            burns: Dict[str, Dict[str, float]] = {}
            alerting: List[BurnWindow] = []
            for window in self.config.windows:
                short = self._burn_rate(slo, window.short_seconds, now)
                long = self._burn_rate(slo, window.long_seconds, now)
                burns[window.name] = {
                    "short": short,
                    "long": long,
                    "threshold": window.burn_threshold,
                }
                if (
                    short > window.burn_threshold
                    and long > window.burn_threshold
                ):
                    alerting.append(window)
                if self._metrics_enabled:
                    self._g_burn.set(short, slo=slo.name, window=window.name)

            budget = self._budget_remaining(slo, now)
            if self._metrics_enabled:
                self._g_budget.set(budget, slo=slo.name)

            was_active = self._active[slo.name]
            is_active = bool(alerting)
            self._active[slo.name] = is_active
            status = {
                "name": slo.name,
                "kind": slo.kind,
                "metric": slo.metric,
                "objective": slo.objective,
                "good": good,
                "total": total,
                "budget_remaining": budget,
                "burn_rates": burns,
                "alerting": is_active,
                "exemplar_trace_id": self._exemplars.get(slo.name),
                "sampled_at": now,
            }
            self._last_status[slo.name] = status
            if is_active and not was_active:
                severity = max(
                    (w.severity for w in alerting),
                    key=_severity_rank,
                )
                event = {
                    "slo": slo.name,
                    "severity": severity,
                    "windows": [w.name for w in alerting],
                    "burn_rates": burns,
                    "budget_remaining": budget,
                    "objective": slo.objective,
                    "metric": slo.metric,
                    "exemplar_trace_id": self._exemplars.get(slo.name),
                    "fired_at": now,
                }
                self._alerts.append(event)
                del self._alerts[: -self._max_alerts]
                fired.append(event)
                if self._metrics_enabled:
                    self._c_alerts.inc(slo=slo.name, severity=severity)
        return fired

    def sample_text(self, exposition: str) -> List[Dict[str, Any]]:
        """:func:`repro.obs.agg.parse_text` + :meth:`sample`."""
        from repro.obs.agg import parse_text

        return self.sample(parse_text(exposition))

    # ------------------------------------------------------------------
    def _window_delta(
        self, slo_name: str, window: float, now: float
    ) -> Tuple[float, float]:
        history = self._history[slo_name]
        if not history:
            return 0.0, 0.0
        newest = history[-1]
        baseline = history[0]
        start = now - window
        for entry in history:
            if entry[0] <= start:
                baseline = entry
            else:
                break
        return newest[1] - baseline[1], newest[2] - baseline[2]

    def _burn_rate(self, slo: SloObjective, window: float, now: float) -> float:
        dgood, dtotal = self._window_delta(slo.name, window, now)
        if dtotal <= 0:
            return 0.0
        bad_rate = max(0.0, (dtotal - dgood) / dtotal)
        return bad_rate / (1.0 - slo.objective)

    def _budget_remaining(self, slo: SloObjective, now: float) -> float:
        burn = self._burn_rate(slo, self._horizon, now)
        return 1.0 - burn

    # ------------------------------------------------------------------
    def alerts(self) -> List[Dict[str, Any]]:
        """Every alert event fired so far (bounded, oldest first)."""
        return list(self._alerts)

    def status(self) -> Dict[str, Any]:
        """The ``GET /sloz`` payload: config, per-SLO state, alerts."""
        return {
            "config": self.config.to_payload(),
            "slos": [
                self._last_status.get(slo.name, {"name": slo.name})
                for slo in self.config.slos
            ],
            "alerts": self.alerts(),
        }


def _severity_rank(severity: str) -> int:
    order = ("info", "minor", "major", "critical")
    try:
        return order.index(severity)
    except ValueError:
        return 0


def alert_to_incident_payload(event: Mapping[str, Any], seq: int) -> Dict[str, Any]:
    """An alert event as a ``monitor`` incident payload (``slo_burn``).

    ``seq`` numbers alerts within the process so incident ids stay
    unique and deterministic given the alert order.
    """
    return {
        "id": f"slo_burn-{seq:05d}-00",
        "kind": "slo_burn",
        "severity": str(event.get("severity", "major")),
        "tick": seq,
        "detector": "slo",
        "evidence_ticks": [],
        "evidence": {
            "slo": event.get("slo"),
            "metric": event.get("metric"),
            "objective": event.get("objective"),
            "windows": event.get("windows"),
            "burn_rates": event.get("burn_rates"),
            "budget_remaining": event.get("budget_remaining"),
        },
        "trace_id": event.get("exemplar_trace_id"),
        "created_at": event.get("fired_at"),
    }
