"""Metrics registry with Prometheus text exposition.

Counters, gauges and histograms with label support, registered once at
module import by the instrumented layers (queue, batching, runtime
cache, portfolio, sessions, solver) and served by ``GET /metricsz`` in
the Prometheus text format (version 0.0.4) or dumped by the ``repro
metrics`` CLI.

Design constraints:

* stdlib only, thread-safe (instruments are touched from the event
  loop, executor threads and the CLI);
* instruments are **process-global**: the registry is a singleton and
  re-registering a name returns the existing instrument (with a
  type/label-compatibility check), so every layer can declare its
  metrics at import time without coordination.  Pool *worker* processes
  have their own (discarded) registry — cross-process counters are fed
  in the submitting process from the returned result statistics;
* recording is cheap (one lock + dict update) and never on the solver's
  per-pivot hot path — solver totals are credited once per solve from
  ``VerificationResult.statistics``;
* a family with no observations still renders its ``# HELP``/``# TYPE``
  header, so scrapes can discover the full catalog from a fresh
  process.

``REPRO_METRICS=0`` turns every record call into a no-op (rendering
still works and shows the empty catalog).
"""

from __future__ import annotations

import math
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.trace import current_context as _current_span_context

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")
_LABEL_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")

#: default latency buckets, in seconds (solver work spans ~1 ms .. minutes)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(ch not in _NAME_OK for ch in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels: Sequence[str]) -> Tuple[str, ...]:
    out = tuple(labels)
    for label in out:
        if (
            not label
            or label[0].isdigit()
            or label.startswith("__")
            or any(ch not in _LABEL_OK for ch in label)
        ):
            raise ValueError(f"invalid label name {label!r}")
    return out


def _escape_label_value(value: Any) -> str:
    text = str(value)
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_exemplar(exemplar: Tuple[str, float, float]) -> str:
    """OpenMetrics-style exemplar suffix for a ``_bucket`` sample line."""
    trace_id, value, stamp = exemplar
    return (
        f' # {{trace_id="{_escape_label_value(trace_id)}"}} '
        f"{_format_value(float(value))} {_format_value(float(stamp))}"
    )


class _Metric:
    """Shared machinery: label handling and the per-labelset value map."""

    kind = "untyped"

    def __init__(
        self, registry: "MetricsRegistry", name: str, help: str, labels: Sequence[str]
    ) -> None:
        self.registry = registry
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labels(labels)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _series(self, key: Tuple[str, ...]) -> str:
        if not self.labelnames:
            return self.name
        inner = ",".join(
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, key)
        )
        return f"{self.name}{{{inner}}}"

    def _enabled(self) -> bool:
        return self.registry.enabled


class Counter(_Metric):
    """Monotonically increasing count (``repro_jobs_submitted_total``)."""

    kind = "counter"

    def __init__(self, registry, name, help, labels) -> None:
        super().__init__(registry, name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._enabled():
            return
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not self.labelnames and not items:
            items = [((), 0.0)]
        return [f"{self._series(k)} {_format_value(v)}" for k, v in items]

    def _snapshot(self) -> Any:
        with self._lock:
            if not self.labelnames:
                return self._values.get((), 0.0)
            return {",".join(k): v for k, v in sorted(self._values.items())}

    def _reset(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(_Metric):
    """A value that can go up and down (``repro_queue_depth``)."""

    kind = "gauge"

    def __init__(self, registry, name, help, labels) -> None:
        super().__init__(registry, name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        if not self._enabled():
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._enabled():
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    _render = Counter._render
    _snapshot = Counter._snapshot
    _reset = Counter._reset


class Histogram(_Metric):
    """Cumulative-bucket distribution (latencies, batch sizes).

    Each ``(labelset, bucket)`` pair keeps at most one **exemplar** — the
    trace id, raw value and wall timestamp of the last sample that landed
    natively in that bucket — so dashboards can jump from "p99 got worse"
    straight to a renderable trace.  Exemplars are captured from the
    ambient span context (or an explicit ``exemplar=`` trace id) and only
    rendered when present, so expositions without tracing are unchanged.
    """

    kind = "histogram"

    def __init__(self, registry, name, help, labels, buckets) -> None:
        super().__init__(registry, name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}
        self._totals: Dict[Tuple[str, ...], int] = {}
        # labelset -> bucket index (len(bounds) = +Inf) -> (trace_id, value, ts)
        self._exemplar_map: Dict[Tuple[str, ...], Dict[int, Tuple[str, float, float]]] = {}

    def observe(
        self, value: float, exemplar: Optional[str] = None, **labels: Any
    ) -> None:
        if not self._enabled():
            return
        key = self._key(labels)
        value = float(value)
        if exemplar is None:
            ctx = _current_span_context()
            if ctx is not None:
                exemplar = ctx.trace_id
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * len(self.bounds)
                self._counts[key] = counts
            native = len(self.bounds)  # +Inf unless a finite bucket fits
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[i] += 1
                    if i < native:
                        native = i
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1
            if exemplar:
                self._exemplar_map.setdefault(key, {})[native] = (
                    str(exemplar),
                    value,
                    time.time(),
                )

    def exemplars(self, **labels: Any) -> Dict[float, Tuple[str, float, float]]:
        """Bucket bound (``math.inf`` for +Inf) -> (trace_id, value, ts)."""
        key = self._key(labels)
        with self._lock:
            stored = dict(self._exemplar_map.get(key, {}))
        bounds = self.bounds + (math.inf,)
        return {bounds[i]: ex for i, ex in sorted(stored.items())}

    def set_exemplar(
        self, value: float, trace_id: str, stamp: Optional[float] = None, **labels: Any
    ) -> None:
        """Attach an exemplar without changing counts (cross-process credit)."""
        if not self._enabled() or not trace_id:
            return
        key = self._key(labels)
        value = float(value)
        native = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                native = i
                break
        with self._lock:
            self._exemplar_map.setdefault(key, {})[native] = (
                str(trace_id),
                value,
                time.time() if stamp is None else float(stamp),
            )

    def count(self, **labels: Any) -> int:
        key = self._key(labels)
        with self._lock:
            return self._totals.get(key, 0)

    def sum(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def _render(self) -> List[str]:
        with self._lock:
            keys = sorted(self._totals)
            if not self.labelnames and not keys:
                keys = [()]
            lines: List[str] = []
            for key in keys:
                counts = self._counts.get(key, [0] * len(self.bounds))
                exemplars = self._exemplar_map.get(key, {})
                # observe() increments every bucket the value fits in, so
                # counts are already cumulative as the format requires
                for i, (bound, count) in enumerate(zip(self.bounds, counts)):
                    line = f"{self._bucket_series(key, _format_value(bound))} {count}"
                    if i in exemplars:
                        line += _format_exemplar(exemplars[i])
                    lines.append(line)
                total = self._totals.get(key, 0)
                line = f"{self._bucket_series(key, '+Inf')} {total}"
                if len(self.bounds) in exemplars:
                    line += _format_exemplar(exemplars[len(self.bounds)])
                lines.append(line)
                lines.append(
                    f"{self._suffix_series(key, '_sum')} "
                    f"{_format_value(self._sums.get(key, 0.0))}"
                )
                lines.append(f"{self._suffix_series(key, '_count')} {total}")
            return lines

    def _bucket_series(self, key: Tuple[str, ...], le: str) -> str:
        pairs = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        pairs.append(f'le="{le}"')
        return f"{self.name}_bucket{{{','.join(pairs)}}}"

    def _suffix_series(self, key: Tuple[str, ...], suffix: str) -> str:
        base = self._series(key)
        if "{" in base:
            name, rest = base.split("{", 1)
            return f"{name}{suffix}{{{rest}"
        return f"{base}{suffix}"

    def _snapshot(self) -> Any:
        with self._lock:
            return {
                "buckets": list(self.bounds),
                "series": {
                    ",".join(k) if k else "": {
                        "counts": list(self._counts.get(k, [])),
                        "sum": self._sums.get(k, 0.0),
                        "count": total,
                    }
                    for k, total in sorted(self._totals.items())
                },
            }

    def _reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._sums.clear()
            self._totals.clear()
            self._exemplar_map.clear()


class MetricsRegistry:
    """Name -> instrument map with get-or-create registration."""

    def __init__(self) -> None:
        self._metrics: "Dict[str, _Metric]" = {}
        self._lock = threading.Lock()
        self.enabled = os.environ.get("REPRO_METRICS", "1") not in ("", "0")

    # ------------------------------------------------------------------
    def _register(self, cls, name: str, help: str, labels: Sequence[str], **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labels
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with a different "
                        f"type or label set"
                    )
                return existing
            metric = cls(self, name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The full catalog in Prometheus text exposition format 0.0.4."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            if metric.help:
                escaped = metric.help.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {metric.name} {escaped}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric._render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view of every instrument (CLI, tests)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {
            name: {"type": metric.kind, "value": metric._snapshot()}
            for name, metric in sorted(metrics.items())
        }

    def reset(self) -> None:
        """Zero every instrument (test isolation); registrations remain."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()


# ----------------------------------------------------------------------
# the process-global registry
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every instrumented layer registers on."""
    return _registry


def counter(name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
    return _registry.counter(name, help=help, labels=labels)


def gauge(name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
    return _registry.gauge(name, help=help, labels=labels)


def histogram(
    name: str,
    help: str = "",
    labels: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> Histogram:
    return _registry.histogram(name, help=help, labels=labels, buckets=buckets)


def record_build_info(registry: Optional[MetricsRegistry] = None) -> Gauge:
    """Set the ``repro_build_info`` gauge on ``registry`` (default global).

    One series with value 1 whose labels identify everything a fleet
    audit needs to spot skew between replicas: the full engine
    signature, the package version, and the resolved theory-kernel and
    SAT search-configuration switches.  Imported lazily so the metrics
    module stays dependency-free for pool workers.
    """
    from repro import __version__
    from repro.smt import solver as _solver

    reg = registry if registry is not None else _registry
    build_info = reg.gauge(
        "repro_build_info",
        "Build/configuration identity of this process (value is always 1)",
        labels=("engine_signature", "version", "kernel", "sat_config"),
    )
    build_info.set(
        1,
        engine_signature=_solver.engine_signature(),
        version=__version__,
        kernel=_solver._resolve_kernel(None),
        sat_config=_solver._resolve_sat_config(None).token(),
    )
    return build_info
