"""Flight recorder: always-on crash forensics for served requests.

Postmortems used to depend on having had tracing pre-enabled *and* on
the interesting trace still being in the tracer ring by the time a
human looked.  The flight recorder closes that gap: while enabled it
keeps the tracer ring warm, buffers recent trace-correlated log
records, and — when something goes wrong — **freezes a snapshot** of
everything known about the offending trace:

* the full span tree from the tracer ring (never partial: the ring
  evicts whole traces, see :class:`repro.obs.trace.Tracer`);
* correlated structured-log records (subscribed via
  :func:`repro.obs.logging.add_log_listener`);
* solver statistics and runtime attributes as recorded on the spans;
* the trigger reason and free-form detail from the triggering layer.

Trigger points (wired in ``service/http.py``, ``service/jobs.py``,
``monitor/engine.py`` and the SLO monitor): HTTP 5xx answers, job
failures and deadline misses, SLO burn-rate alerts, and major/critical
monitor incidents.  Snapshots are **redacted** before they are stored
or written to the JSONL sink — attribute keys that may carry problem
payloads (specs, measurements, attack witnesses) are dropped and long
strings truncated — because ``GET /debugz/flight`` is a debugging
endpoint, not a data-export one.

Everything is bounded: at most ``max_snapshots`` snapshots (oldest
dropped) and ``max_logs`` buffered log records.  Disabled (the
default) the recorder is a shared no-op with zero per-request cost.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

from repro.obs import logging as obs_logging
from repro.obs import trace as obs_trace

#: span-attribute / log-field keys dropped wholesale by redaction
DEFAULT_REDACT_KEYS = frozenset(
    {
        "spec",
        "spec_text",
        "payload",
        "body",
        "attack",
        "witness",
        "measurements",
        "readings",
        "settings",
        "architecture",
    }
)

#: strings longer than this are truncated in snapshots
DEFAULT_MAX_STRING = 512


def _redact(value: Any, redact_keys: frozenset, max_string: int) -> Any:
    if isinstance(value, dict):
        return {
            key: _redact(item, redact_keys, max_string)
            for key, item in value.items()
            if str(key).lower() not in redact_keys
        }
    if isinstance(value, (list, tuple)):
        return [_redact(item, redact_keys, max_string) for item in value]
    if isinstance(value, str) and len(value) > max_string:
        return value[:max_string] + f"…[truncated {len(value) - max_string} chars]"
    return value


class FlightRecorder:
    """Bounded snapshot store keyed by trigger events."""

    enabled = True

    def __init__(
        self,
        max_snapshots: int = 32,
        max_logs: int = 512,
        sink_path: Optional[Union[str, Path]] = None,
        redact_keys: frozenset = DEFAULT_REDACT_KEYS,
        max_string: int = DEFAULT_MAX_STRING,
    ) -> None:
        self.sink_path = Path(sink_path).expanduser() if sink_path else None
        self.redact_keys = frozenset(str(k).lower() for k in redact_keys)
        self.max_string = max_string
        self._snapshots: Deque[Dict[str, Any]] = deque(maxlen=max_snapshots)
        self._logs: Deque[Dict[str, Any]] = deque(maxlen=max_logs)
        self._lock = threading.Lock()
        self.counters = {
            "triggers": 0,
            "snapshots": 0,
            "duplicates": 0,
            "sink_errors": 0,
        }

    # ------------------------------------------------------------------
    def record_log(self, record: Dict[str, Any]) -> None:
        """Log-listener hook: buffer records that carry a trace id."""
        if record.get("trace_id"):
            with self._lock:
                self._logs.append(record)

    # ------------------------------------------------------------------
    def trigger(
        self,
        reason: str,
        trace_id: Optional[str] = None,
        detail: Optional[Dict[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Freeze a snapshot for ``trace_id`` (dedup'd per trace+reason).

        Returns the stored snapshot, or None when an identical
        ``(reason, trace_id)`` snapshot already exists (the dedup keeps
        a retry storm from flushing older evidence out of the ring).
        """
        with self._lock:
            self.counters["triggers"] += 1
            if trace_id and any(
                s["trace_id"] == trace_id and s["reason"] == reason
                for s in self._snapshots
            ):
                self.counters["duplicates"] += 1
                return None

        tracer = obs_trace.get_tracer()
        spans = tracer.finished_spans(trace_id) if trace_id else []
        with self._lock:
            logs = [
                record
                for record in self._logs
                if trace_id and record.get("trace_id") == trace_id
            ]
        solver_stats = [
            {
                "span": span.get("name"),
                "stats": span.get("attributes", {}).get("stats"),
            }
            for span in spans
            if isinstance(span.get("attributes"), dict)
            and "stats" in span.get("attributes", {})
        ]
        snapshot = _redact(
            {
                "reason": reason,
                "trace_id": trace_id,
                "detail": dict(detail or {}),
                "frozen_at": time.time(),
                "span_count": len(spans),
                "spans": spans,
                "logs": logs,
                "solver_stats": solver_stats,
            },
            self.redact_keys,
            self.max_string,
        )
        with self._lock:
            self._snapshots.append(snapshot)
            self.counters["snapshots"] += 1
        if self.sink_path is not None:
            try:
                with self.sink_path.open("a") as handle:
                    handle.write(json.dumps(snapshot, default=str) + "\n")
            except OSError:
                with self._lock:
                    self.counters["sink_errors"] += 1
        return snapshot

    # ------------------------------------------------------------------
    def snapshots(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Stored snapshots, oldest first (optionally one trace only)."""
        with self._lock:
            items = list(self._snapshots)
        if trace_id is None:
            return items
        return [
            s
            for s in items
            if s.get("trace_id") == trace_id
            or str(s.get("trace_id") or "").startswith(trace_id)
        ]

    def payload(self, trace_id: Optional[str] = None) -> Dict[str, Any]:
        """The ``GET /debugz/flight`` body."""
        with self._lock:
            counters = dict(self.counters)
            buffered_logs = len(self._logs)
        return {
            "enabled": self.enabled,
            "counters": counters,
            "buffered_logs": buffered_logs,
            "snapshots": self.snapshots(trace_id),
        }


class NoopFlightRecorder(FlightRecorder):
    """The zero-cost default: triggers and logs are discarded."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_snapshots=1, max_logs=1)

    def record_log(self, record: Dict[str, Any]) -> None:
        pass

    def trigger(
        self,
        reason: str,
        trace_id: Optional[str] = None,
        detail: Optional[Dict[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        return None

    def payload(self, trace_id: Optional[str] = None) -> Dict[str, Any]:
        return {
            "enabled": False,
            "counters": {},
            "buffered_logs": 0,
            "snapshots": [],
        }


# ----------------------------------------------------------------------
# global recorder management
# ----------------------------------------------------------------------
_recorder: FlightRecorder = NoopFlightRecorder()
_recorder_lock = threading.Lock()


def get_flight_recorder() -> FlightRecorder:
    """The process-global flight recorder (no-op unless configured)."""
    return _recorder


def configure_flight(
    enabled: bool = True,
    sink_path: Optional[Union[str, Path]] = None,
    max_snapshots: int = 32,
    max_logs: int = 512,
) -> FlightRecorder:
    """Install the global flight recorder; returns it.

    Enabling also makes sure span evidence exists to freeze: if the
    global tracer is the no-op default, a ring-only recording tracer is
    installed (an explicitly configured tracer/sink is left alone).
    The recorder subscribes to structured-log records for correlation.
    """
    global _recorder
    with _recorder_lock:
        previous = _recorder
        obs_logging.remove_log_listener(previous.record_log)
        if enabled:
            recorder: FlightRecorder = FlightRecorder(
                max_snapshots=max_snapshots,
                max_logs=max_logs,
                sink_path=sink_path,
            )
            if not obs_trace.get_tracer().enabled:
                obs_trace.configure_tracing(enabled=True)
            obs_logging.add_log_listener(recorder.record_log)
        else:
            recorder = NoopFlightRecorder()
        _recorder = recorder
    return _recorder
