"""Waterfall rendering of JSONL span sinks (``repro trace show``).

Reads the one-span-per-line JSONL file written by
:class:`repro.obs.trace.Tracer`, groups spans by ``trace_id``, rebuilds
each trace's parent/child tree and prints a per-trace waterfall: spans
in tree order, indented by depth, each with its offset from the trace
start, its duration, a proportional bar, and a short attribute summary.

Malformed lines are skipped (a crashing writer must not make the sink
unreadable); spans whose parent never reached the sink render as
additional roots of their trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

#: attributes surfaced inline in the waterfall, in display order
_SUMMARY_KEYS = (
    "method", "path", "status", "kind", "state", "backend", "outcome",
    "job_id", "pid", "cache", "winner", "probes", "conflicts",
)
_BAR_WIDTH = 32


def load_spans(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL sink, skipping lines that are not valid span objects."""
    spans: List[Dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and record.get("trace_id") and record.get(
            "span_id"
        ):
            spans.append(record)
    return spans


def group_traces(spans: Iterable[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    """Spans bucketed by trace id, in first-seen trace order."""
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        traces.setdefault(span["trace_id"], []).append(span)
    return traces


def _start(span: Dict[str, Any]) -> float:
    try:
        return float(span.get("start") or 0.0)
    except (TypeError, ValueError):
        return 0.0


def _duration(span: Dict[str, Any]) -> float:
    try:
        return max(0.0, float(span.get("duration_seconds") or 0.0))
    except (TypeError, ValueError):
        return 0.0


def _tree_order(spans: List[Dict[str, Any]]) -> List[Tuple[int, Dict[str, Any]]]:
    """Depth-first (depth, span) order: parents before children, by start."""
    by_id = {span["span_id"]: span for span in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None  # orphan: its parent never reached the sink
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        # span_id tie-break keeps same-start-time siblings in one stable
        # order across runs (dict order of the sink is not guaranteed)
        bucket.sort(key=lambda span: (_start(span), str(span.get("span_id") or "")))

    out: List[Tuple[int, Dict[str, Any]]] = []

    def visit(span: Dict[str, Any], depth: int) -> None:
        out.append((depth, span))
        for child in children.get(span["span_id"], ()):
            visit(child, depth + 1)

    for root in children.get(None, ()):
        visit(root, 0)
    return out


def _summary(span: Dict[str, Any]) -> str:
    attributes = span.get("attributes") or {}
    parts = [
        f"{key}={attributes[key]}" for key in _SUMMARY_KEYS if key in attributes
    ]
    if span.get("status") not in (None, "ok"):
        parts.append(f"status={span['status']}")
    return " ".join(parts)


def _bar(offset: float, duration: float, total: float) -> str:
    if total <= 0:
        return "#" * _BAR_WIDTH
    lead = min(_BAR_WIDTH - 1, int(round(_BAR_WIDTH * offset / total)))
    span_cols = max(1, int(round(_BAR_WIDTH * duration / total)))
    span_cols = min(span_cols, _BAR_WIDTH - lead)
    return "·" * lead + "#" * span_cols + "·" * (_BAR_WIDTH - lead - span_cols)


def render_trace(spans: List[Dict[str, Any]]) -> str:
    """One trace's waterfall as printable text."""
    ordered = _tree_order(spans)
    if not ordered:
        return ""
    t0 = min(_start(span) for _, span in ordered)
    t_end = max(_start(span) + _duration(span) for _, span in ordered)
    total = max(0.0, t_end - t0)
    trace_id = ordered[0][1]["trace_id"]
    lines = [
        f"trace {trace_id}  {len(spans)} spans  {total * 1000:.2f} ms total"
    ]
    name_width = max(
        (2 * depth + len(span.get("name") or "?")) for depth, span in ordered
    )
    for depth, span in ordered:
        offset = _start(span) - t0
        duration = _duration(span)
        label = "  " * depth + (span.get("name") or "?")
        lines.append(
            f"  {label:<{name_width}}  "
            f"[{_bar(offset, duration, total)}]  "
            f"+{offset * 1000:8.2f}ms  {duration * 1000:8.2f}ms  {_summary(span)}"
            .rstrip()
        )
    return "\n".join(lines)


def parse_time(value: Union[str, float, None]) -> Optional[float]:
    """A ``--since``/``--until`` value as epoch seconds.

    Accepts a float epoch timestamp or an ISO-8601 datetime string
    (naive strings are taken as local time, matching how span ``start``
    stamps from ``time.time()`` read on the same machine).
    """
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip()
    try:
        return float(text)
    except ValueError:
        pass
    from datetime import datetime

    try:
        return datetime.fromisoformat(text).timestamp()
    except ValueError:
        raise ValueError(
            f"cannot parse time {value!r}: want epoch seconds or ISO-8601"
        ) from None


def render_file(
    path: Union[str, Path],
    trace_id: Optional[str] = None,
    limit: Optional[int] = None,
    since: Union[str, float, None] = None,
    until: Union[str, float, None] = None,
) -> str:
    """Render every trace in a sink file (newest last).

    ``trace_id`` restricts output to one trace (prefix match accepted);
    ``limit`` keeps only the last N traces; ``since``/``until`` keep
    only traces whose earliest span starts inside the window (epoch
    seconds or ISO-8601, see :func:`parse_time`).
    """
    traces = group_traces(load_spans(path))
    if trace_id is not None:
        traces = {
            tid: spans
            for tid, spans in traces.items()
            if tid == trace_id or tid.startswith(trace_id)
        }
        if not traces:
            return f"no trace matching {trace_id!r} in {path}"
    since_ts = parse_time(since)
    until_ts = parse_time(until)
    if since_ts is not None or until_ts is not None:
        kept = {}
        for tid, spans in traces.items():
            t0 = min(_start(span) for span in spans)
            if since_ts is not None and t0 < since_ts:
                continue
            if until_ts is not None and t0 > until_ts:
                continue
            kept[tid] = spans
        if not kept:
            return f"no traces inside the requested time window in {path}"
        traces = kept
    items = list(traces.items())
    if limit is not None and limit > 0:
        items = items[-limit:]
    if not items:
        return f"no spans in {path}"
    return "\n\n".join(render_trace(spans) for _, spans in items)
