"""Prometheus-text parsing and cluster-level metric aggregation.

The sharded cluster (PR 8) exposes one ``/metricsz`` per process —
router plus N replicas — so fleet questions ("how many jobs finished?",
"what is cluster p99?") needed N+1 scrapes and hand-merging.  This
module closes that gap:

* :func:`parse_text` — a parser for the Prometheus text exposition
  format 0.0.4 as produced by :mod:`repro.obs.metrics` (``# HELP``/
  ``# TYPE`` lines, label escaping, cumulative histogram buckets,
  OpenMetrics-style ``# {trace_id="..."}`` exemplar suffixes);
  :func:`render` re-emits a parsed scrape **losslessly** — parse/render
  round-trips byte-for-byte on our own output;
* :func:`merge_scrapes` — merges one scrape per replica with
  per-kind semantics: **counters sum**, **gauges last-write** (in
  replica order), **histograms re-bucket** onto the union of bucket
  bounds (identical bounds — the common case — reduce to exact
  per-bucket sums); every input series is *also* re-emitted with a
  ``replica="<id>"`` label so per-replica detail survives aggregation
  and the merged series can be audited against the raw ones;
* served as ``GET /clusterz/metrics`` on the router and fetched by
  ``repro metrics --cluster URL`` / ``repro top``.

Everything is stdlib-only and pure (no registry access): inputs are
exposition strings, outputs are exposition strings or the intermediate
:class:`Family`/:class:`Sample` model.
"""

from __future__ import annotations

import math
import urllib.request
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.obs.metrics import (
    _escape_label_value,
    _format_exemplar,
    _format_value,
)

Labels = Tuple[Tuple[str, str], ...]
Exemplar = Tuple[str, float, float]  # (trace_id, value, timestamp)

#: histogram component suffixes, checked when associating samples with
#: their ``# TYPE`` family
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")

_UNESCAPE = {"\\": "\\", '"': '"', "n": "\n"}


@dataclass
class Sample:
    """One exposition line: full series name, ordered labels, value."""

    name: str
    labels: Labels
    value: float
    timestamp: Optional[float] = None
    exemplar: Optional[Exemplar] = None

    def label(self, name: str, default: Optional[str] = None) -> Optional[str]:
        for key, value in self.labels:
            if key == name:
                return value
        return default

    def without_labels(self, *names: str) -> Labels:
        return tuple((k, v) for k, v in self.labels if k not in names)


@dataclass
class Family:
    """One metric family: the ``# HELP``/``# TYPE`` header + samples."""

    name: str
    kind: str = "untyped"
    help: str = ""
    samples: List[Sample] = field(default_factory=list)


Scrape = "OrderedDict[str, Family]"


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def _unescape_help(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt in ("\\", "n"):
                out.append("\\" if nxt == "\\" else "\n")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_labels(text: str, i: int) -> Tuple[Labels, int]:
    """Parse ``{k="v",...}`` starting at ``text[i] == '{'``."""
    labels: List[Tuple[str, str]] = []
    i += 1  # consume '{'
    while i < len(text):
        while i < len(text) and text[i] in " \t":
            i += 1
        if i < len(text) and text[i] == "}":
            return tuple(labels), i + 1
        j = text.index("=", i)
        name = text[i:j].strip()
        j += 1
        if j >= len(text) or text[j] != '"':
            raise ValueError(f"malformed label value for {name!r}")
        j += 1
        buf: List[str] = []
        while j < len(text):
            ch = text[j]
            if ch == "\\" and j + 1 < len(text):
                nxt = text[j + 1]
                buf.append(_UNESCAPE.get(nxt, "\\" + nxt))
                j += 2
            elif ch == '"':
                j += 1
                break
            else:
                buf.append(ch)
                j += 1
        labels.append((name, "".join(buf)))
        if j < len(text) and text[j] == ",":
            i = j + 1
        else:
            i = j
    if i < len(text) and text[i] == "}":
        return tuple(labels), i + 1
    raise ValueError("unterminated label set")


def _parse_exemplar(text: str) -> Optional[Exemplar]:
    """Parse ``{trace_id="..."} value [ts]`` (the part after ``# ``)."""
    text = text.strip()
    if not text.startswith("{"):
        return None
    labels, i = _parse_labels(text, 0)
    trace_id = dict(labels).get("trace_id", "")
    parts = text[i:].split()
    if not parts:
        return None
    value = float(parts[0])
    stamp = float(parts[1]) if len(parts) > 1 else 0.0
    return (trace_id, value, stamp)


def _parse_sample(line: str) -> Sample:
    brace = line.find("{")
    space = line.find(" ")
    if brace != -1 and (space == -1 or brace < space):
        name = line[:brace]
        labels, i = _parse_labels(line, brace)
        rest = line[i:]
    else:
        name = line[:space] if space != -1 else line
        labels = ()
        rest = line[space:] if space != -1 else ""
    exemplar: Optional[Exemplar] = None
    if " # " in rest:
        rest, exemplar_text = rest.split(" # ", 1)
        exemplar = _parse_exemplar(exemplar_text)
    parts = rest.split()
    if not parts:
        raise ValueError(f"sample line without a value: {line!r}")
    value = float(parts[0])
    stamp = float(parts[1]) if len(parts) > 1 else None
    return Sample(name, labels, value, timestamp=stamp, exemplar=exemplar)


def parse_text(text: str) -> "OrderedDict[str, Family]":
    """Parse one exposition into families, in first-seen order.

    Histogram ``_bucket``/``_sum``/``_count`` series are folded into
    their declared family.  Unknown-family samples become ``untyped``
    families of their own; malformed lines raise ``ValueError`` (our
    own renderer never produces them).
    """
    families: "OrderedDict[str, Family]" = OrderedDict()

    def get_or_create(name: str) -> Family:
        family = families.get(name)
        if family is None:
            family = Family(name)
            families[name] = family
        return family

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "HELP":
                family = get_or_create(parts[2])
                family.help = _unescape_help(parts[3]) if len(parts) > 3 else ""
            elif len(parts) >= 4 and parts[1] == "TYPE":
                family = get_or_create(parts[2])
                family.kind = parts[3]
            # other comments are ignored per the format spec
            continue
        sample = _parse_sample(line)
        target = families.get(sample.name)
        if target is None:
            for suffix in _HISTOGRAM_SUFFIXES:
                if sample.name.endswith(suffix):
                    base = families.get(sample.name[: -len(suffix)])
                    if base is not None and base.kind == "histogram":
                        target = base
                        break
        if target is None:
            target = get_or_create(sample.name)
        target.samples.append(sample)
    return families


# ----------------------------------------------------------------------
# rendering (inverse of parse_text on our own output)
# ----------------------------------------------------------------------
def _render_series(name: str, labels: Labels) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def render_sample(sample: Sample) -> str:
    line = f"{_render_series(sample.name, sample.labels)} {_format_value(sample.value)}"
    if sample.timestamp is not None:
        line += f" {_format_value(sample.timestamp)}"
    if sample.exemplar is not None:
        line += _format_exemplar(sample.exemplar)
    return line


def render(families: Mapping[str, Family]) -> str:
    """Families back to exposition text (lossless on parse_text output)."""
    lines: List[str] = []
    for family in families.values():
        if family.help:
            escaped = family.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {family.name} {escaped}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples:
            lines.append(render_sample(sample))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def _with_replica(labels: Labels, replica_label: str, replica: str) -> Labels:
    """Append the replica label, keeping ``le`` last (cosmetic only)."""
    if labels and labels[-1][0] == "le":
        return labels[:-1] + ((replica_label, replica), labels[-1])
    return labels + ((replica_label, replica),)


def _merge_scalar(
    per_replica: "List[Tuple[str, Sample]]", kind: str
) -> "OrderedDict[Labels, Sample]":
    merged: "OrderedDict[Labels, Sample]" = OrderedDict()
    for _, sample in per_replica:
        key = sample.labels
        existing = merged.get(key)
        if existing is None:
            merged[key] = Sample(sample.name, key, sample.value)
        elif kind == "counter":
            existing.value += sample.value
        else:  # gauge / untyped: last write (replica order) wins
            existing.value = sample.value
    return merged


def _newest_exemplar(*candidates: Optional[Exemplar]) -> Optional[Exemplar]:
    best: Optional[Exemplar] = None
    for candidate in candidates:
        if candidate is None:
            continue
        if best is None or candidate[2] >= best[2]:
            best = candidate
    return best


def _merge_histogram(
    name: str, per_replica: "List[Tuple[str, Sample]]"
) -> List[Sample]:
    """Re-bucket per-replica histogram series onto the union of bounds.

    Cumulative counts are step functions of the bound; a replica's count
    at a union bound it does not declare is its count at the largest
    declared bound below it (the monotone lower bound), which makes the
    merge *exact* whenever all replicas share the same bucket layout.
    """
    # group key: the labelset minus le (same for _bucket/_sum/_count)
    groups: "OrderedDict[Labels, Dict[str, Dict[str, Any]]]" = OrderedDict()
    for replica, sample in per_replica:
        if sample.name.endswith("_bucket"):
            key = sample.without_labels("le")
            part, detail = "bucket", sample.label("le", "+Inf")
        elif sample.name.endswith("_sum"):
            key, part, detail = sample.labels, "sum", ""
        elif sample.name.endswith("_count"):
            key, part, detail = sample.labels, "count", ""
        else:  # stray series inside a histogram family: pass through
            continue
        group = groups.setdefault(key, {})
        slot = group.setdefault(replica, {"bucket": {}, "sum": 0.0, "count": 0.0})
        if part == "bucket":
            slot["bucket"][detail] = sample
        else:
            slot[part] = sample.value

    out: List[Sample] = []
    for key in sorted(groups, key=lambda k: tuple(k)):
        group = groups[key]
        bounds: List[float] = sorted(
            {
                float(le)
                for slot in group.values()
                for le in slot["bucket"]
                if le != "+Inf"
            }
        )
        for bound in bounds:
            total = 0.0
            exemplar: Optional[Exemplar] = None
            for slot in group.values():
                best = 0.0
                for le, bucket_sample in slot["bucket"].items():
                    le_value = math.inf if le == "+Inf" else float(le)
                    if le_value <= bound:
                        best = max(best, bucket_sample.value)
                    if le_value == bound:
                        exemplar = _newest_exemplar(exemplar, bucket_sample.exemplar)
                total += best
            out.append(
                Sample(
                    f"{name}_bucket",
                    key + (("le", _format_value(bound)),),
                    total,
                    exemplar=exemplar,
                )
            )
        inf_total = 0.0
        inf_exemplar: Optional[Exemplar] = None
        for slot in group.values():
            inf_sample = slot["bucket"].get("+Inf")
            if inf_sample is not None:
                inf_total += inf_sample.value
                inf_exemplar = _newest_exemplar(inf_exemplar, inf_sample.exemplar)
            else:
                inf_total += slot["count"] if isinstance(slot["count"], float) else 0.0
        out.append(
            Sample(
                f"{name}_bucket",
                key + (("le", "+Inf"),),
                inf_total,
                exemplar=inf_exemplar,
            )
        )
        out.append(
            Sample(f"{name}_sum", key, sum(s["sum"] for s in group.values()))
        )
        out.append(
            Sample(f"{name}_count", key, sum(s["count"] for s in group.values()))
        )
    return out


def merge_scrapes(
    scrapes: "Mapping[str, Union[str, OrderedDict[str, Family]]]",
    replica_label: str = "replica",
    include_per_replica: bool = True,
) -> "OrderedDict[str, Family]":
    """Merge one exposition per replica into a cluster-level scrape.

    ``scrapes`` maps replica id -> exposition text (or an already parsed
    scrape); iteration order defines gauge last-write order.  Each
    output family carries the merged series first, then (when
    ``include_per_replica``) every input series re-labeled with
    ``replica="<id>"`` so the merge is auditable sample-by-sample.
    """
    parsed: "OrderedDict[str, OrderedDict[str, Family]]" = OrderedDict()
    for replica, scrape in scrapes.items():
        parsed[replica] = (
            parse_text(scrape) if isinstance(scrape, str) else scrape
        )

    names: List[str] = sorted(
        {name for families in parsed.values() for name in families}
    )
    out: "OrderedDict[str, Family]" = OrderedDict()
    for name in names:
        kind, help_text = "untyped", ""
        per_replica: List[Tuple[str, Sample]] = []
        for replica, families in parsed.items():
            family = families.get(name)
            if family is None:
                continue
            if kind == "untyped" and family.kind != "untyped":
                kind = family.kind
            if not help_text and family.help:
                help_text = family.help
            for sample in family.samples:
                per_replica.append((replica, sample))

        merged = Family(name, kind, help_text)
        if kind == "histogram":
            merged.samples.extend(_merge_histogram(name, per_replica))
        else:
            scalar = _merge_scalar(per_replica, kind)
            for key in sorted(scalar, key=lambda k: tuple(k)):
                merged.samples.append(scalar[key])
        if include_per_replica:
            for replica, sample in per_replica:
                merged.samples.append(
                    Sample(
                        sample.name,
                        _with_replica(sample.labels, replica_label, replica),
                        sample.value,
                        timestamp=sample.timestamp,
                        exemplar=sample.exemplar,
                    )
                )
        out[name] = merged
    return out


def merge_exposition(
    scrapes: Mapping[str, str],
    replica_label: str = "replica",
    include_per_replica: bool = True,
) -> str:
    """:func:`merge_scrapes` + :func:`render` in one call."""
    return render(
        merge_scrapes(
            scrapes,
            replica_label=replica_label,
            include_per_replica=include_per_replica,
        )
    )


# ----------------------------------------------------------------------
# scraping
# ----------------------------------------------------------------------
def http_get_text(url: str, timeout: float = 5.0) -> str:
    """Fetch one URL as text (scrapes, ``/sloz``); stdlib urllib only."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8", "replace")


def scrape_endpoints(
    endpoints: Mapping[str, str], timeout: float = 5.0
) -> "OrderedDict[str, str]":
    """GET every endpoint (replica id -> URL); unreachable ones skipped."""
    scrapes: "OrderedDict[str, str]" = OrderedDict()
    for replica, url in endpoints.items():
        try:
            scrapes[replica] = http_get_text(url, timeout=timeout)
        except OSError:
            continue
    return scrapes
