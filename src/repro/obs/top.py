"""``repro top`` — a live fleet dashboard over the metrics aggregator.

Plain-ANSI terminal refresh (no curses): each tick fetches the cluster
exposition (``/clusterz/metrics`` on a router, falling back to
``/metricsz`` on a single replica) plus ``/sloz`` when available, and
renders:

* a per-replica **RED table** — request rate, error rate and p50/p95/p99
  latency interpolated from histogram-bucket deltas between refreshes;
* fleet **gauges** — queue depth/running, cache lookup rate, solver
  conflicts/pivots rate;
* **SLO budgets** — remaining error budget, burn rates and alerting
  state per SLO, with the exemplar trace id linking a breach to a
  renderable trace (``repro trace show <id>``);
* recent **alerts** and build-identity **skew** (distinct
  ``repro_build_info`` signatures across replicas).

Rates need two scrapes, so the first frame shows gauges only.  All the
arithmetic lives in pure functions over parsed scrapes — the terminal
loop is a thin shell around :func:`collect` + :func:`render_dashboard`,
and tests drive those directly with canned expositions.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.obs import agg

#: ANSI "home + clear screen" used between refreshes
CLEAR = "\x1b[H\x1b[2J"

_QUANTILES = (0.5, 0.95, 0.99)


class TopSnapshot:
    """One dashboard tick: parsed metrics + SLO payload + timestamp."""

    def __init__(
        self,
        families: "Mapping[str, agg.Family]",
        slo: Optional[Dict[str, Any]],
        stamp: float,
    ) -> None:
        self.families = families
        self.slo = slo
        self.stamp = stamp


def collect(
    fetch_metrics: Callable[[], str],
    fetch_slo: Optional[Callable[[], str]] = None,
    clock: Callable[[], float] = time.time,
) -> TopSnapshot:
    """Fetch + parse one tick (``fetch_slo`` failures degrade to None)."""
    families = agg.parse_text(fetch_metrics())
    slo: Optional[Dict[str, Any]] = None
    if fetch_slo is not None:
        try:
            slo = json.loads(fetch_slo())
        except (OSError, ValueError):
            slo = None
    return TopSnapshot(families, slo, clock())


# ----------------------------------------------------------------------
# extraction helpers (pure, testable)
# ----------------------------------------------------------------------
def _samples(
    families: "Mapping[str, agg.Family]", metric: str
) -> List[agg.Sample]:
    family = families.get(metric)
    return list(family.samples) if family is not None else []


def replica_ids(families: "Mapping[str, agg.Family]") -> List[str]:
    """Replica ids present in the scrape ('' = unsharded single process)."""
    ids = {
        sample.label("replica")
        for name in ("repro_http_requests_total", "repro_build_info")
        for sample in _samples(families, name)
    }
    ids.discard(None)
    return sorted(ids) if ids else [""]


def _series_sum(
    families: "Mapping[str, agg.Family]",
    metric: str,
    replica: Optional[str],
    match: Optional[Callable[[agg.Sample], bool]] = None,
    suffix: str = "",
) -> float:
    total = 0.0
    name = metric + suffix
    for sample in _samples(families, metric):
        if sample.name != name:
            continue
        if sample.label("replica") != (replica or None):
            continue
        if match is not None and not match(sample):
            continue
        total += sample.value
    return total


def _bucket_cumulative(
    families: "Mapping[str, agg.Family]", metric: str, replica: Optional[str]
) -> Dict[float, float]:
    """Cumulative counts per bound, summed across non-``le`` labelsets."""
    buckets: Dict[float, float] = {}
    for sample in _samples(families, metric):
        if sample.name != f"{metric}_bucket":
            continue
        if sample.label("replica") != (replica or None):
            continue
        le = sample.label("le", "+Inf")
        bound = math.inf if le == "+Inf" else float(le)
        buckets[bound] = buckets.get(bound, 0.0) + sample.value
    return buckets


def quantiles_from_deltas(
    current: Dict[float, float],
    previous: Optional[Dict[float, float]],
    quantiles: Tuple[float, ...] = _QUANTILES,
) -> List[Optional[float]]:
    """Prometheus-style histogram quantiles from bucket-count deltas.

    Linear interpolation inside the target bucket (0 as the lower edge
    of the first bucket); returns None per quantile when no samples
    landed in the window.
    """
    bounds = sorted(b for b in current if b != math.inf)
    deltas: List[float] = []
    running = 0.0
    for bound in bounds:
        prev_value = (previous or {}).get(bound, 0.0)
        cumulative = max(0.0, current[bound] - prev_value)
        deltas.append(max(0.0, cumulative - running))
        running = max(running, cumulative)
    inf_current = current.get(math.inf, running)
    inf_prev = (previous or {}).get(math.inf, 0.0)
    total = max(0.0, inf_current - inf_prev)
    overflow = max(0.0, total - running)

    out: List[Optional[float]] = []
    for q in quantiles:
        if total <= 0:
            out.append(None)
            continue
        target = q * total
        running = 0.0
        value: Optional[float] = None
        lower = 0.0
        for bound, count in zip(bounds, deltas):
            if running + count >= target and count > 0:
                fraction = (target - running) / count
                value = lower + (bound - lower) * fraction
                break
            running += count
            lower = bound
        if value is None:
            # target falls in the +Inf bucket: report the largest bound
            value = bounds[-1] if bounds else None
        out.append(value)
    _ = overflow  # documented: overflow mass reports the largest bound
    return out


def replica_red_rows(
    current: TopSnapshot, previous: Optional[TopSnapshot]
) -> List[Dict[str, Any]]:
    """One RED row per replica: rates from deltas, latency quantiles."""
    dt = (current.stamp - previous.stamp) if previous else 0.0
    rows: List[Dict[str, Any]] = []
    for replica in replica_ids(current.families):
        requests = _series_sum(
            current.families, "repro_http_requests_total", replica
        )
        errors = _series_sum(
            current.families,
            "repro_http_requests_total",
            replica,
            match=lambda s: str(s.label("status", "")).startswith("5"),
        )
        rate = err_rate = None
        if previous is not None and dt > 0:
            prev_requests = _series_sum(
                previous.families, "repro_http_requests_total", replica
            )
            prev_errors = _series_sum(
                previous.families,
                "repro_http_requests_total",
                replica,
                match=lambda s: str(s.label("status", "")).startswith("5"),
            )
            rate = max(0.0, requests - prev_requests) / dt
            err_rate = max(0.0, errors - prev_errors) / dt
        buckets = _bucket_cumulative(
            current.families, "repro_http_request_seconds", replica
        )
        prev_buckets = (
            _bucket_cumulative(
                previous.families, "repro_http_request_seconds", replica
            )
            if previous
            else None
        )
        p50, p95, p99 = quantiles_from_deltas(buckets, prev_buckets)
        rows.append(
            {
                "replica": replica or "local",
                "requests_total": requests,
                "errors_total": errors,
                "rate": rate,
                "error_rate": err_rate,
                "p50": p50,
                "p95": p95,
                "p99": p99,
                "queue_depth": _series_sum(
                    current.families, "repro_queue_depth", replica
                ),
                "running": _series_sum(
                    current.families, "repro_queue_running", replica
                ),
            }
        )
    return rows


def build_signatures(families: "Mapping[str, agg.Family]") -> Dict[str, str]:
    """replica -> engine signature (skew is visible as differing values)."""
    out: Dict[str, str] = {}
    for sample in _samples(families, "repro_build_info"):
        replica = sample.label("replica") or "local"
        out[replica] = sample.label("engine_signature", "?") or "?"
    return out


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt_rate(value: Optional[float]) -> str:
    return "--" if value is None else f"{value:7.2f}/s"


def _fmt_ms(value: Optional[float]) -> str:
    return "--" if value is None else f"{value * 1000:8.1f}ms"


def render_dashboard(
    current: TopSnapshot,
    previous: Optional[TopSnapshot],
    source: str = "",
) -> str:
    lines: List[str] = []
    stamp = time.strftime("%H:%M:%S", time.localtime(current.stamp))
    lines.append(f"repro top — {source or 'cluster'} — {stamp}")
    lines.append("")

    rows = replica_red_rows(current, previous)
    header = (
        f"{'REPLICA':<10} {'REQS':>8} {'RATE':>10} {'ERRS':>6} {'ERR/S':>10} "
        f"{'P50':>10} {'P95':>10} {'P99':>10} {'QUEUE':>6} {'RUN':>4}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row['replica']:<10} {row['requests_total']:>8.0f} "
            f"{_fmt_rate(row['rate']):>10} {row['errors_total']:>6.0f} "
            f"{_fmt_rate(row['error_rate']):>10} {_fmt_ms(row['p50']):>10} "
            f"{_fmt_ms(row['p95']):>10} {_fmt_ms(row['p99']):>10} "
            f"{row['queue_depth']:>6.0f} {row['running']:>4.0f}"
        )
    lines.append("")

    # fleet counters worth a rate readout
    fleet_counters = (
        ("cache lookups", "repro_cache_lookups_total"),
        ("jobs finished", "repro_jobs_finished_total"),
        ("solver conflicts", "repro_solver_conflicts_total"),
        ("solver pivots", "repro_solver_pivots_total"),
    )
    dt = (current.stamp - previous.stamp) if previous else 0.0
    parts = []
    for label, metric in fleet_counters:
        value = _series_sum(current.families, metric, None)
        if previous is not None and dt > 0:
            prev = _series_sum(previous.families, metric, None)
            parts.append(f"{label} {max(0.0, value - prev) / dt:.1f}/s")
        else:
            parts.append(f"{label} {value:.0f}")
    lines.append("fleet: " + "  ".join(parts))
    lines.append("")

    if current.slo:
        lines.append(
            f"{'SLO':<14} {'OBJECTIVE':>9} {'BUDGET':>8} {'STATE':>8}  EXEMPLAR"
        )
        for slo in current.slo.get("slos", []):
            budget = slo.get("budget_remaining")
            budget_text = "--" if budget is None else f"{budget * 100:6.1f}%"
            state = "BURNING" if slo.get("alerting") else "ok"
            exemplar = slo.get("exemplar_trace_id") or ""
            objective = slo.get("objective")
            objective_text = (
                "--" if objective is None else f"{objective * 100:.2f}%"
            )
            lines.append(
                f"{str(slo.get('name', '?')):<14} {objective_text:>9} "
                f"{budget_text:>8} {state:>8}  {exemplar[:16]}"
            )
        alerts = current.slo.get("alerts", [])
        if alerts:
            lines.append("")
            lines.append("recent alerts:")
            for alert in alerts[-5:]:
                fired = alert.get("fired_at")
                when = (
                    time.strftime("%H:%M:%S", time.localtime(fired))
                    if isinstance(fired, (int, float))
                    else "?"
                )
                lines.append(
                    f"  [{alert.get('severity', '?'):>8}] {when} "
                    f"slo={alert.get('slo')} windows={','.join(alert.get('windows', []))} "
                    f"trace={str(alert.get('exemplar_trace_id') or '')[:16]}"
                )
        lines.append("")

    signatures = build_signatures(current.families)
    if signatures:
        distinct = sorted(set(signatures.values()))
        if len(distinct) == 1:
            lines.append(f"build: {distinct[0]} ({len(signatures)} process(es))")
        else:
            lines.append(f"build SKEW — {len(distinct)} distinct signatures:")
            for replica in sorted(signatures):
                lines.append(f"  {replica:<10} {signatures[replica]}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the terminal loop
# ----------------------------------------------------------------------
def run_top(
    url: str,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    no_clear: bool = False,
    out: Any = None,
    timeout: float = 5.0,
) -> int:
    """Refresh loop for ``repro top URL``; returns an exit code.

    ``url`` is a router or replica base URL; ``/clusterz/metrics`` is
    preferred with a ``/metricsz`` fallback.  ``iterations`` bounds the
    number of refreshes (None = until interrupted), which CI smokes use
    with ``--iterations 1 --no-clear`` for a single plain frame.
    """
    import sys

    stream = out if out is not None else sys.stdout
    base = url.rstrip("/")

    metrics_path: Optional[str] = None

    def fetch_metrics() -> str:
        nonlocal metrics_path
        paths = (
            [metrics_path] if metrics_path else ["/clusterz/metrics", "/metricsz"]
        )
        last_error: Optional[Exception] = None
        for path in paths:
            try:
                text = agg.http_get_text(base + path, timeout=timeout)
                metrics_path = path
                return text
            except OSError as exc:
                last_error = exc
        raise OSError(f"cannot scrape {base}: {last_error}")

    def fetch_slo() -> str:
        return agg.http_get_text(base + "/sloz", timeout=timeout)

    previous: Optional[TopSnapshot] = None
    count = 0
    try:
        while iterations is None or count < iterations:
            try:
                snapshot = collect(fetch_metrics, fetch_slo)
            except OSError as exc:
                stream.write(f"repro top: {exc}\n")
                return 1
            frame = render_dashboard(snapshot, previous, source=base + (metrics_path or ""))
            if not no_clear:
                stream.write(CLEAR)
            stream.write(frame)
            stream.flush()
            previous = snapshot
            count += 1
            if iterations is None or count < iterations:
                time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
