"""End-to-end observability: span tracing, metrics, structured logs.

Three stdlib-only pillars behind one package, shared by every layer of
the reproduction (HTTP service, job queue, batching scheduler, parallel
runtime, verification sessions, SMT solver):

* :mod:`repro.obs.trace` — ``trace_id``/``span_id`` span tracing with
  contextvars propagation through asyncio, explicit payload propagation
  across the process-pool boundary, a bounded in-memory ring and an
  optional JSONL sink.  Off by default (no-op tracer).
* :mod:`repro.obs.metrics` — counters/gauges/histograms with labels,
  rendered in Prometheus text format by ``GET /metricsz`` and the
  ``repro metrics`` CLI.
* :mod:`repro.obs.logging` — trace-correlated one-line JSON logs.

See ``docs/OBSERVABILITY.md`` for the metric catalog, the span tree of
a verify request, the log schema and scrape examples.
"""

from repro.obs.logging import StructuredLogger, configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.trace import (
    NoopTracer,
    Span,
    SpanContext,
    Tracer,
    configure_tracing,
    context_from_payload,
    context_payload,
    current_context,
    get_tracer,
    set_tracer,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopTracer",
    "Span",
    "SpanContext",
    "StructuredLogger",
    "Tracer",
    "configure_logging",
    "configure_tracing",
    "context_from_payload",
    "context_payload",
    "counter",
    "current_context",
    "gauge",
    "get_logger",
    "get_registry",
    "get_tracer",
    "histogram",
    "set_tracer",
    "tracing_enabled",
]
