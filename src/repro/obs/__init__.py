"""End-to-end observability: span tracing, metrics, structured logs.

Three stdlib-only pillars behind one package, shared by every layer of
the reproduction (HTTP service, job queue, batching scheduler, parallel
runtime, verification sessions, SMT solver):

* :mod:`repro.obs.trace` — ``trace_id``/``span_id`` span tracing with
  contextvars propagation through asyncio, explicit payload propagation
  across the process-pool boundary, a bounded in-memory ring and an
  optional JSONL sink.  Off by default (no-op tracer).
* :mod:`repro.obs.metrics` — counters/gauges/histograms with labels,
  rendered in Prometheus text format by ``GET /metricsz`` and the
  ``repro metrics`` CLI.
* :mod:`repro.obs.logging` — trace-correlated one-line JSON logs.

See ``docs/OBSERVABILITY.md`` for the metric catalog, the span tree of
a verify request, the log schema and scrape examples.
"""

from repro.obs.flight import (
    FlightRecorder,
    NoopFlightRecorder,
    configure_flight,
    get_flight_recorder,
)
from repro.obs.logging import (
    StructuredLogger,
    add_log_listener,
    configure_logging,
    get_logger,
    remove_log_listener,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    record_build_info,
)
from repro.obs.slo import (
    BurnWindow,
    SloConfig,
    SloEvaluator,
    SloObjective,
    load_slo_config,
)
from repro.obs.trace import (
    NoopTracer,
    Span,
    SpanContext,
    Tracer,
    configure_tracing,
    context_from_payload,
    context_payload,
    current_context,
    get_tracer,
    set_tracer,
    tracing_enabled,
)

__all__ = [
    "BurnWindow",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopFlightRecorder",
    "NoopTracer",
    "SloConfig",
    "SloEvaluator",
    "SloObjective",
    "Span",
    "SpanContext",
    "StructuredLogger",
    "Tracer",
    "add_log_listener",
    "configure_flight",
    "configure_logging",
    "configure_tracing",
    "context_from_payload",
    "context_payload",
    "counter",
    "current_context",
    "gauge",
    "get_flight_recorder",
    "get_logger",
    "get_registry",
    "get_tracer",
    "histogram",
    "load_slo_config",
    "record_build_info",
    "remove_log_listener",
    "set_tracer",
    "tracing_enabled",
]
