"""Trace-correlated structured JSON logging.

One JSON object per line on a configurable stream (stderr by default):
timestamp, level, logger name, an ``event`` slug, the active trace/span
ids (when a span is open in this task/thread), and free-form fields.
Replaces the service's ad-hoc ``print`` logging so log lines can be
joined with traces and metrics on ``trace_id``.

.. code-block:: python

    log = get_logger("repro.service")
    log.info("job.finished", job_id=job.id, state=job.state.value)

emits::

    {"ts": "2026-08-07T12:00:00.123+00:00", "level": "info",
     "logger": "repro.service", "event": "job.finished",
     "trace_id": "4f…", "span_id": "9a…", "job_id": "ab12", "state": "done"}

``REPRO_LOG=0`` disables emission entirely; ``REPRO_LOG_LEVEL`` sets
the threshold (debug/info/warning/error).  :func:`configure_logging`
overrides both and the output stream programmatically (tests pass a
``StringIO``).
"""

from __future__ import annotations

import json
import os
import sys
import threading
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Optional, TextIO

from repro.obs.trace import current_context

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: in-process record listeners (flight recorder); called with the record
#: dict for every log call regardless of the stream-emission gate
_listeners: List[Callable[[Dict[str, Any]], None]] = []


def add_log_listener(listener: Callable[[Dict[str, Any]], None]) -> None:
    """Subscribe ``listener`` to every structured log record."""
    with _lock:
        if listener not in _listeners:
            _listeners.append(listener)


def remove_log_listener(listener: Callable[[Dict[str, Any]], None]) -> None:
    """Unsubscribe a listener previously added (missing is a no-op)."""
    with _lock:
        try:
            _listeners.remove(listener)
        except ValueError:
            pass

_lock = threading.Lock()
_config: Dict[str, Any] = {
    "enabled": os.environ.get("REPRO_LOG", "1") not in ("", "0"),
    "level": _LEVELS.get(os.environ.get("REPRO_LOG_LEVEL", "info"), 20),
    "stream": None,  # None: resolve sys.stderr at emit time (capturable)
}


def configure_logging(
    enabled: Optional[bool] = None,
    level: Optional[str] = None,
    stream: Optional[TextIO] = None,
) -> None:
    """Override the process-wide logging configuration (None = keep)."""
    with _lock:
        if enabled is not None:
            _config["enabled"] = bool(enabled)
        if level is not None:
            if level not in _LEVELS:
                raise ValueError(f"unknown log level {level!r}")
            _config["level"] = _LEVELS[level]
        if stream is not None:
            _config["stream"] = stream


def logging_enabled() -> bool:
    return bool(_config["enabled"])


class StructuredLogger:
    """A named emitter of one-line JSON log records."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    # ------------------------------------------------------------------
    def _emit(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        emit = _config["enabled"] and _LEVELS[level] >= _config["level"]
        if not emit and not _listeners:
            return
        record: Dict[str, Any] = {
            "ts": datetime.now(timezone.utc).isoformat(timespec="milliseconds"),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        ctx = current_context()
        if ctx is not None:
            record["trace_id"] = ctx.trace_id
            record["span_id"] = ctx.span_id
        record.update(fields)
        for listener in list(_listeners):
            try:
                listener(record)
            except Exception:
                pass  # a listener must never fail the logged computation
        if not emit:
            return
        stream = _config["stream"] or sys.stderr
        try:
            stream.write(json.dumps(record, default=str) + "\n")
            stream.flush()
        except (OSError, ValueError):
            pass  # logging must never fail the logged computation

    def debug(self, event: str, **fields: Any) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit("error", event, fields)


_loggers: Dict[str, StructuredLogger] = {}


def get_logger(name: str) -> StructuredLogger:
    """Cached named logger (loggers are stateless beyond their name)."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers.setdefault(name, StructuredLogger(name))
    return logger
