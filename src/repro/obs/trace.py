"""Span tracing across the service, runtime, sessions and solver.

One verification request touches four process layers — the asyncio HTTP
front end, the job queue, a process-pool task, and the SMT/MILP solver
inside it — and until now each layer reported timings on its own island
(``/statsz``, ``Solver.statistics()``, ``REPRO_SMT_PROFILE``).  The
tracer stitches them together under a shared request identity:

* a **span** is one timed operation with a ``trace_id`` (shared by the
  whole request), its own ``span_id``, an optional ``parent_id``, and a
  free-form attribute dict;
* the **current span context** propagates through ``async``/``await``
  and threads via :mod:`contextvars`; across the process-pool boundary
  it is serialized into task payloads (:func:`context_payload`) and the
  worker's spans are shipped back and re-parented into the submitting
  process's tracer (:meth:`Tracer.export`);
* finished spans land in a bounded in-memory **ring** (white-box
  inspection, tests) and optionally in a **JSONL sink** — one span per
  line — that ``repro trace show`` renders as a per-trace waterfall.

Tracing is **off by default**: the global tracer is a no-op whose
``span()`` hands out a shared inert object, so instrumented call sites
cost one attribute lookup and an empty ``with`` block.  Enable it with
``REPRO_TRACE=1`` (ring only), ``REPRO_TRACE_FILE=/path/spans.jsonl``
(ring + sink), or programmatically via :func:`configure_tracing`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple, Union

#: default ring memory bound — approximate payload bytes across all
#: buffered spans (span ids, names, attributes), not counting dict
#: overhead.  4 MiB holds thousands of typical spans.
DEFAULT_RING_BYTES = 4 * 1024 * 1024

#: fixed per-span cost charged on top of the measured strings: ids,
#: timestamps, status, container overhead
_SPAN_OVERHEAD_BYTES = 96


def _approx_span_bytes(span_dict: Dict[str, Any]) -> int:
    """Cheap payload-size estimate for ring accounting (no serialization)."""
    total = _SPAN_OVERHEAD_BYTES
    for key, value in span_dict.items():
        total += len(key)
        if isinstance(value, str):
            total += len(value)
        elif isinstance(value, dict):
            for attr_key, attr_value in value.items():
                total += len(str(attr_key))
                if isinstance(attr_value, str):
                    total += len(attr_value)
                elif isinstance(attr_value, (list, tuple, dict)):
                    total += len(str(attr_value))
                else:
                    total += 8
        elif isinstance(value, (list, tuple)):
            total += len(str(value))
        elif value is not None:
            total += 8
    return total


class SpanContext(NamedTuple):
    """The propagatable identity of a span: which trace, which parent."""

    trace_id: str
    span_id: str


#: the active span context for this task/thread of execution
_CURRENT: ContextVar[Optional[SpanContext]] = ContextVar(
    "repro_obs_current_span", default=None
)

ParentLike = Union[SpanContext, Dict[str, str], None]


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


def current_context() -> Optional[SpanContext]:
    """The span context active in this task/thread (None outside a span)."""
    return _CURRENT.get()


def context_payload() -> Optional[Dict[str, str]]:
    """The current context as a JSON-able dict for cross-process hops."""
    ctx = _CURRENT.get()
    if ctx is None:
        return None
    return {"trace_id": ctx.trace_id, "span_id": ctx.span_id}


def context_from_payload(payload: ParentLike) -> Optional[SpanContext]:
    """Rebuild a :class:`SpanContext` from :func:`context_payload` output."""
    if payload is None:
        return None
    if isinstance(payload, SpanContext):
        return payload
    trace_id = payload.get("trace_id")
    span_id = payload.get("span_id")
    if not trace_id or not span_id:
        return None
    return SpanContext(str(trace_id), str(span_id))


class Span:
    """One timed operation; usable as a context manager.

    Entering the span activates its context (children created inside the
    ``with`` block parent to it); exiting finishes it and records it in
    the tracer.  Spans created with ``activate=False`` (e.g. a job span
    that lives across asyncio tasks) never touch the context variable
    and must be finished explicitly with :meth:`finish`.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_wall",
        "start_mono",
        "duration_seconds",
        "attributes",
        "status",
        "_tracer",
        "_token",
        "_finished",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attributes: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.start_wall = time.time()
        self.start_mono = time.monotonic()
        self.duration_seconds: Optional[float] = None
        self.attributes = attributes
        self.status = "ok"
        self._token = None
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def context_payload(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def finish(self, status: Optional[str] = None) -> None:
        """Stop the clock and record the span (idempotent)."""
        if self._finished:
            return
        self._finished = True
        if status is not None:
            self.status = status
        self.duration_seconds = time.monotonic() - self.start_mono
        self._tracer._record(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start_wall,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self.context)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None and self.status == "ok":
            self.status = "error"
            self.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.finish()


class _NoopSpan:
    """Shared inert span: every tracing call site degrades to this."""

    __slots__ = ()

    # mirror the Span surface so call sites never branch on enablement
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    status = "ok"
    duration_seconds = None
    attributes: Dict[str, Any] = {}

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def finish(self, status: Optional[str] = None) -> None:
        pass

    def context_payload(self) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Recording tracer: bounded ring of finished spans + JSONL sink.

    The ring is bounded twice over — by **span count** (``ring_size``)
    and by **approximate payload bytes** (``max_ring_bytes``) so a few
    spans with enormous attribute payloads cannot pin unbounded memory.
    Eviction removes the oldest *whole traces* (a trace is every span
    sharing one ``trace_id``), never a partial tree, so whatever is in
    the ring always renders as complete waterfalls.  A single runaway
    trace larger than ``ring_size`` spans keeps its oldest spans and
    drops the excess (``dropped`` counter) rather than splitting.
    """

    enabled = True

    def __init__(
        self,
        ring_size: int = 4096,
        jsonl_path: Optional[Union[str, Path]] = None,
        max_ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be positive")
        if max_ring_bytes < 1:
            raise ValueError("max_ring_bytes must be positive")
        self.ring_size = ring_size
        self.max_ring_bytes = max_ring_bytes
        self.jsonl_path = Path(jsonl_path).expanduser() if jsonl_path else None
        # trace_id -> [(global seq, span dict, approx bytes), ...];
        # insertion order refreshed on append = trace recency order
        self._ring: "OrderedDict[str, List[Tuple[int, Dict[str, Any], int]]]" = (
            OrderedDict()
        )
        self._seq = 0
        self._ring_spans = 0
        self._ring_bytes = 0
        self._lock = threading.Lock()
        self.counters = {
            "started": 0,
            "finished": 0,
            "exported": 0,
            "sink_errors": 0,
            "evicted_traces": 0,
            "dropped": 0,
        }

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        parent: ParentLike = None,
        **attributes: Any,
    ) -> Span:
        """Open a span (use as ``with tracer.span(...) as span:``).

        ``parent`` overrides the ambient context — pass a
        :class:`SpanContext` or a :func:`context_payload` dict to stitch
        across queue hops and process boundaries; with no parent and no
        ambient context the span roots a fresh trace.
        """
        ctx = context_from_payload(parent) if parent is not None else _CURRENT.get()
        with self._lock:
            self.counters["started"] += 1
        if ctx is None:
            return Span(self, name, _new_trace_id(), None, attributes)
        return Span(self, name, ctx.trace_id, ctx.span_id, attributes)

    def start_span(
        self,
        name: str,
        parent: ParentLike = None,
        **attributes: Any,
    ) -> Span:
        """A span the caller owns: never activates the context variable,
        must be closed with :meth:`Span.finish` (job-lifecycle spans)."""
        return self.span(name, parent=parent, **attributes)

    # ------------------------------------------------------------------
    def _record(self, span: Span) -> None:
        self._write(span.to_dict())
        with self._lock:
            self.counters["finished"] += 1

    def export(self, span_dict: Dict[str, Any]) -> None:
        """Adopt a finished span recorded elsewhere (a pool worker)."""
        self._write(dict(span_dict))
        with self._lock:
            self.counters["exported"] += 1

    def _write(self, span_dict: Dict[str, Any]) -> None:
        with self._lock:
            trace_id = str(span_dict.get("trace_id") or "")
            bucket = self._ring.get(trace_id)
            if bucket is None:
                bucket = []
                self._ring[trace_id] = bucket
            else:
                self._ring.move_to_end(trace_id)
            if len(bucket) >= self.ring_size:
                # one runaway trace at the global cap: dropping beats
                # splitting its already-buffered tree
                self.counters["dropped"] += 1
            else:
                nbytes = _approx_span_bytes(span_dict)
                bucket.append((self._seq, span_dict, nbytes))
                self._seq += 1
                self._ring_spans += 1
                self._ring_bytes += nbytes
                while (
                    self._ring_spans > self.ring_size
                    or self._ring_bytes > self.max_ring_bytes
                ) and len(self._ring) > 1:
                    _, oldest = self._ring.popitem(last=False)
                    self._ring_spans -= len(oldest)
                    self._ring_bytes -= sum(entry[2] for entry in oldest)
                    self.counters["evicted_traces"] += 1
            if self.jsonl_path is not None:
                try:
                    with self.jsonl_path.open("a") as handle:
                        handle.write(json.dumps(span_dict, default=str) + "\n")
                except OSError:
                    # a sink must never fail the traced computation
                    self.counters["sink_errors"] += 1

    # ------------------------------------------------------------------
    def _flattened(self) -> List[Dict[str, Any]]:
        """Every buffered span in global arrival order (lock held)."""
        entries = [
            entry for bucket in self._ring.values() for entry in bucket
        ]
        entries.sort(key=lambda entry: entry[0])
        return [entry[1] for entry in entries]

    def finished_spans(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Spans currently in the ring, optionally filtered by trace."""
        with self._lock:
            if trace_id is not None:
                bucket = self._ring.get(str(trace_id), ())
                return [entry[1] for entry in sorted(bucket, key=lambda e: e[0])]
            return self._flattened()

    def trace_ids(self) -> List[str]:
        """Trace ids currently buffered, oldest first."""
        with self._lock:
            return list(self._ring)

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return every ring span (worker shipping, tests)."""
        with self._lock:
            spans = self._flattened()
            self._ring.clear()
            self._ring_spans = 0
            self._ring_bytes = 0
        return spans

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._ring_spans = 0
            self._ring_bytes = 0
            for key in self.counters:
                self.counters[key] = 0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able health view (``/statsz``)."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "ring_size": self.ring_size,
                "ring_spans": self._ring_spans,
                "ring_bytes": self._ring_bytes,
                "max_ring_bytes": self.max_ring_bytes,
                "ring_traces": len(self._ring),
                "sink": None if self.jsonl_path is None else str(self.jsonl_path),
                **self.counters,
            }


class NoopTracer(Tracer):
    """The zero-overhead default: hands out the shared inert span."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(ring_size=1)

    def span(self, name: str, parent: ParentLike = None, **attributes: Any) -> Span:
        return NOOP_SPAN  # type: ignore[return-value]

    def start_span(
        self, name: str, parent: ParentLike = None, **attributes: Any
    ) -> Span:
        return NOOP_SPAN  # type: ignore[return-value]

    def export(self, span_dict: Dict[str, Any]) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"enabled": False, "ring_size": 0, "ring_spans": 0, "sink": None}


# ----------------------------------------------------------------------
# global tracer management
# ----------------------------------------------------------------------
_tracer: Optional[Tracer] = None
_tracer_lock = threading.Lock()


def _tracer_from_env() -> Tracer:
    path = os.environ.get("REPRO_TRACE_FILE")
    flag = os.environ.get("REPRO_TRACE", "")
    if path:
        return Tracer(jsonl_path=path)
    if flag not in ("", "0"):
        return Tracer()
    return NoopTracer()


def get_tracer() -> Tracer:
    """The process-global tracer (environment-resolved on first use)."""
    global _tracer
    if _tracer is None:
        with _tracer_lock:
            if _tracer is None:
                _tracer = _tracer_from_env()
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the global; returns the previous one."""
    global _tracer
    with _tracer_lock:
        previous = _tracer if _tracer is not None else _tracer_from_env()
        _tracer = tracer
    return previous


def configure_tracing(
    enabled: bool = True,
    ring_size: int = 4096,
    jsonl_path: Optional[Union[str, Path]] = None,
    max_ring_bytes: int = DEFAULT_RING_BYTES,
) -> Tracer:
    """Build and install the global tracer; returns it."""
    tracer: Tracer
    if enabled:
        tracer = Tracer(
            ring_size=ring_size, jsonl_path=jsonl_path, max_ring_bytes=max_ring_bytes
        )
    else:
        tracer = NoopTracer()
    set_tracer(tracer)
    return tracer


def tracing_enabled() -> bool:
    return get_tracer().enabled
