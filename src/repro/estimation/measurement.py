"""The measurement model.

Follows the paper's numbering exactly (Section III-A and the Fig. 1 /
Table III case study): for a grid with ``l`` lines and ``b`` buses there
are ``m = 2l + b`` *potential* measurements —

* measurement ``i``      (1 <= i <= l): forward power flow of line i,
* measurement ``l + i``  (1 <= i <= l): backward power flow of line i,
* measurement ``2l + j`` (1 <= j <= b): power consumption at bus j.

A measurement *resides* at a substation: the forward flow meter sits at
the line's from-bus, the backward flow meter at the to-bus, the
consumption meter at its bus (this residency drives the attacker's
bus-compromise accounting, Eq. 23, and the bus-level countermeasures,
Eq. 28).

:class:`MeasurementPlan` records which potential measurements are taken
(``mz``), secured (``sz``) and attacker-accessible (``az``);
:func:`build_h` produces the Jacobian per Eq. (2) for a given (possibly
poisoned) topology mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.grid.dcflow import DcFlowResult
from repro.grid.model import Grid


@dataclass
class MeasurementPlan:
    """The measurement configuration of a grid.

    All index sets use the paper's 1-based measurement numbering.  By
    default every potential measurement is taken, none is secured, and
    all are accessible.
    """

    grid: Grid
    taken: Set[int] = field(default_factory=set)
    secured: Set[int] = field(default_factory=set)
    inaccessible: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.taken:
            self.taken = set(range(1, self.num_potential + 1))
        for name, index_set in (
            ("taken", self.taken),
            ("secured", self.secured),
            ("inaccessible", self.inaccessible),
        ):
            bad = [i for i in index_set if not 1 <= i <= self.num_potential]
            if bad:
                raise ValueError(f"{name} contains out-of-range measurements {bad}")

    # ------------------------------------------------------------------
    # numbering helpers
    # ------------------------------------------------------------------
    @property
    def num_potential(self) -> int:
        return 2 * self.grid.num_lines + self.grid.num_buses

    def forward_index(self, line_index: int) -> int:
        return line_index

    def backward_index(self, line_index: int) -> int:
        return self.grid.num_lines + line_index

    def bus_index(self, bus: int) -> int:
        return 2 * self.grid.num_lines + bus

    def describe(self, measurement: int) -> str:
        kind, element = self.classify(measurement)
        if kind == "forward":
            line = self.grid.line(element)
            return f"z{measurement}: P(line {element}: {line.from_bus}->{line.to_bus})"
        if kind == "backward":
            line = self.grid.line(element)
            return f"z{measurement}: P(line {element}: {line.to_bus}->{line.from_bus})"
        return f"z{measurement}: P(bus {element})"

    def classify(self, measurement: int) -> Tuple[str, int]:
        """``(kind, element)`` where kind is forward/backward/bus."""
        l = self.grid.num_lines
        if 1 <= measurement <= l:
            return ("forward", measurement)
        if l < measurement <= 2 * l:
            return ("backward", measurement - l)
        if 2 * l < measurement <= self.num_potential:
            return ("bus", measurement - 2 * l)
        raise ValueError(f"measurement {measurement} out of range")

    def residence_bus(self, measurement: int) -> int:
        """The substation (bus) where the measurement is recorded."""
        kind, element = self.classify(measurement)
        if kind == "forward":
            return self.grid.line(element).from_bus
        if kind == "backward":
            return self.grid.line(element).to_bus
        return element

    def measurements_at_bus(self, bus: int) -> List[int]:
        """All potential measurements residing at ``bus`` (paper Eq. 28)."""
        result = [self.bus_index(bus)]
        for line in self.grid.lines_at(bus):
            if line.from_bus == bus:
                result.append(self.forward_index(line.index))
            if line.to_bus == bus:
                result.append(self.backward_index(line.index))
        return sorted(result)

    # ------------------------------------------------------------------
    # status predicates
    # ------------------------------------------------------------------
    def is_taken(self, measurement: int) -> bool:
        return measurement in self.taken

    def is_secured(self, measurement: int) -> bool:
        return measurement in self.secured

    def is_accessible(self, measurement: int) -> bool:
        return measurement not in self.inaccessible

    def taken_in_order(self) -> List[int]:
        return sorted(self.taken)

    def with_secured_buses(self, buses: Iterable[int]) -> "MeasurementPlan":
        """A copy with every measurement at the given buses secured."""
        secured = set(self.secured)
        for bus in buses:
            secured.update(self.measurements_at_bus(bus))
        return MeasurementPlan(
            self.grid, set(self.taken), secured, set(self.inaccessible)
        )

    def with_secured_measurements(self, measurements: Iterable[int]) -> "MeasurementPlan":
        return MeasurementPlan(
            self.grid,
            set(self.taken),
            set(self.secured) | set(measurements),
            set(self.inaccessible),
        )


def build_h(
    grid: Grid,
    reference_bus: int = 1,
    taken: Optional[Sequence[int]] = None,
    mapped_lines: Optional[Iterable[int]] = None,
) -> np.ndarray:
    """Build the DC Jacobian H (paper Eq. 2) for the mapped topology.

    Rows follow the potential-measurement numbering restricted to
    ``taken`` (sorted); columns are bus angles with the reference bus
    removed.  Measurements on unmapped lines produce all-zero rows (the
    estimator does not relate them to any state), matching the topology-
    poisoning semantics of Section III-E.
    """
    l, b = grid.num_lines, grid.num_buses
    mapped = set(range(1, l + 1)) if mapped_lines is None else set(mapped_lines)
    plan_rows = sorted(taken) if taken is not None else list(range(1, 2 * l + b + 1))
    columns = [j for j in range(1, b + 1) if j != reference_bus]
    col_of = {bus: k for k, bus in enumerate(columns)}
    h = np.zeros((len(plan_rows), len(columns)))

    def add(row: int, bus: int, coeff: float) -> None:
        if bus != reference_bus:
            h[row, col_of[bus]] += coeff

    for row, meas in enumerate(plan_rows):
        if meas <= l:  # forward flow of line `meas`
            line = grid.line(meas)
            if line.index in mapped:
                add(row, line.from_bus, line.admittance)
                add(row, line.to_bus, -line.admittance)
        elif meas <= 2 * l:  # backward flow
            line = grid.line(meas - l)
            if line.index in mapped:
                add(row, line.from_bus, -line.admittance)
                add(row, line.to_bus, line.admittance)
        else:  # bus consumption (Eq. 4: incoming minus outgoing)
            bus = meas - 2 * l
            for line in grid.lines_at(bus):
                if line.index not in mapped:
                    continue
                sign = 1.0 if line.to_bus == bus else -1.0
                add(row, line.from_bus, sign * line.admittance)
                add(row, line.to_bus, -sign * line.admittance)
    return h


def build_measurements(
    plan: MeasurementPlan,
    flow: DcFlowResult,
    noise_std: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """The telemetered measurement vector z for an operating point.

    Values follow the same ordering as :func:`build_h` with
    ``taken=plan.taken_in_order()``.  Optional Gaussian noise models
    meter error.
    """
    values: List[float] = []
    for meas in plan.taken_in_order():
        kind, element = plan.classify(meas)
        if kind == "forward":
            values.append(flow.flow(element))
        elif kind == "backward":
            values.append(-flow.flow(element))
        else:
            values.append(flow.consumption(element))
    z = np.array(values)
    if noise_std > 0:
        rng = np.random.default_rng(seed)
        z = z + rng.normal(0.0, noise_std, size=z.shape)
    return z
