"""Graph-based (topological) observability analysis.

The numerical rank test (:mod:`repro.estimation.observability`) answers
*whether* a plan is observable; the classical graph-theoretic analysis
(Krumpholz/Clements/Davis style, simplified to the DC measurement
model) explains *why*: it builds a maximal *measurement spanning
forest* and reports the observable islands and the boundary buses where
state cannot be related across islands.

For the DC model the construction is exact for flow measurements (a
taken flow measurement on line i merges its two end buses) and a safe
approximation for injections (an injection at bus j merges j with its
neighbours once all other incident flows are resolvable; we use the
standard greedy assignment, which may under-approximate observability
but never over-approximates island merging incorrectly for forest
assignment of injections to unresolved incident lines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.estimation.measurement import MeasurementPlan
from repro.grid.model import Grid


class _UnionFind:
    def __init__(self, items) -> None:
        self.parent = {item: item for item in items}

    def find(self, item):
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a, b) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


@dataclass(frozen=True)
class TopologicalObservability:
    """Result of graph-based observability analysis.

    ``islands``            — maximal observable bus groups
    ``observable``         — True iff one island covers the whole grid
    ``flow_merged_lines``  — lines whose flow measurement merged islands
    ``injection_assignments`` — injection bus -> line it was assigned to
    """

    islands: Tuple[frozenset, ...]
    observable: bool
    flow_merged_lines: Tuple[int, ...]
    injection_assignments: Dict[int, int]


def topological_observability(plan: MeasurementPlan) -> TopologicalObservability:
    """Run the forest-construction observability analysis."""
    grid = plan.grid
    uf = _UnionFind(grid.buses)
    flow_merged: List[int] = []
    # phase 1: every taken flow measurement relates its two end buses
    for line in grid.lines:
        fwd = plan.forward_index(line.index)
        bwd = plan.backward_index(line.index)
        if plan.is_taken(fwd) or plan.is_taken(bwd):
            if uf.union(line.from_bus, line.to_bus):
                flow_merged.append(line.index)
    # phase 2: greedily assign each taken injection to one incident
    # unmerged line (the injection equation then determines that line's
    # flow, merging the islands); iterate to a fixpoint
    assignments: Dict[int, int] = {}
    changed = True
    while changed:
        changed = False
        for j in grid.buses:
            if j in assignments or not plan.is_taken(plan.bus_index(j)):
                continue
            # candidate lines: incident lines whose ends are in
            # different islands
            candidates = [
                line
                for line in grid.lines_at(j)
                if uf.find(line.from_bus) != uf.find(line.to_bus)
            ]
            if len(candidates) == 1:
                # unambiguous: the injection pins exactly this boundary
                # flow, so the merge is certain
                line = candidates[0]
                uf.union(line.from_bus, line.to_bus)
                assignments[j] = line.index
                changed = True
    # one more greedy sweep: ambiguous injections still merge one island
    # (standard forest assignment: pick any candidate)
    for j in grid.buses:
        if j in assignments or not plan.is_taken(plan.bus_index(j)):
            continue
        candidates = [
            line
            for line in grid.lines_at(j)
            if uf.find(line.from_bus) != uf.find(line.to_bus)
        ]
        if candidates:
            line = candidates[0]
            uf.union(line.from_bus, line.to_bus)
            assignments[j] = line.index

    groups: Dict[int, Set[int]] = {}
    for j in grid.buses:
        groups.setdefault(uf.find(j), set()).add(j)
    islands = tuple(
        frozenset(group) for group in sorted(groups.values(), key=lambda g: min(g))
    )
    return TopologicalObservability(
        islands=islands,
        observable=len(islands) == 1,
        flow_merged_lines=tuple(flow_merged),
        injection_assignments=assignments,
    )


def unobservable_boundary_lines(plan: MeasurementPlan) -> List[int]:
    """Lines crossing observable-island boundaries.

    These are exactly the cut lines along which an attacker can shift
    whole islands without touching any taken measurement — the
    island-shift attacks the paper's Eq. 26 distinctness requirement
    guards against.
    """
    result = topological_observability(plan)
    if result.observable:
        return []
    island_of = {}
    for k, island in enumerate(result.islands):
        for bus in island:
            island_of[bus] = k
    return [
        line.index
        for line in plan.grid.lines
        if island_of[line.from_bus] != island_of[line.to_bus]
    ]
