"""Residual-based topology-error detection.

The EMS cross-checks the mapped topology against the telemetered
analogs: if the topology processor's output is wrong (a line wrongly
excluded or included) while the measurements reflect the *true* system,
the WLS residual inflates and the chi-square alarm fires — this is the
detector the paper's Section III-E constraints are designed to evade by
co-ordinating measurement injections with the topology change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.estimation.baddata import BadDataResult, chi_square_test
from repro.estimation.measurement import MeasurementPlan, build_h
from repro.estimation.wls import StateEstimate, wls_estimate
from repro.grid.topology import TopologySnapshot


@dataclass(frozen=True)
class TopologyCheckResult:
    """Outcome of estimating with an assumed topology."""

    estimate: StateEstimate
    bad_data: BadDataResult

    @property
    def topology_suspected(self) -> bool:
        """True when the residual test flags the assumed topology."""
        return self.bad_data.bad_data_detected


def check_topology(
    plan: MeasurementPlan,
    snapshot: TopologySnapshot,
    z: np.ndarray,
    weights: Optional[Sequence[float]] = None,
    reference_bus: int = 1,
    alpha: float = 0.01,
) -> TopologyCheckResult:
    """Estimate states with ``snapshot``'s topology and test the residual.

    ``z`` must follow the plan's taken-measurement ordering.  An
    un-coordinated topology error (measurements still reflecting the
    true grid) is expected to trip the detector; a UFDI-coordinated one
    (paper Section III-E) is not.
    """
    h = build_h(
        plan.grid,
        reference_bus,
        taken=plan.taken_in_order(),
        mapped_lines=snapshot.mapped_lines,
    )
    estimate = wls_estimate(h, z, weights)
    return TopologyCheckResult(estimate, chi_square_test(estimate, alpha))
