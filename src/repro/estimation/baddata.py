"""Bad data detection and identification.

Two classical procedures (Abur & Exposito, ch. 5) on top of the WLS
residual:

* the **chi-square test** on the weighted residual sum of squares —
  this is the detector UFDI attacks are designed to evade (paper
  Section II-B): the objective follows a chi-square distribution with
  ``m - n`` degrees of freedom under Gaussian errors, and the alarm
  fires when it exceeds the ``1 - alpha`` quantile;
* **largest normalized residual (LNR)** identification, which locates
  which measurement is bad using the residual covariance
  ``Omega = R - H G^{-1} H^T``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.estimation.wls import StateEstimate, gain_matrix, wls_estimate


@dataclass(frozen=True)
class BadDataResult:
    """Outcome of a chi-square bad-data test."""

    objective: float
    threshold: float
    dof: int
    alpha: float

    @property
    def bad_data_detected(self) -> bool:
        return self.objective > self.threshold


def chi_square_threshold(dof: int, alpha: float = 0.01) -> float:
    """The detection threshold tau at significance level ``alpha``."""
    if dof <= 0:
        raise ValueError("chi-square test needs positive degrees of freedom")
    return float(stats.chi2.ppf(1.0 - alpha, dof))


def chi_square_test(estimate: StateEstimate, alpha: float = 0.01) -> BadDataResult:
    """Run the chi-square bad-data test on a WLS estimate."""
    threshold = chi_square_threshold(estimate.dof, alpha)
    return BadDataResult(
        objective=estimate.objective,
        threshold=threshold,
        dof=estimate.dof,
        alpha=alpha,
    )


def residual_covariance(
    h: np.ndarray, weights: Optional[Sequence[float]] = None
) -> np.ndarray:
    """``Omega = R - H G^{-1} H^T`` where ``R = W^{-1}``."""
    h = np.asarray(h, dtype=float)
    m = h.shape[0]
    w = np.ones(m) if weights is None else np.asarray(weights, dtype=float)
    g = gain_matrix(h, w)
    return np.diag(1.0 / w) - h @ np.linalg.solve(g, h.T)


def largest_normalized_residuals(
    h: np.ndarray,
    z: np.ndarray,
    weights: Optional[Sequence[float]] = None,
    top: int = 5,
) -> List[Tuple[int, float]]:
    """Rank measurements by normalized residual (largest first).

    Returns up to ``top`` pairs ``(row_index, r_N)``; the first entry is
    the LNR suspect.  Rows whose residual variance is (numerically) zero
    are *critical measurements* — their residual is structurally zero
    and they are skipped.
    """
    estimate = wls_estimate(h, z, weights)
    omega = residual_covariance(h, weights)
    diag = np.clip(np.diag(omega), 0.0, None)
    scores: List[Tuple[int, float]] = []
    for i, (r_i, var_i) in enumerate(zip(estimate.residual, diag)):
        if var_i < 1e-10:
            continue  # critical measurement: residual always ~0
        scores.append((i, abs(r_i) / np.sqrt(var_i)))
    scores.sort(key=lambda pair: -pair[1])
    return scores[:top]


def identify_bad_data(
    h: np.ndarray,
    z: np.ndarray,
    weights: Optional[Sequence[float]] = None,
    rn_threshold: float = 3.0,
    max_removals: int = 10,
) -> Tuple[List[int], StateEstimate]:
    """Iteratively remove LNR-suspect measurements until the test passes.

    Returns the removed row indices (into the original H/z) and the
    final estimate.  This is the classical identify-and-purge loop a
    *naive* (non-stealthy) injection triggers; UFDI attacks leave it
    inert, which the integration tests demonstrate.
    """
    h = np.asarray(h, dtype=float)
    z = np.asarray(z, dtype=float)
    m = h.shape[0]
    w = np.ones(m) if weights is None else np.asarray(weights, dtype=float)
    active = list(range(m))
    removed: List[int] = []
    while len(removed) < max_removals:
        sub_h, sub_z, sub_w = h[active], z[active], w[active]
        estimate = wls_estimate(sub_h, sub_z, sub_w)
        ranked = largest_normalized_residuals(sub_h, sub_z, sub_w, top=1)
        if not ranked or ranked[0][1] <= rn_threshold:
            return removed, estimate
        removed.append(active.pop(ranked[0][0]))
    return removed, wls_estimate(h[active], z[active], w[active])
