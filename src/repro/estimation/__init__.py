"""State-estimation substrate: measurement model, WLS, bad-data detection.

Implements the estimation pipeline the paper attacks: the measurement
model built from the (possibly poisoned) topology (paper Eq. 2), the
weighted-least-squares estimator (Eq. 1), the chi-square bad-data test
and largest-normalized-residual identification, numerical observability
analysis, and residual-based topology-error detection.
"""

from repro.estimation.measurement import MeasurementPlan, build_h, build_measurements
from repro.estimation.wls import (
    StateEstimate,
    UnobservableSystemError,
    WlsEstimator,
    wls_estimate,
)
from repro.estimation.baddata import BadDataResult, chi_square_test, largest_normalized_residuals
from repro.estimation.observability import (
    ObservabilityReport,
    analyze_observability,
    basic_measurement_set,
    critical_measurements,
)

__all__ = [
    "BadDataResult",
    "MeasurementPlan",
    "ObservabilityReport",
    "StateEstimate",
    "UnobservableSystemError",
    "WlsEstimator",
    "analyze_observability",
    "basic_measurement_set",
    "build_h",
    "build_measurements",
    "chi_square_test",
    "critical_measurements",
    "largest_normalized_residuals",
    "wls_estimate",
]
