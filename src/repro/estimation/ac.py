"""AC power flow and AC state estimation.

The paper (like the UFDI literature it builds on) works in the DC
approximation; this module provides the AC counterparts so the scope of
that assumption can be *measured* rather than assumed:

* :func:`solve_ac_flow` — full Newton-Raphson AC power flow;
* :func:`ac_wls_estimate` — Gauss-Newton AC WLS state estimation over
  P/Q flows, P/Q injections and voltage magnitudes;
* :func:`AcSystem.dc_attack_residual_inflation` — replay a DC-stealthy
  attack against the AC estimator and report how much residual it
  leaks (the classic result: DC-perfect attacks are *approximately*
  stealthy under AC, degrading as loading grows).

Line resistances and charging are not part of the DC data; the
:class:`AcSystem` constructor synthesizes them from a uniform r/x
ratio (documented substitution — the qualitative behaviour is
insensitive to the exact ratio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.estimation.measurement import MeasurementPlan
from repro.grid.model import Grid


class AcConvergenceError(RuntimeError):
    """Newton iteration failed to converge."""


@dataclass
class AcFlowResult:
    """AC power-flow solution (polar)."""

    v: np.ndarray      # voltage magnitudes, index 0 == bus 1
    theta: np.ndarray  # voltage angles (radians)
    p: np.ndarray      # net active injections
    q: np.ndarray      # net reactive injections
    iterations: int


class AcSystem:
    """An AC view of a DC grid model."""

    def __init__(
        self,
        grid: Grid,
        r_over_x: float = 0.1,
        shunt_b: float = 0.0,
    ) -> None:
        self.grid = grid
        self.r_over_x = r_over_x
        self.shunt_b = shunt_b
        n = grid.num_buses
        y = np.zeros((n, n), dtype=complex)
        for line in grid.lines:
            x = line.reactance
            r = r_over_x * x
            series = 1.0 / complex(r, x)
            f, t = line.from_bus - 1, line.to_bus - 1
            y[f, f] += series + 1j * shunt_b / 2
            y[t, t] += series + 1j * shunt_b / 2
            y[f, t] -= series
            y[t, f] -= series
        self.ybus = y

    # ------------------------------------------------------------------
    # power equations
    # ------------------------------------------------------------------
    def injections(self, v: np.ndarray, theta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Net (P, Q) injections for a voltage profile."""
        vc = v * np.exp(1j * theta)
        s = vc * np.conj(self.ybus @ vc)
        return s.real, s.imag

    def line_flow(
        self, line_index: int, v: np.ndarray, theta: np.ndarray, backward: bool = False
    ) -> Tuple[float, float]:
        """(P, Q) flow of a line measured at one end (from-end by default)."""
        line = self.grid.line(line_index)
        f, t = line.from_bus - 1, line.to_bus - 1
        if backward:
            f, t = t, f
        x = line.reactance
        series = 1.0 / complex(self.r_over_x * x, x)
        vf = v[f] * np.exp(1j * theta[f])
        vt = v[t] * np.exp(1j * theta[t])
        current = (vf - vt) * series + vf * 1j * self.shunt_b / 2
        s = vf * np.conj(current)
        return float(s.real), float(s.imag)

    # ------------------------------------------------------------------
    # power flow
    # ------------------------------------------------------------------
    def solve_power_flow(
        self,
        p_injections: Sequence[float],
        q_injections: Sequence[float],
        slack_bus: int = 1,
        tol: float = 1e-10,
        max_iterations: int = 30,
    ) -> AcFlowResult:
        """Newton-Raphson power flow (slack bus + PQ buses).

        ``p_injections``/``q_injections`` are specified for every bus;
        the slack bus's entries are ignored (it absorbs the mismatch,
        including losses).
        """
        n = self.grid.num_buses
        slack = slack_bus - 1
        pq = [i for i in range(n) if i != slack]
        v = np.ones(n)
        theta = np.zeros(n)
        p_spec = np.asarray(p_injections, dtype=float)
        q_spec = np.asarray(q_injections, dtype=float)
        for iteration in range(1, max_iterations + 1):
            p, q = self.injections(v, theta)
            mismatch = np.concatenate([(p_spec - p)[pq], (q_spec - q)[pq]])
            if np.max(np.abs(mismatch)) < tol:
                return AcFlowResult(v, theta, p, q, iteration)
            jac = self._pf_jacobian(v, theta, pq)
            step = np.linalg.solve(jac, mismatch)
            theta[pq] += step[: len(pq)]
            v[pq] += step[len(pq):]
        raise AcConvergenceError(
            f"power flow did not converge in {max_iterations} iterations"
        )

    def _pf_jacobian(self, v, theta, pq, eps: float = 1e-7) -> np.ndarray:
        """Finite-difference Jacobian of the mismatch equations."""
        m = 2 * len(pq)
        jac = np.zeros((m, m))
        p0, q0 = self.injections(v, theta)
        base = np.concatenate([p0[pq], q0[pq]])
        for k, bus in enumerate(pq):
            th = theta.copy()
            th[bus] += eps
            p1, q1 = self.injections(v, th)
            jac[:, k] = (np.concatenate([p1[pq], q1[pq]]) - base) / eps
        for k, bus in enumerate(pq):
            vv = v.copy()
            vv[bus] += eps
            p1, q1 = self.injections(vv, theta)
            jac[:, len(pq) + k] = (np.concatenate([p1[pq], q1[pq]]) - base) / eps
        return jac

    # ------------------------------------------------------------------
    # measurement model
    # ------------------------------------------------------------------
    def measurement_vector(
        self, plan: MeasurementPlan, v: np.ndarray, theta: np.ndarray,
        include_reactive: bool = True, include_voltage: bool = True,
    ) -> np.ndarray:
        """AC measurements in extended plan order.

        Layout: for every taken DC measurement, its active-power analog
        (P flow / P injection as consumption); then, when enabled, the
        matching reactive measurements; then voltage magnitudes at every
        bus.  :func:`ac_measurement_labels` documents the ordering.
        """
        p_inj, q_inj = self.injections(v, theta)
        values: List[float] = []
        for meas in plan.taken_in_order():
            kind, element = plan.classify(meas)
            if kind == "forward":
                values.append(self.line_flow(element, v, theta)[0])
            elif kind == "backward":
                values.append(self.line_flow(element, v, theta, backward=True)[0])
            else:
                values.append(-p_inj[element - 1])  # consumption convention
        if include_reactive:
            for meas in plan.taken_in_order():
                kind, element = plan.classify(meas)
                if kind == "forward":
                    values.append(self.line_flow(element, v, theta)[1])
                elif kind == "backward":
                    values.append(self.line_flow(element, v, theta, backward=True)[1])
                else:
                    values.append(-q_inj[element - 1])
        if include_voltage:
            values.extend(v)
        return np.array(values)

    def estimate_state(
        self,
        plan: MeasurementPlan,
        z: np.ndarray,
        weights: Optional[Sequence[float]] = None,
        include_reactive: bool = True,
        include_voltage: bool = True,
        slack_bus: int = 1,
        tol: float = 1e-9,
        max_iterations: int = 40,
    ) -> "AcEstimate":
        """Gauss-Newton AC WLS estimation.

        States: angles at all buses except the slack, magnitudes at all
        buses.  The Jacobian is finite-difference (robust and adequate
        for test-scale systems).
        """
        n = self.grid.num_buses
        slack = slack_bus - 1
        angle_vars = [i for i in range(n) if i != slack]
        m = len(z)
        w = np.ones(m) if weights is None else np.asarray(weights, dtype=float)
        v = np.ones(n)
        theta = np.zeros(n)

        def h_of(v_, theta_):
            return self.measurement_vector(
                plan, v_, theta_, include_reactive, include_voltage
            )

        for iteration in range(1, max_iterations + 1):
            h0 = h_of(v, theta)
            residual = z - h0
            jac = np.zeros((m, len(angle_vars) + n))
            eps = 1e-7
            for k, bus in enumerate(angle_vars):
                th = theta.copy()
                th[bus] += eps
                jac[:, k] = (h_of(v, th) - h0) / eps
            for k in range(n):
                vv = v.copy()
                vv[k] += eps
                jac[:, len(angle_vars) + k] = (h_of(vv, theta) - h0) / eps
            sqrt_w = np.sqrt(w)
            step, *_ = np.linalg.lstsq(
                jac * sqrt_w[:, None], residual * sqrt_w, rcond=None
            )
            theta[angle_vars] += step[: len(angle_vars)]
            v += step[len(angle_vars):]
            if np.max(np.abs(step)) < tol:
                final = z - h_of(v, theta)
                return AcEstimate(
                    v=v,
                    theta=theta,
                    residual=final,
                    objective=float(final @ (w * final)),
                    iterations=iteration,
                )
        raise AcConvergenceError(
            f"state estimation did not converge in {max_iterations} iterations"
        )


@dataclass
class AcEstimate:
    """Result of an AC WLS estimation."""

    v: np.ndarray
    theta: np.ndarray
    residual: np.ndarray
    objective: float
    iterations: int


def dc_attack_residual_inflation(
    system: AcSystem,
    plan: MeasurementPlan,
    flow: AcFlowResult,
    attack,
    noise_std: float = 0.005,
    seed: int = 0,
) -> Tuple[float, float]:
    """Replay a DC-stealthy attack against the AC estimator.

    The attack's deltas (active-power measurements only) are added to
    the AC telemetry; returns ``(clean_objective, attacked_objective)``.
    A DC-perfect attack typically inflates the AC residual — the cost
    of the paper's DC scope, quantified.
    """
    rng = np.random.default_rng(seed)
    z = system.measurement_vector(plan, flow.v, flow.theta)
    z = z + rng.normal(0.0, noise_std, size=z.shape)
    w = np.full(len(z), 1 / noise_std**2)
    clean = system.estimate_state(plan, z, w)
    taken = plan.taken_in_order()
    position = {meas: i for i, meas in enumerate(taken)}
    z_attacked = z.copy()
    for meas, delta in attack.measurement_deltas.items():
        if meas in position:
            z_attacked[position[meas]] += delta
    attacked = system.estimate_state(plan, z_attacked, w)
    return clean.objective, attacked.objective
