"""Hybrid SCADA + PMU state estimation (DC model).

The paper's countermeasure deploys secured PMUs at selected buses
(Section IV-A).  Besides *securing* the existing measurements there, a
PMU adds a qualitatively different measurement: a direct, time-synchronized
reading of the bus angle itself.  This module extends the DC estimator
with those phasor rows so the defense can be studied numerically:

* PMU angle rows are ``e_j`` unit rows in H — they pin states directly;
* a stealthy attack ``a = Hc`` must now satisfy ``c_j = a_(pmu row)``,
  so *secured* PMU rows force ``c_j = 0`` at every PMU bus;
* :func:`pmu_attack_space_dimension` quantifies the remaining stealthy
  degrees of freedom for a placement.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.estimation.measurement import MeasurementPlan, build_h, build_measurements
from repro.grid.dcflow import DcFlowResult
from repro.grid.model import Grid


def build_h_with_pmus(
    grid: Grid,
    pmu_buses: Sequence[int],
    reference_bus: int = 1,
    taken: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """H for the SCADA plan plus one angle row per PMU bus.

    PMU rows are appended after the SCADA rows, in ``pmu_buses`` order;
    a PMU at the reference bus contributes an all-zero row (its angle is
    the reference and carries no information).
    """
    scada = build_h(grid, reference_bus, taken=taken)
    columns = [j for j in grid.buses if j != reference_bus]
    col_of = {bus: k for k, bus in enumerate(columns)}
    pmu_rows = np.zeros((len(pmu_buses), len(columns)))
    for row, bus in enumerate(pmu_buses):
        if bus != reference_bus:
            pmu_rows[row, col_of[bus]] = 1.0
    return np.vstack([scada, pmu_rows])


def build_measurements_with_pmus(
    plan: MeasurementPlan,
    flow: DcFlowResult,
    pmu_buses: Sequence[int],
    noise_std: float = 0.0,
    pmu_noise_std: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """The hybrid telemetry vector: SCADA block then PMU angle block.

    PMUs are typically an order of magnitude more accurate than SCADA;
    pass distinct noise levels to model that.
    """
    z_scada = build_measurements(plan, flow, noise_std=noise_std, seed=seed)
    angles = np.array([flow.angle(bus) for bus in pmu_buses])
    if pmu_noise_std > 0:
        rng = np.random.default_rng(seed + 1)
        angles = angles + rng.normal(0.0, pmu_noise_std, size=angles.shape)
    return np.concatenate([z_scada, angles])


def hybrid_weights(
    plan: MeasurementPlan,
    num_pmus: int,
    scada_std: float,
    pmu_std: float,
) -> np.ndarray:
    """WLS weights for the hybrid vector (reciprocal variances)."""
    return np.concatenate(
        [
            np.full(len(plan.taken), 1.0 / scada_std**2),
            np.full(num_pmus, 1.0 / pmu_std**2),
        ]
    )


def pmu_attack_space_dimension(
    plan: MeasurementPlan,
    pmu_buses: Iterable[int],
    reference_bus: int = 1,
    tol: float = 1e-9,
) -> int:
    """Dimension of the stealthy state-shift space under secured PMUs.

    Protected rows are the plan's secured/inaccessible SCADA
    measurements plus the PMU angle rows (PMUs are assumed
    integrity-protected, as in the paper).  Zero means no undetected
    attack of any kind remains.
    """
    grid = plan.grid
    protected_scada = sorted(
        m
        for m in plan.taken
        if plan.is_secured(m) or not plan.is_accessible(m)
    )
    rows: List[np.ndarray] = []
    if protected_scada:
        rows.extend(build_h(grid, reference_bus, taken=protected_scada))
    columns = [j for j in grid.buses if j != reference_bus]
    col_of = {bus: k for k, bus in enumerate(columns)}
    for bus in pmu_buses:
        if bus == reference_bus:
            continue
        row = np.zeros(len(columns))
        row[col_of[bus]] = 1.0
        rows.append(row)
    n = len(columns)
    if not rows:
        return n
    rank = int(np.linalg.matrix_rank(np.array(rows), tol=tol))
    return n - rank


def minimal_pmu_count_for_immunity(
    plan: MeasurementPlan,
    reference_bus: int = 1,
) -> Tuple[int, List[int]]:
    """Greedy: fewest PMU-angle buses closing the whole attack space.

    Unlike bus-level measurement securing, every PMU angle row pins one
    new state directly, so the greedy count equals the dimension of the
    space left open by the already-protected SCADA rows.
    """
    chosen: List[int] = []
    remaining = pmu_attack_space_dimension(plan, chosen, reference_bus)
    candidates = [j for j in plan.grid.buses if j != reference_bus]
    while remaining > 0:
        best_bus, best_dim = None, remaining
        for bus in candidates:
            if bus in chosen:
                continue
            dim = pmu_attack_space_dimension(plan, chosen + [bus], reference_bus)
            if dim < best_dim:
                best_bus, best_dim = bus, dim
                if dim == remaining - 1:
                    break  # an angle row cuts at most one dimension
        if best_bus is None:
            break
        chosen.append(best_bus)
        remaining = best_dim
    return len(chosen), sorted(chosen)
