"""Numerical observability analysis.

Tools used both by operators (is the measurement plan sufficient?) and
by the Bobba et al. defense baseline (protecting a *basic measurement
set* — a minimal row subset of full rank — provably blocks all UFDI
attacks under the perfect-knowledge model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.estimation.measurement import MeasurementPlan, build_h
from repro.grid.model import Grid


@dataclass(frozen=True)
class ObservabilityReport:
    """Result of an observability analysis for a measurement plan."""

    num_states: int
    rank: int
    observable: bool
    redundancy: float  # taken measurements per state


def analyze_observability(
    plan: MeasurementPlan,
    reference_bus: int = 1,
    rank_tol: float = 1e-8,
) -> ObservabilityReport:
    """Check whether the taken measurements make the system observable."""
    grid = plan.grid
    h = build_h(grid, reference_bus, taken=plan.taken_in_order())
    n = grid.num_buses - 1
    rank = int(np.linalg.matrix_rank(h, tol=rank_tol))
    return ObservabilityReport(
        num_states=n,
        rank=rank,
        observable=rank == n,
        redundancy=len(plan.taken) / max(n, 1),
    )


def basic_measurement_set(
    plan: MeasurementPlan,
    reference_bus: int = 1,
    rank_tol: float = 1e-8,
    prefer: Optional[Sequence[int]] = None,
) -> List[int]:
    """A minimal set of taken measurements with full-rank H.

    Greedy: scan measurements (``prefer`` first, then numbering order),
    keeping a row when it increases rank.  The result has exactly
    ``n = b - 1`` measurements for an observable plan; protecting them
    is the Bobba et al. sufficient condition against UFDI attacks.
    """
    grid = plan.grid
    n = grid.num_buses - 1
    order: List[int] = []
    seen = set()
    for meas in list(prefer or []) + plan.taken_in_order():
        if meas in plan.taken and meas not in seen:
            order.append(meas)
            seen.add(meas)
    chosen: List[int] = []
    rows: List[np.ndarray] = []
    rank = 0
    for meas in order:
        row = build_h(grid, reference_bus, taken=[meas])[0]
        candidate = rows + [row]
        new_rank = int(np.linalg.matrix_rank(np.array(candidate), tol=rank_tol))
        if new_rank > rank:
            chosen.append(meas)
            rows.append(row)
            rank = new_rank
            if rank == n:
                break
    return sorted(chosen)


def critical_measurements(
    plan: MeasurementPlan,
    reference_bus: int = 1,
    rank_tol: float = 1e-8,
) -> List[int]:
    """Measurements whose single removal makes the system unobservable.

    The residual of a critical measurement is structurally zero, so bad
    data on it is undetectable even without coordination — operators
    care about eliminating them with redundancy.
    """
    grid = plan.grid
    n = grid.num_buses - 1
    taken = plan.taken_in_order()
    full = build_h(grid, reference_bus, taken=taken)
    if int(np.linalg.matrix_rank(full, tol=rank_tol)) < n:
        raise ValueError("system is not observable; criticality is undefined")
    critical: List[int] = []
    for pos, meas in enumerate(taken):
        reduced = np.delete(full, pos, axis=0)
        if int(np.linalg.matrix_rank(reduced, tol=rank_tol)) < n:
            critical.append(meas)
    return critical
