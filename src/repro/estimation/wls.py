"""Weighted least squares state estimation (paper Eq. 1).

``x_hat = (H^T W H)^{-1} H^T W z`` with W the inverse meter-error
covariance.  The residual ``z - H x_hat`` feeds the bad-data detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


class UnobservableSystemError(ValueError):
    """H is rank-deficient: the state is not estimable from z."""


@dataclass(frozen=True)
class StateEstimate:
    """Result of a WLS estimation.

    ``x_hat``        — estimated states (bus angles, reference removed)
    ``residual``     — ``z - H x_hat``
    ``objective``    — weighted residual sum of squares ``r^T W r``
    ``residual_norm``— the l2 norm ``||z - H x_hat||`` the paper uses
    ``dof``          — degrees of freedom ``m - n`` of the chi-square test
    """

    x_hat: np.ndarray
    residual: np.ndarray
    objective: float
    residual_norm: float
    dof: int


def wls_estimate(
    h: np.ndarray,
    z: np.ndarray,
    weights: Optional[Sequence[float]] = None,
    rank_tol: float = 1e-8,
) -> StateEstimate:
    """Solve the WLS estimation problem.

    ``weights`` are the diagonal of W (reciprocal meter variances); all
    ones by default.  Raises :class:`UnobservableSystemError` when H is
    rank-deficient (unobservable system).
    """
    h = np.asarray(h, dtype=float)
    z = np.asarray(z, dtype=float)
    m, n = h.shape
    if z.shape != (m,):
        raise ValueError(f"z must have length {m}, got {z.shape}")
    w = np.ones(m) if weights is None else np.asarray(weights, dtype=float)
    if w.shape != (m,):
        raise ValueError(f"weights must have length {m}, got {w.shape}")
    if np.any(w <= 0):
        raise ValueError("weights must be positive")
    sqrt_w = np.sqrt(w)
    hw = h * sqrt_w[:, None]
    rank = np.linalg.matrix_rank(hw, tol=rank_tol)
    if rank < n:
        raise UnobservableSystemError(
            f"H has rank {rank} < {n}: system unobservable with this plan"
        )
    x_hat, *_ = np.linalg.lstsq(hw, z * sqrt_w, rcond=None)
    residual = z - h @ x_hat
    objective = float(residual @ (w * residual))
    return StateEstimate(
        x_hat=x_hat,
        residual=residual,
        objective=objective,
        residual_norm=float(np.linalg.norm(residual)),
        dof=m - n,
    )


def gain_matrix(h: np.ndarray, weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """The WLS gain matrix ``G = H^T W H`` (used by residual analysis)."""
    h = np.asarray(h, dtype=float)
    m = h.shape[0]
    w = np.ones(m) if weights is None else np.asarray(weights, dtype=float)
    return h.T @ (h * w[:, None])


def hat_matrix(h: np.ndarray, weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """The projection ``K = H G^{-1} H^T W`` mapping z to estimated z."""
    h = np.asarray(h, dtype=float)
    m = h.shape[0]
    w = np.ones(m) if weights is None else np.asarray(weights, dtype=float)
    g = gain_matrix(h, w)
    return h @ np.linalg.solve(g, h.T * w[None, :])
