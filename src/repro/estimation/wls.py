"""Weighted least squares state estimation (paper Eq. 1).

``x_hat = (H^T W H)^{-1} H^T W z`` with W the inverse meter-error
covariance.  The residual ``z - H x_hat`` feeds the bad-data detector.

:func:`wls_estimate` is the one-shot entry point.  Streaming workloads
(the continuous-monitoring emulator estimates every tick) use
:class:`WlsEstimator`, which caches the factorized gain matrix per
(topology, measurement set) key so re-estimation on an unchanged grid
is two triangular solves instead of a fresh factorization.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

import numpy as np
from scipy import linalg as scipy_linalg


class UnobservableSystemError(ValueError):
    """H is rank-deficient: the state is not estimable from z."""


@dataclass(frozen=True)
class StateEstimate:
    """Result of a WLS estimation.

    ``x_hat``        — estimated states (bus angles, reference removed)
    ``residual``     — ``z - H x_hat``
    ``objective``    — weighted residual sum of squares ``r^T W r``
    ``residual_norm``— the l2 norm ``||z - H x_hat||`` the paper uses
    ``dof``          — degrees of freedom ``m - n`` of the chi-square test
    """

    x_hat: np.ndarray
    residual: np.ndarray
    objective: float
    residual_norm: float
    dof: int


def wls_estimate(
    h: np.ndarray,
    z: np.ndarray,
    weights: Optional[Sequence[float]] = None,
    rank_tol: float = 1e-8,
) -> StateEstimate:
    """Solve the WLS estimation problem.

    ``weights`` are the diagonal of W (reciprocal meter variances); all
    ones by default.  Raises :class:`UnobservableSystemError` when H is
    rank-deficient (unobservable system).
    """
    h = np.asarray(h, dtype=float)
    z = np.asarray(z, dtype=float)
    m, n = h.shape
    if z.shape != (m,):
        raise ValueError(f"z must have length {m}, got {z.shape}")
    w = np.ones(m) if weights is None else np.asarray(weights, dtype=float)
    if w.shape != (m,):
        raise ValueError(f"weights must have length {m}, got {w.shape}")
    if np.any(w <= 0):
        raise ValueError("weights must be positive")
    sqrt_w = np.sqrt(w)
    hw = h * sqrt_w[:, None]
    rank = np.linalg.matrix_rank(hw, tol=rank_tol)
    if rank < n:
        raise UnobservableSystemError(
            f"H has rank {rank} < {n}: system unobservable with this plan"
        )
    x_hat, *_ = np.linalg.lstsq(hw, z * sqrt_w, rcond=None)
    residual = z - h @ x_hat
    objective = float(residual @ (w * residual))
    return StateEstimate(
        x_hat=x_hat,
        residual=residual,
        objective=objective,
        residual_norm=float(np.linalg.norm(residual)),
        dof=m - n,
    )


@dataclass
class _GainFactorization:
    """Cached Cholesky factor of the WLS gain matrix for one plan key."""

    h: np.ndarray
    w: np.ndarray
    hw: np.ndarray  # H^T W, precomputed for the per-tick right-hand side
    cho: Tuple[np.ndarray, bool]  # scipy cho_factor of G = H^T W H
    dof: int


class WlsEstimator:
    """Encode-once/estimate-many WLS for streaming re-estimation.

    The expensive part of a WLS solve is factorizing the gain matrix
    ``G = H^T W H``; for a fixed topology and measurement set G never
    changes, only ``z`` does.  This estimator keeps a small LRU of
    Cholesky factorizations keyed by ``(topology, measurement set)``
    (any hashable key the caller derives from those; content-derived by
    default) and answers each tick with two triangular solves.

    Estimates from the warm path are **identical** to the first (cold)
    call for that key — both run the exact same factorization and solve
    — and agree with :func:`wls_estimate` to solver tolerance (lstsq
    orthogonalizes, the gain path normal-equates; on observable systems
    both solve the same full-rank least-squares problem).
    """

    def __init__(self, max_entries: int = 16, rank_tol: float = 1e-8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.rank_tol = rank_tol
        self._cache: "OrderedDict[Hashable, _GainFactorization]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "estimates": 0,
            "factorizations": 0,
            "cache_hits": 0,
            "evictions": 0,
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _content_key(h: np.ndarray, w: np.ndarray) -> str:
        digest = hashlib.sha256()
        digest.update(repr(h.shape).encode())
        digest.update(np.ascontiguousarray(h).tobytes())
        digest.update(np.ascontiguousarray(w).tobytes())
        return digest.hexdigest()

    def _factorize(self, h: np.ndarray, w: np.ndarray) -> _GainFactorization:
        m, n = h.shape
        sqrt_w = np.sqrt(w)
        rank = np.linalg.matrix_rank(h * sqrt_w[:, None], tol=self.rank_tol)
        if rank < n:
            raise UnobservableSystemError(
                f"H has rank {rank} < {n}: system unobservable with this plan"
            )
        hw = h.T * w[None, :]
        gain = hw @ h
        try:
            cho = scipy_linalg.cho_factor(gain)
        except scipy_linalg.LinAlgError as exc:  # pragma: no cover - rank guard above
            raise UnobservableSystemError(f"gain matrix not positive definite: {exc}")
        return _GainFactorization(h=h, w=w, hw=hw, cho=cho, dof=m - n)

    def factorization(
        self,
        h: np.ndarray,
        weights: Optional[Sequence[float]] = None,
        key: Optional[Hashable] = None,
    ) -> _GainFactorization:
        """The (cached) factorization for this H/weights pair."""
        h = np.asarray(h, dtype=float)
        m = h.shape[0]
        w = np.ones(m) if weights is None else np.asarray(weights, dtype=float)
        if w.shape != (m,):
            raise ValueError(f"weights must have length {m}, got {w.shape}")
        if np.any(w <= 0):
            raise ValueError("weights must be positive")
        if key is None:
            key = self._content_key(h, w)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats["cache_hits"] += 1
            return cached
        factorization = self._factorize(h, w)
        self._cache[key] = factorization
        self.stats["factorizations"] += 1
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
            self.stats["evictions"] += 1
        return factorization

    def estimate(
        self,
        h: np.ndarray,
        z: np.ndarray,
        weights: Optional[Sequence[float]] = None,
        key: Optional[Hashable] = None,
    ) -> StateEstimate:
        """Solve the WLS problem on the cached gain factorization.

        ``key`` identifies the (topology, measurement set) family; pass
        something cheap and stable (e.g. ``(frozenset(mapped_lines),
        tuple(taken))``).  Without it a content hash of H/weights is
        used, which is still far cheaper than refactorizing.
        """
        factorization = self.factorization(h, weights, key=key)
        z = np.asarray(z, dtype=float)
        m = factorization.h.shape[0]
        if z.shape != (m,):
            raise ValueError(f"z must have length {m}, got {z.shape}")
        self.stats["estimates"] += 1
        x_hat = scipy_linalg.cho_solve(factorization.cho, factorization.hw @ z)
        residual = z - factorization.h @ x_hat
        objective = float(residual @ (factorization.w * residual))
        return StateEstimate(
            x_hat=x_hat,
            residual=residual,
            objective=objective,
            residual_norm=float(np.linalg.norm(residual)),
            dof=factorization.dof,
        )

    def snapshot(self) -> Dict[str, Any]:
        """Counters + occupancy (monitor reports, tests)."""
        return {**self.stats, "entries": len(self._cache), "limit": self.max_entries}


def gain_matrix(h: np.ndarray, weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """The WLS gain matrix ``G = H^T W H`` (used by residual analysis)."""
    h = np.asarray(h, dtype=float)
    m = h.shape[0]
    w = np.ones(m) if weights is None else np.asarray(weights, dtype=float)
    return h.T @ (h * w[:, None])


def hat_matrix(h: np.ndarray, weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """The projection ``K = H G^{-1} H^T W`` mapping z to estimated z."""
    h = np.asarray(h, dtype=float)
    m = h.shape[0]
    w = np.ones(m) if weights is None else np.asarray(weights, dtype=float)
    g = gain_matrix(h, w)
    return h @ np.linalg.solve(g, h.T * w[None, :])
