"""Command-line interface: ``python -m repro.cli <command>``.

Drives the full pipeline from spec files in the text format of
:mod:`repro.core.io` (paper Section III-H):

.. code-block:: console

    $ python -m repro.cli cases
    $ python -m repro.cli template ieee14 > grid.spec
    $ python -m repro.cli verify grid.spec --backend smt
    $ python -m repro.cli synthesize grid.spec --budget 4
    $ python -m repro.cli mincost grid.spec --dimension measurements
    $ python -m repro.cli metrics grid.spec
    $ python -m repro.cli profile grid.spec --repeat 5 --out report.json
    $ python -m repro.cli serve --port 8321 --jobs 4 --portfolio \
          --trace-file spans.jsonl
    $ python -m repro.cli serve --port 8321 --replicas 3 --sessions \
          --cache-dir /var/cache/repro
    $ python -m repro.cli serve --port 8321 --replicas 3 --slo --flight
    $ python -m repro.cli metrics --scrape http://127.0.0.1:8321
    $ python -m repro.cli metrics --cluster http://127.0.0.1:8321
    $ python -m repro.cli top http://127.0.0.1:8321 --interval 1
    $ python -m repro.cli trace show spans.jsonl --limit 3 --since 2026-08-08
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.security_metrics import security_metrics
from repro.core.io import load_spec_file, write_spec
from repro.core.mincost import minimum_attack_cost
from repro.core.report import format_synthesis, format_verification
from repro.core.spec import AttackGoal, AttackSpec
from repro.core.synthesis import (
    SynthesisSettings,
    enumerate_architectures,
    synthesize_against_all,
    synthesize_architecture,
)
from repro.grid.cases import available_cases, load_case
from repro.runtime import ResultCache, RuntimeOptions, verify_many


def _runtime_options(args: argparse.Namespace) -> RuntimeOptions:
    cache = None
    if getattr(args, "cache_dir", None):
        cache = ResultCache(directory=args.cache_dir)
    return RuntimeOptions(
        jobs=getattr(args, "jobs", 1),
        portfolio=getattr(args, "portfolio", False),
        backend=getattr(args, "backend", "smt"),
        cache=cache,
        sessions=getattr(args, "sessions", False),
    )


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for multi-instance runs (0 = all cores)",
    )
    parser.add_argument(
        "--portfolio",
        nargs="?",
        const=True,
        default=False,
        metavar="MODE",
        help="race contenders per instance, first conclusive answer wins: "
        "no value or 'backends' races SMT vs MILP; 'configs' or "
        "'configs:N' races N diversified SMT configurations with "
        "learned-clause exchange (default N=4)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="memoize results on disk under DIR (skips repeated solves)",
    )
    parser.add_argument(
        "--sessions",
        action="store_true",
        help="reuse warm verification sessions across same-grid solves "
        "(jobs=1; incremental probes instead of fresh encodings)",
    )


def _cmd_cases(args: argparse.Namespace) -> int:
    for name in available_cases():
        grid = load_case(name)
        print(
            f"{name:<10} {grid.num_buses:>4} buses {grid.num_lines:>4} lines "
            f"avg degree {grid.average_degree():.2f}"
        )
    return 0


def _cmd_template(args: argparse.Namespace) -> int:
    grid = load_case(args.case)
    spec = AttackSpec.default(grid, goal=AttackGoal.any())
    sys.stdout.write(write_spec(spec))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    specs = [load_spec_file(path) for path in args.specfile]
    results = verify_many(specs, _runtime_options(args))
    any_attack = False
    for path, spec, result in zip(args.specfile, specs, results):
        if len(specs) > 1:
            print(f"--- {path} ---")
        print(format_verification(result, spec))
        any_attack = any_attack or result.attack_exists
    return 2 if any_attack else 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    specs = [load_spec_file(path) for path in args.specfile]
    settings = SynthesisSettings(
        max_secured_buses=args.budget,
        excluded_buses=frozenset(args.exclude or []),
        blocking=args.blocking,
        neighbor_pruning=not args.no_pruning,
    )
    if args.enumerate:
        if len(specs) > 1:
            print("--enumerate supports a single spec file", file=sys.stderr)
            return 1
        architectures = enumerate_architectures(specs[0], settings, limit=args.enumerate)
        if not architectures:
            print("no architecture within the budget resists the attack model")
            return 1
        for arch in architectures:
            print(f"secure buses {arch}")
        return 0
    if len(specs) > 1:
        try:
            result = synthesize_against_all(specs, settings, jobs=args.jobs)
        except ValueError as exc:  # e.g. specs over different grids
            print(exc, file=sys.stderr)
            return 1
    else:
        result = synthesize_architecture(specs[0], settings)
    print(format_synthesis(result, specs[0]))
    return 0 if result.feasible else 1


def _cmd_mincost(args: argparse.Namespace) -> int:
    spec = load_spec_file(args.specfile)
    if not (spec.goal.target_states or spec.goal.any_state):
        print("spec has no attack goal; add a 'target' line", file=sys.stderr)
        return 1
    result = minimum_attack_cost(
        spec,
        dimension=args.dimension,
        backend=args.backend,
        runtime=_runtime_options(args),
    )
    if result.cost is None:
        print("goal is infeasible at any budget (no attack exists)")
        return 0
    print(f"minimum {args.dimension} budget: {result.cost} ({result.probes} probes)")
    if result.attack is not None:
        print(f"witness alters measurements {result.attack.altered_measurements}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.specfile is None:
        return _cmd_metrics_registry(args)
    spec = load_spec_file(args.specfile)
    report = security_metrics(spec, backend=args.backend, runtime=_runtime_options(args))
    print("state attack costs (smaller = weaker):")
    for bus in sorted(report.state_costs):
        cost = report.state_costs[bus]
        print(f"  bus {bus:>3}: {'immune' if cost is None else cost}")
    print(f"weakest states: {report.weakest_states}")
    print(f"grid attack cost: {report.grid_attack_cost}")
    exposed = sorted(
        report.measurement_exposure.items(), key=lambda kv: -kv[1]
    )[:10]
    print("most exposed measurements (top 10):")
    for meas, count in exposed:
        print(f"  {spec.plan.describe(meas):<40s} in {count} minimal attacks")
    return 0


def _cmd_metrics_registry(args: argparse.Namespace) -> int:
    """Without a spec file: dump observability metrics instead.

    ``--scrape URL`` fetches ``GET /metricsz`` from a running service;
    otherwise the local process registry is rendered — useful after an
    in-process sweep, or to list the full metric catalog (families
    render their HELP/TYPE headers even before the first sample).
    """
    target = args.scrape or getattr(args, "cluster", None)
    if target:
        import urllib.error
        import urllib.request

        # --cluster fetches the router's merged fleet-wide exposition;
        # --scrape fetches one process's /metricsz
        suffix = "/clusterz/metrics" if getattr(args, "cluster", None) else "/metricsz"
        url = target.rstrip("/")
        if not url.endswith(suffix):
            url += suffix
        try:
            with urllib.request.urlopen(url, timeout=10.0) as response:
                sys.stdout.write(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError) as exc:
            print(f"scrape failed: {exc}", file=sys.stderr)
            return 1
        return 0
    from repro.obs import metrics as obs_metrics

    sys.stdout.write(obs_metrics.get_registry().render_prometheus())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render a JSONL span sink as per-trace waterfalls."""
    from repro.obs.render import parse_time, render_file

    try:
        since = parse_time(args.since) if args.since else None
        until = parse_time(args.until) if args.until else None
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        print(
            render_file(
                args.file,
                trace_id=args.trace_id,
                limit=args.limit,
                since=since,
                until=until,
            )
        )
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live cluster dashboard over /clusterz/metrics (or /metricsz)."""
    from repro.obs.top import run_top

    try:
        return run_top(
            args.url,
            interval=args.interval,
            iterations=args.iterations,
            no_clear=args.no_clear,
        )
    except KeyboardInterrupt:
        return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Verify a spec under cProfile and emit a JSON hot-path report.

    Combines the solver's own per-phase wall-time attribution (BCP vs
    theory check vs decide vs analyze, via ``REPRO_SMT_PROFILE``) with
    the interpreter-level cProfile hotspots, so kernel regressions show
    up both as phase shifts and as concrete hot functions.
    """
    import cProfile
    import json
    import os
    import pstats
    import time
    from pathlib import Path

    from repro.core.verification import verify_attack
    from repro.smt.solver import engine_signature

    spec = load_spec_file(args.specfile)
    portfolio_mode = getattr(args, "portfolio", False)
    if portfolio_mode:
        from repro.runtime.portfolio import parse_portfolio_mode, race_configs

        mode, size = parse_portfolio_mode(portfolio_mode)
        if mode != "configs":
            print(
                "profile --portfolio only supports 'configs' or 'configs:N'",
                file=sys.stderr,
            )
            return 2
    previous = os.environ.get("REPRO_SMT_PROFILE")
    os.environ["REPRO_SMT_PROFILE"] = "1"
    try:
        if portfolio_mode:
            # a configuration race runs its contenders in child
            # processes, where cProfile cannot see; the per-config
            # phase-time breakdown below is the profile
            capture: dict = {}
            start = time.perf_counter()
            for _ in range(args.repeat):
                result = race_configs(
                    spec, n=size, capture=capture, collect_all=True
                )
            wall = time.perf_counter() - start
        else:
            profiler = cProfile.Profile()
            start = time.perf_counter()
            profiler.enable()
            for _ in range(args.repeat):
                result = verify_attack(spec, backend=args.backend)
            profiler.disable()
            wall = time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop("REPRO_SMT_PROFILE", None)
        else:
            os.environ["REPRO_SMT_PROFILE"] = previous
    if portfolio_mode:
        per_config = {
            token: {
                "phase_times": meta.get("phase_times", {}),
                "clauses_exported": meta.get("clauses_exported", 0),
                "clauses_imported": meta.get("clauses_imported", 0),
                "runtime_seconds": round(meta.get("runtime_seconds", 0.0), 6),
            }
            for token, meta in sorted(capture.get("details", {}).items())
        }
        report = {
            "spec": args.specfile,
            "backend": f"portfolio-configs{size}",
            "engine": engine_signature(),
            "repeat": args.repeat,
            "outcome": result.outcome.value,
            "wall_seconds": round(wall, 6),
            "portfolio": {
                "mode": "configs",
                "size": size,
                "winner_config": result.statistics.get(
                    "portfolio_winner_config"
                ),
                "clauses_exchanged": result.statistics.get(
                    "portfolio_clauses_exchanged", 0
                ),
                "per_config": per_config,
            },
            "solver_statistics": result.statistics,
        }
        text = json.dumps(report, indent=2, default=str)
        if args.out:
            Path(args.out).write_text(text + "\n")
            print(f"profile report written to {args.out}")
        else:
            print(text)
        return 0
    rows = []
    for (filename, line, funcname), entry in pstats.Stats(profiler).stats.items():
        _, ncalls, tottime, cumtime, _ = entry
        rows.append(
            {
                "function": f"{Path(filename).name}:{line}:{funcname}",
                "calls": ncalls,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            }
        )
    rows.sort(key=lambda r: (-r["tottime"], r["function"]))
    report = {
        "spec": args.specfile,
        "backend": args.backend,
        "engine": engine_signature(),
        "repeat": args.repeat,
        "outcome": result.outcome.value,
        "wall_seconds": round(wall, 6),
        "solver_statistics": result.statistics,
        "hotspots": rows[: args.top],
    }
    text = json.dumps(report, indent=2, default=str)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"profile report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    """Stream a scenario through the monitor and report incidents.

    Local by default (warm in-process sessions); ``--serve-url`` routes
    re-verification probes to a running service as high-priority jobs
    and publishes incidents to its ``/v1/incidents`` store instead.
    """
    import json as json_mod

    from repro.monitor import (
        IncidentSink,
        MonitorConfig,
        MonitorEngine,
        ReverifyConfig,
        resolve_scenario,
    )
    from repro.obs.trace import configure_tracing

    if args.trace_file:
        configure_tracing(enabled=True, jsonl_path=args.trace_file)
    grid = load_case(args.case)
    try:
        scenario = resolve_scenario(
            args.scenario, grid, ticks=args.ticks, noise_std=args.noise_std
        )
    except ValueError as exc:
        print(f"invalid scenario: {exc}", file=sys.stderr)
        return 1
    client = None
    if args.serve_url:
        from urllib.parse import urlparse

        from repro.service.client import ServiceClient

        parsed = urlparse(args.serve_url)
        client = ServiceClient(
            host=parsed.hostname or "127.0.0.1", port=parsed.port or 8321
        )
        client.wait_until_ready()
    config = MonitorConfig(
        ticks=args.ticks,
        seed=args.seed,
        reverify=ReverifyConfig(
            cost_threshold=args.cost_threshold,
            synthesis_budget=args.synthesis_budget,
        ),
    )
    sink = IncidentSink(args.sink) if args.sink else None
    engine = MonitorEngine(grid, scenario, config, client=client, sink=sink)
    report = engine.run()
    if args.json:
        print(json_mod.dumps(report.to_payload(), indent=2, default=str))
    else:
        print(
            f"monitored {args.case} / {scenario.name}: {report.ticks} ticks, "
            f"stream digest {report.stream_digest[:16]}"
        )
        if report.baseline_cost is not None:
            print(f"baseline min attack cost: {report.baseline_cost}")
        if not report.incidents:
            print("no incidents")
        for incident in report.incidents:
            verdict = incident.verification or {}
            line = (
                f"[{incident.severity:>8}] tick {incident.tick:>4} "
                f"{incident.kind} ({incident.detector})"
            )
            if verdict.get("outcome"):
                line += f" outcome={verdict['outcome']}"
            if verdict.get("min_cost") is not None:
                line += f" min_cost={verdict['min_cost']}"
            if incident.countermeasure is not None:
                line += (
                    f" countermeasure={incident.countermeasure.get('secured_buses')}"
                )
            print(line)
        fired = {
            name: snap.get("fired")
            for name, snap in report.triggers.items()
            if snap.get("fired")
        }
        if fired:
            print(f"detector firings: {fired}")
    return 2 if any(i.severity in ("major", "critical") for i in report.incidents) else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.replicas > 1:
        from repro.service.router import run_cluster

        # replicas are separate `repro serve` processes: forward the
        # knobs as CLI flags (--cache-dir/--trace-file are added by the
        # cluster itself so every replica shares one tier and one sink)
        replica_args = [
            "--batch-window",
            str(args.batch_window),
            "--max-batch",
            str(args.max_batch),
            "--max-queue",
            str(args.max_queue),
            "--jobs",
            str(args.jobs),
        ]
        if args.max_queue_per_client is not None:
            replica_args += ["--max-queue-per-client", str(args.max_queue_per_client)]
        if args.portfolio:
            replica_args.append("--portfolio")
            if isinstance(args.portfolio, str):
                replica_args.append(args.portfolio)
        if args.sessions:
            replica_args.append("--sessions")
        run_cluster(
            host=args.host,
            port=args.port,
            replicas=args.replicas,
            replica_args=replica_args,
            cache_dir=args.cache_dir,
            trace_file=args.trace_file,
            slo=args.slo,
            flight=args.flight,
        )
        return 0

    from repro.service.http import serve

    serve(
        host=args.host,
        port=args.port,
        options=_runtime_options(args),
        window=args.batch_window,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        max_queue_per_client=args.max_queue_per_client,
        replica_id=args.replica_id,
        trace_file=args.trace_file,
        slo=args.slo,
        flight=args.flight,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UFDI threat analytics and countermeasure synthesis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("cases", help="list bundled test systems").set_defaults(
        func=_cmd_cases
    )

    p = sub.add_parser("template", help="emit a default spec for a test system")
    p.add_argument("case", choices=available_cases())
    p.set_defaults(func=_cmd_template)

    p = sub.add_parser("verify", help="verify UFDI attack feasibility")
    p.add_argument("specfile", nargs="+", help="one or more spec files (batched)")
    p.add_argument("--backend", choices=["smt", "milp"], default="smt")
    _add_runtime_flags(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("synthesize", help="synthesize a security architecture")
    p.add_argument(
        "specfile",
        nargs="+",
        help="spec file(s); several files synthesize one architecture "
        "resisting every listed attack model",
    )
    p.add_argument("--budget", type=int, required=True, help="max secured buses")
    _add_runtime_flags(p)
    p.add_argument("--exclude", type=int, nargs="*", help="operator-unsecurable buses")
    p.add_argument(
        "--blocking",
        choices=["counterexample", "subset", "exact"],
        default="counterexample",
    )
    p.add_argument("--no-pruning", action="store_true", help="disable Eq. 30 pruning")
    p.add_argument(
        "--enumerate", type=int, metavar="K", help="list up to K minimal architectures"
    )
    p.set_defaults(func=_cmd_synthesize)

    p = sub.add_parser("mincost", help="minimum attack cost for the spec's goal")
    p.add_argument("specfile")
    p.add_argument("--dimension", choices=["measurements", "buses"], default="measurements")
    p.add_argument("--backend", choices=["smt", "milp"], default="smt")
    _add_runtime_flags(p)
    p.set_defaults(func=_cmd_mincost)

    p = sub.add_parser(
        "metrics",
        help="security metrics for a spec; without one, dump the "
        "observability metrics registry (Prometheus text)",
    )
    p.add_argument(
        "specfile",
        nargs="?",
        default=None,
        help="spec file for security metrics; omit for the registry dump",
    )
    p.add_argument("--backend", choices=["smt", "milp"], default="smt")
    p.add_argument(
        "--scrape",
        metavar="URL",
        help="fetch /metricsz from a running service instead of the "
        "local registry (e.g. http://127.0.0.1:8321)",
    )
    p.add_argument(
        "--cluster",
        metavar="URL",
        help="fetch the merged fleet-wide exposition from a router's "
        "/clusterz/metrics (counters summed, histograms re-bucketed, "
        "per-replica series preserved under a replica label)",
    )
    _add_runtime_flags(p)
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "trace", help="inspect span traces (see docs/OBSERVABILITY.md)"
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    p = trace_sub.add_parser(
        "show", help="render a JSONL span sink as per-trace waterfalls"
    )
    p.add_argument("file", help="JSONL sink (REPRO_TRACE_FILE / serve --trace-file)")
    p.add_argument(
        "--trace-id", help="only this trace (prefix match accepted)"
    )
    p.add_argument(
        "--limit", type=int, help="only the last N traces in the file"
    )
    p.add_argument(
        "--since",
        metavar="TIME",
        help="only traces starting at or after TIME (epoch seconds or "
        "ISO-8601, e.g. 2026-08-08T12:00:00)",
    )
    p.add_argument(
        "--until",
        metavar="TIME",
        help="only traces starting at or before TIME (epoch seconds or "
        "ISO-8601)",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard: per-replica RED rates, latency "
        "quantiles, SLO burn state (ctrl-c exits)",
    )
    p.add_argument(
        "url",
        nargs="?",
        default="http://127.0.0.1:8321",
        help="router or replica base URL (tries /clusterz/metrics, "
        "falls back to /metricsz)",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: run until ctrl-c)",
    )
    p.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (logs, CI)",
    )
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "profile",
        help="verify a spec under cProfile and emit a JSON hot-path report",
    )
    p.add_argument("specfile")
    p.add_argument("--backend", choices=["smt", "milp"], default="smt")
    p.add_argument(
        "--repeat", type=int, default=1, help="verification repetitions to profile"
    )
    p.add_argument("--top", type=int, default=15, help="hot functions to report")
    p.add_argument("--out", metavar="FILE", help="write the JSON report to FILE")
    p.add_argument(
        "--portfolio",
        nargs="?",
        const="configs",
        default=False,
        metavar="MODE",
        help="profile a cooperative configuration race instead of a solo "
        "solve: per-config phase-time breakdown and exchanged-clause "
        "counts ('configs' or 'configs:N', default N=4)",
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "monitor",
        help="stream a measurement scenario and raise verified incidents",
    )
    p.add_argument("case", choices=available_cases())
    p.add_argument(
        "--scenario",
        default="nominal",
        help="builtin name (nominal, noise_burst, telemetry_spoof, "
        "line_outage) or a scenario JSON file",
    )
    p.add_argument("--ticks", type=int, default=200, help="frames to stream")
    p.add_argument("--seed", type=int, default=7, help="noise/injection RNG seed")
    p.add_argument(
        "--noise-std", type=float, default=None, help="meter noise sigma override"
    )
    p.add_argument(
        "--cost-threshold",
        type=int,
        default=8,
        help="min attack cost at or below this escalates and synthesizes "
        "a countermeasure",
    )
    p.add_argument(
        "--synthesis-budget",
        type=int,
        default=2,
        help="max secured buses for synthesized countermeasures",
    )
    p.add_argument(
        "--serve-url",
        metavar="URL",
        help="run re-verification via this service (high-priority jobs) "
        "and publish incidents to its /v1/incidents store",
    )
    p.add_argument(
        "--sink", metavar="FILE", help="append incidents to FILE as JSONL"
    )
    p.add_argument(
        "--trace-file",
        metavar="FILE",
        help="enable span tracing with a JSONL sink at FILE",
    )
    p.add_argument("--json", action="store_true", help="emit the full JSON report")
    p.set_defaults(func=_cmd_monitor)

    p = sub.add_parser(
        "serve", help="run the long-lived verification service (HTTP JSON API)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321, help="0 picks a free port")
    p.add_argument(
        "--batch-window",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="micro-batching window: how long to hold the first pending "
        "request while coalescing more (default 0.05)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="max verify requests coalesced into one solver batch",
    )
    p.add_argument(
        "--max-queue", type=int, default=10_000, help="queue depth before 429s"
    )
    p.add_argument(
        "--max-queue-per-client",
        type=int,
        default=None,
        metavar="N",
        help="cap any one client's queued jobs (429 queue_full beyond it)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help="run a sharded cluster: a consistent-hash router on --port "
        "in front of N replica processes sharing one cache dir",
    )
    p.add_argument(
        "--replica-id",
        default=None,
        metavar="ID",
        help="name this process in a cluster (set by the supervisor; "
        "surfaced in /healthz and /statsz)",
    )
    p.add_argument(
        "--trace-file",
        metavar="FILE",
        help="enable span tracing with a JSONL sink at FILE "
        "(render it with 'repro trace show FILE')",
    )
    p.add_argument(
        "--slo",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="evaluate SLO burn-rate alerts (GET /sloz); FILE is a JSON "
        "config, omit it for the built-in availability/latency/jobs "
        "SLOs; in a cluster the router evaluates the merged scrape so "
        "each alert fires once fleet-wide",
    )
    p.add_argument(
        "--flight",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="arm the flight recorder (GET /debugz/flight): freeze "
        "redacted trace/log/solver-stat snapshots on 5xx answers, job "
        "failures, deadline misses and SLO burns; FILE appends "
        "snapshots as JSONL",
    )
    _add_runtime_flags(p)
    p.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
