"""Consistent-hash router + replica supervisor: the sharded service.

One ``repro serve`` process caps throughput at one machine's process
pool and loses every warm session on restart.  This module turns the
service into a small cluster with the same wire protocol:

* :class:`HashRing` — consistent hashing (sha256, virtual nodes) from a
  routing key to a *preference order* over replicas.  The first entry
  owns the key; the rest are the failover order, so a key only moves
  while its owner is down and moves straight back on recovery.
* :class:`RouterApp` — a stdlib-asyncio reverse proxy.  Submissions are
  routed by ``family_fingerprint(spec, epsilon)`` — the same key the
  runtime's warm-session registry uses — so every probe of a spec
  family lands on the replica holding that family's warm
  :class:`~repro.core.verification.VerificationSession`.  Job polls
  follow a job→owner map (with broadcast fallback), incidents live on
  the first replica in ring order, ``/statsz`` aggregates the fleet.
* :class:`ClusterSupervisor` — spawns N ``repro serve`` subprocesses on
  free ports and restarts any that die on the same port under the same
  replica id (so the ring never changes shape).

``repro serve --replicas N`` (see :mod:`repro.cli`) wires all three
together.  Replicas share one disk cache directory (a temporary one
unless ``--cache-dir`` is given): the :class:`~repro.runtime.cache
.ResultCache` disk tier is multi-process safe, so a failed-over probe
re-asked on a survivor is answered from cache instead of re-solved.

**Failure semantics.**  A forward that cannot reach its replica marks
the replica down and fails over along the preference order within the
same request; a ~0.5 s health loop probes downed replicas back alive.
Requests pinned to a replica id that is not in the ring are rejected
with a structured 503 ``code="unknown_replica"``; a router with no
live replica answers 503 ``code="no_replicas"``; admission control
beyond ``max_inflight`` answers 429 ``code="queue_full"``.

**Tracing.**  The router opens a ``router.request`` span parented on
the caller's ``X-Trace-Context`` and forwards *its own* context to the
replica, so one trace id spans monitor/client → router → replica →
runtime → solver.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.io import parse_spec
from repro.obs import agg as obs_agg
from repro.obs import metrics as obs_metrics
from repro.obs.flight import configure_flight, get_flight_recorder
from repro.obs.logging import get_logger
from repro.obs.slo import (
    SloConfig,
    SloEvaluator,
    alert_to_incident_payload,
    load_slo_config,
)
from repro.obs.trace import configure_tracing, get_tracer
from repro.runtime.serialize import (
    canonical_json,
    family_fingerprint,
    payload_to_spec,
)
from repro.service.http import (
    RequestError,
    _encode_response,
    _parse_query,
    _parse_trace_header,
    _read_request,
)

_LOG = get_logger("repro.router")

_M_REQUESTS = obs_metrics.counter(
    "repro_router_requests_total",
    "Router requests by endpoint and answer status",
    labels=("path", "status"),
)
_M_FORWARDS = obs_metrics.counter(
    "repro_router_forwards_total",
    "Requests forwarded to a replica",
    labels=("replica",),
)
_M_FAILOVERS = obs_metrics.counter(
    "repro_router_failovers_total",
    "Forwards retried on another replica after a replica failure",
)


# ----------------------------------------------------------------------
# consistent hashing
# ----------------------------------------------------------------------
def _hash_point(material: str) -> int:
    return int.from_bytes(
        hashlib.sha256(material.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring with virtual nodes over a fixed member set.

    Membership is static for the life of a cluster (the supervisor
    restarts a dead replica under the same id), so failover is
    expressed as a *preference order* per key rather than ring surgery:
    a key served by its second choice while the owner is down snaps
    back to the owner on recovery — which is exactly what warm-session
    affinity wants.
    """

    def __init__(self, members: Sequence[str], vnodes: int = 64) -> None:
        if not members:
            raise ValueError("HashRing needs at least one member")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.members = sorted(set(members))
        self.vnodes = vnodes
        ring: List[Tuple[int, str]] = []
        for member in self.members:
            for vnode in range(vnodes):
                ring.append((_hash_point(f"{member}#{vnode}"), member))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]

    def preference(self, key: str) -> List[str]:
        """All members in ring order from ``key``'s position.

        ``preference(key)[0]`` owns the key; the tail is the failover
        order.  Deterministic for a given (members, vnodes, key).
        """
        start = bisect.bisect_right(self._points, _hash_point(key)) % len(self._ring)
        order: List[str] = []
        seen: set = set()
        for offset in range(len(self._ring)):
            member = self._ring[(start + offset) % len(self._ring)][1]
            if member not in seen:
                seen.add(member)
                order.append(member)
                if len(order) == len(self.members):
                    break
        return order

    def owner(self, key: str) -> str:
        return self.preference(key)[0]


# ----------------------------------------------------------------------
# replica endpoints
# ----------------------------------------------------------------------
@dataclass
class ReplicaEndpoint:
    """Where one replica listens, and what the router believes about it."""

    replica_id: str
    host: str
    port: int
    pid: Optional[int] = None
    alive: bool = True
    last_error: Optional[str] = None
    forwarded: int = 0

    def describe(self) -> Dict[str, Any]:
        return {
            "replica_id": self.replica_id,
            "host": self.host,
            "port": self.port,
            "pid": self.pid,
            "alive": self.alive,
            "forwarded": self.forwarded,
            "last_error": self.last_error,
        }


class ReplicaDown(ConnectionError):
    """A forward could not reach (or lost) its replica."""


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------
class RouterApp:
    """Routing, admission and failover over a fixed set of replicas."""

    def __init__(
        self,
        replicas: Sequence[ReplicaEndpoint],
        vnodes: int = 64,
        max_inflight: int = 256,
        health_interval: float = 0.5,
        forward_timeout: float = 120.0,
        slo_config: Optional[SloConfig] = None,
    ) -> None:
        if not replicas:
            raise ValueError("RouterApp needs at least one replica")
        self.replicas: Dict[str, ReplicaEndpoint] = {
            replica.replica_id: replica for replica in replicas
        }
        if len(self.replicas) != len(replicas):
            raise ValueError("replica ids must be unique")
        self.ring = HashRing(list(self.replicas), vnodes=vnodes)
        self.max_inflight = max_inflight
        self.health_interval = health_interval
        self.forward_timeout = forward_timeout
        self.draining = False
        self.inflight = 0
        self.started_mono = time.monotonic()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "forwarded": 0,
            "failovers": 0,
            "rejected": 0,
            "routed_by_family": 0,
            "routed_by_body": 0,
        }
        # job id -> owning replica id, bounded so a long-lived router
        # cannot grow without bound; misses fall back to broadcast
        self._job_owner: "OrderedDict[str, str]" = OrderedDict()
        self._job_owner_limit = 65_536
        self._health_task: Optional[asyncio.Task] = None
        # cluster-level SLO evaluation runs on the router (over the
        # merged scrape) so each burn alert fires exactly once for the
        # whole fleet, not once per replica
        self.slo: Optional[SloEvaluator] = (
            SloEvaluator(slo_config) if slo_config is not None else None
        )
        self._slo_seq = 0
        self._slo_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._health_task = asyncio.create_task(self._health_loop())
        if self.slo is not None:
            self._slo_task = asyncio.create_task(self._slo_loop())

    async def stop(self) -> None:
        for task_name in ("_health_task", "_slo_task"):
            task = getattr(self, task_name)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, task_name, None)

    async def _health_loop(self) -> None:
        """Probe downed replicas back alive (forwards mark them down)."""
        while True:
            await asyncio.sleep(self.health_interval)
            for replica in list(self.replicas.values()):
                if replica.alive:
                    continue
                try:
                    status, _, _ = await self._forward(
                        replica, "GET", "/healthz", b"", None, mark_down=False
                    )
                except (ReplicaDown, asyncio.TimeoutError):
                    continue
                if status == 200:
                    replica.alive = True
                    replica.last_error = None
                    _LOG.info("router.replica_up", replica=replica.replica_id)

    # ------------------------------------------------------------------
    def _mark_down(self, replica: ReplicaEndpoint, error: Exception) -> None:
        if replica.alive:
            _LOG.info(
                "router.replica_down",
                replica=replica.replica_id,
                error=f"{type(error).__name__}: {error}",
            )
        replica.alive = False
        replica.last_error = f"{type(error).__name__}: {error}"

    async def _forward(
        self,
        replica: ReplicaEndpoint,
        method: str,
        target: str,
        body: bytes,
        parent: Optional[Dict[str, str]],
        mark_down: bool = True,
    ) -> Tuple[int, bytes, str]:
        """One proxied exchange; raises :class:`ReplicaDown` on failure."""
        try:
            reader, writer = await asyncio.open_connection(replica.host, replica.port)
        except OSError as exc:
            if mark_down:
                self._mark_down(replica, exc)
            raise ReplicaDown(f"replica {replica.replica_id}: {exc}") from exc
        try:
            head = (
                f"{method} {target} HTTP/1.1\r\n"
                f"Host: {replica.host}:{replica.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
            )
            if parent is not None:
                head += "X-Trace-Context: " + json.dumps(parent) + "\r\n"
            writer.write(head.encode("latin-1") + b"\r\n" + body)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), timeout=self.forward_timeout)
        except (OSError, asyncio.IncompleteReadError) as exc:
            if mark_down:
                self._mark_down(replica, exc)
            raise ReplicaDown(f"replica {replica.replica_id}: {exc}") from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.TimeoutError):
                pass
        status, payload, content_type = _parse_http_response(raw)
        if status is None:
            error = ReplicaDown(
                f"replica {replica.replica_id}: truncated/invalid response"
            )
            if mark_down:
                self._mark_down(replica, error)
            raise error
        replica.forwarded += 1
        self.counters["forwarded"] += 1
        _M_FORWARDS.inc(replica=replica.replica_id)
        return status, payload, content_type

    # ------------------------------------------------------------------
    def _route_key(self, raw_body: bytes) -> Tuple[str, str]:
        """(routing key, mode): the spec's family fingerprint when the
        body parses — same key as the warm-session registry, so probes
        of one family share a replica — else a hash of the raw body."""
        try:
            body = json.loads(raw_body)
            if not isinstance(body, dict):
                raise ValueError("not an object")
            if body.get("spec") is not None:
                spec = payload_to_spec(body["spec"])
            elif body.get("spec_text") is not None:
                spec = parse_spec(body["spec_text"])
            else:
                raise ValueError("no spec")
            epsilon = body.get("epsilon")
            fraction = Fraction(str(epsilon)) if epsilon is not None else None
            return family_fingerprint(spec, epsilon=fraction), "family"
        except Exception:
            # malformed bodies still route *somewhere* deterministic so
            # the replica can answer its structured 400
            try:
                material = canonical_json(json.loads(raw_body))
            except Exception:
                material = raw_body.decode("latin-1")
            return hashlib.sha256(material.encode("utf-8")).hexdigest(), "body"

    def _record_owner(self, job_id: str, replica_id: str) -> None:
        self._job_owner[job_id] = replica_id
        self._job_owner.move_to_end(job_id)
        while len(self._job_owner) > self._job_owner_limit:
            self._job_owner.popitem(last=False)

    def _candidates(self, order: Sequence[str]) -> List[ReplicaEndpoint]:
        """Preference order, live replicas first; downed ones kept as a
        last resort (they may have restarted since being marked)."""
        live = [self.replicas[rid] for rid in order if self.replicas[rid].alive]
        down = [self.replicas[rid] for rid in order if not self.replicas[rid].alive]
        return live + down

    def _pinned(self, query: Dict[str, str]) -> Optional[ReplicaEndpoint]:
        pin = query.get("replica")
        if pin is None:
            return None
        replica = self.replicas.get(pin)
        if replica is None:
            raise RequestError(
                f"unknown replica: {pin!r} (cluster has {sorted(self.replicas)})",
                503,
                "unknown_replica",
            )
        return replica

    async def _try_each(
        self,
        candidates: Sequence[ReplicaEndpoint],
        method: str,
        target: str,
        body: bytes,
        parent: Optional[Dict[str, str]],
    ) -> Tuple[int, Any, str]:
        """Forward to the first candidate that answers; fail over on
        replica loss.  Returns (status, decoded payload, replica id)."""
        last_error: Optional[str] = None
        for index, replica in enumerate(candidates):
            try:
                status, raw, content_type = await self._forward(
                    replica, method, target, body, parent
                )
            except ReplicaDown as exc:
                last_error = str(exc)
                if index + 1 < len(candidates):
                    self.counters["failovers"] += 1
                    _M_FAILOVERS.inc()
                continue
            return status, _decode_payload(raw, content_type), replica.replica_id
        detail = f" (last error: {last_error})" if last_error else ""
        raise RequestError(f"no live replicas{detail}", 503, "no_replicas")

    # ------------------------------------------------------------------
    async def handle(
        self,
        method: str,
        target: str,
        raw_body: bytes,
        parent: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any]:
        """Route one request; returns (status, JSON-able payload)."""
        path, _, raw_query = target.partition("?")
        self.counters["requests"] += 1
        with get_tracer().span(
            "router.request", parent=parent, method=method, path=path
        ) as span:
            # forward the router span's own context (fall back to the
            # caller's when tracing is off) so replica http.request
            # spans join the same trace, one hop deeper
            downstream = span.context_payload() or parent
            try:
                status, payload = await self._route(
                    method, path, target, raw_body, _parse_query(raw_query), downstream
                )
            except RequestError as exc:
                self.counters["rejected"] += 1
                status, payload = exc.status, {"error": str(exc), "code": exc.code}
            except (ReplicaDown, asyncio.TimeoutError) as exc:
                status, payload = 502, {
                    "error": f"replica failure: {exc}",
                    "code": "replica_error",
                }
            span.set(status=status)
        _M_REQUESTS.inc(path=path if path.startswith("/") else "other", status=status)
        return status, payload

    async def _route(
        self,
        method: str,
        path: str,
        target: str,
        raw_body: bytes,
        query: Dict[str, str],
        parent: Optional[Dict[str, str]],
    ) -> Tuple[int, Any]:
        if path == "/healthz":
            return self._healthz()
        if path == "/clusterz":
            return 200, self.clusterz()
        if path == "/clusterz/metrics":
            return 200, await self.cluster_metrics(parent)
        if path == "/statsz":
            return 200, await self.statsz(parent)
        if path == "/metricsz":
            return 200, obs_metrics.get_registry().render_prometheus()
        if path == "/sloz":
            if self.slo is None:
                raise RequestError(
                    "SLO evaluation not enabled (start with --slo)",
                    404,
                    "slo_disabled",
                )
            return 200, self.slo.status()
        if path == "/debugz/flight":
            return 200, await self.cluster_flight(query, parent)
        if path in ("/v1/verify", "/v1/synthesize"):
            if method != "POST":
                raise RequestError("use POST", 405, "bad_request")
            return await self._route_submission(method, target, raw_body, query, parent)
        if path.startswith("/v1/jobs/"):
            return await self._route_job_poll(
                method, path, target, raw_body, query, parent
            )
        if path == "/v1/incidents":
            return await self._route_incidents(method, target, raw_body, query, parent)
        raise RequestError(f"no such endpoint: {path}", 404, "not_found")

    def _healthz(self) -> Tuple[int, Dict[str, Any]]:
        live = sorted(r.replica_id for r in self.replicas.values() if r.alive)
        payload = {
            "status": "draining" if self.draining else ("ok" if live else "down"),
            "role": "router",
            "uptime_seconds": time.monotonic() - self.started_mono,
            "replicas": {rid: r.alive for rid, r in sorted(self.replicas.items())},
            "live_replicas": len(live),
        }
        if not live:
            # keep wait_until_ready() polling until a replica answers
            payload["code"] = "no_replicas"
            return 503, payload
        return 200, payload

    def clusterz(self) -> Dict[str, Any]:
        """Cluster topology: replicas (with pids, for chaos tests) + ring."""
        return {
            "role": "router",
            "replicas": [
                replica.describe()
                for _, replica in sorted(self.replicas.items())
            ],
            "ring": {"members": self.ring.members, "vnodes": self.ring.vnodes},
            "counters": dict(self.counters),
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "draining": self.draining,
            "job_owners": len(self._job_owner),
            "slo": (
                None
                if self.slo is None
                else {
                    "slos": len(self.slo.config.slos),
                    "alerts": len(self.slo.alerts()),
                }
            ),
            "flight": get_flight_recorder().enabled,
        }

    async def statsz(self, parent: Optional[Dict[str, str]]) -> Dict[str, Any]:
        """Router counters plus every live replica's ``/statsz``."""

        async def one(replica: ReplicaEndpoint) -> Tuple[str, Any]:
            try:
                status, raw, content_type = await self._forward(
                    replica, "GET", "/statsz", b"", parent
                )
            except (ReplicaDown, asyncio.TimeoutError) as exc:
                return replica.replica_id, {"error": str(exc)}
            payload = _decode_payload(raw, content_type)
            return replica.replica_id, payload if status == 200 else {"error": payload}

        pairs = await asyncio.gather(
            *(one(replica) for _, replica in sorted(self.replicas.items()))
        )
        return {
            "role": "router",
            "uptime_seconds": time.monotonic() - self.started_mono,
            "counters": dict(self.counters),
            "inflight": self.inflight,
            "replicas": dict(pairs),
        }

    # ------------------------------------------------------------------
    async def cluster_metrics(self, parent: Optional[Dict[str, str]]) -> str:
        """``GET /clusterz/metrics``: one merged Prometheus exposition.

        Every reachable replica's ``/metricsz`` is scraped and merged
        (counters summed, gauges last-write in replica-id order,
        histograms re-bucketed onto the union of bounds) with the
        router's own registry included as replica ``router``; per-series
        provenance is preserved under a ``replica`` label.
        """

        async def one(replica: ReplicaEndpoint) -> Tuple[str, Optional[str]]:
            try:
                status, raw, _ = await self._forward(
                    replica, "GET", "/metricsz", b"", parent
                )
            except (ReplicaDown, asyncio.TimeoutError):
                return replica.replica_id, None
            if status != 200:
                return replica.replica_id, None
            return replica.replica_id, raw.decode("utf-8", "replace")

        pairs = await asyncio.gather(
            *(one(replica) for _, replica in sorted(self.replicas.items()))
        )
        scrapes: "OrderedDict[str, str]" = OrderedDict(
            (replica_id, text) for replica_id, text in pairs if text is not None
        )
        scrapes["router"] = obs_metrics.get_registry().render_prometheus()
        return obs_agg.merge_exposition(scrapes)

    async def cluster_flight(
        self, query: Dict[str, str], parent: Optional[Dict[str, str]]
    ) -> Dict[str, Any]:
        """``GET /debugz/flight``: router snapshots + every replica's."""
        trace_id = query.get("trace_id")
        suffix = f"?trace_id={trace_id}" if trace_id else ""

        async def one(replica: ReplicaEndpoint) -> Tuple[str, Any]:
            try:
                status, raw, content_type = await self._forward(
                    replica, "GET", "/debugz/flight" + suffix, b"", parent
                )
            except (ReplicaDown, asyncio.TimeoutError) as exc:
                return replica.replica_id, {"error": str(exc)}
            payload = _decode_payload(raw, content_type)
            return (
                replica.replica_id,
                payload if status == 200 else {"error": payload},
            )

        pairs = await asyncio.gather(
            *(one(replica) for _, replica in sorted(self.replicas.items()))
        )
        return {
            "role": "router",
            "router": get_flight_recorder().payload(trace_id),
            "replicas": dict(pairs),
        }

    async def _slo_loop(self) -> None:
        """Evaluate cluster SLOs over the merged scrape, post alerts."""
        assert self.slo is not None
        interval = max(0.05, float(self.slo.config.interval_seconds))
        while True:
            await asyncio.sleep(interval)
            try:
                events = self.slo.sample_text(await self.cluster_metrics(None))
            except Exception as exc:  # evaluation must never kill the router
                _LOG.warning("router.slo_sample_failed", error=str(exc))
                continue
            for event in events:
                await self._publish_slo_alert(event)

    async def _publish_slo_alert(self, event: Dict[str, Any]) -> None:
        """Post one burn alert as an incident on the incident home replica."""
        self._slo_seq += 1
        payload = alert_to_incident_payload(event, self._slo_seq)
        recorder = get_flight_recorder()
        if recorder.enabled:
            recorder.trigger(
                "slo_burn",
                trace_id=event.get("exemplar_trace_id"),
                detail={"slo": event.get("slo"), "severity": event.get("severity")},
            )
        _LOG.warning(
            "router.slo_burn_alert",
            slo=event.get("slo"),
            severity=event.get("severity"),
            windows=event.get("windows"),
            budget_remaining=event.get("budget_remaining"),
            exemplar_trace_id=event.get("exemplar_trace_id"),
        )
        body = json.dumps(payload).encode("utf-8")
        try:
            await self._route_incidents("POST", "/v1/incidents", body, {}, None)
        except (RequestError, ReplicaDown, asyncio.TimeoutError) as exc:
            _LOG.warning("router.slo_incident_post_failed", error=str(exc))

    # ------------------------------------------------------------------
    async def _route_submission(
        self,
        method: str,
        target: str,
        raw_body: bytes,
        query: Dict[str, str],
        parent: Optional[Dict[str, str]],
    ) -> Tuple[int, Any]:
        if self.draining:
            raise RequestError(
                "router is draining; not accepting jobs", 503, "draining"
            )
        if self.inflight >= self.max_inflight:
            self.counters["rejected"] += 1
            raise RequestError(
                f"router at max_inflight={self.max_inflight}", 429, "queue_full"
            )
        pinned = self._pinned(query)
        if pinned is not None:
            candidates: List[ReplicaEndpoint] = [pinned]
        else:
            key, mode = self._route_key(raw_body)
            self.counters[f"routed_by_{mode}"] += 1
            candidates = self._candidates(self.ring.preference(key))
        self.inflight += 1
        try:
            status, payload, replica_id = await self._try_each(
                candidates, method, target, raw_body, parent
            )
        finally:
            self.inflight -= 1
        if isinstance(payload, dict):
            payload.setdefault("replica", replica_id)
            if status in (200, 202) and isinstance(payload.get("id"), str):
                self._record_owner(payload["id"], replica_id)
        return status, payload

    async def _route_job_poll(
        self,
        method: str,
        path: str,
        target: str,
        raw_body: bytes,
        query: Dict[str, str],
        parent: Optional[Dict[str, str]],
    ) -> Tuple[int, Any]:
        if method != "GET":
            raise RequestError("use GET", 405, "bad_request")
        job_id = path[len("/v1/jobs/") :]
        pinned = self._pinned(query)
        owner = self._job_owner.get(job_id)
        if pinned is not None:
            candidates: List[ReplicaEndpoint] = [pinned]
        elif owner is not None and owner in self.replicas:
            # owner first; the rest as broadcast fallback (the owner may
            # have restarted and lost the job from memory)
            rest = [rid for rid in sorted(self.replicas) if rid != owner]
            candidates = self._candidates([owner] + rest)
        else:
            candidates = self._candidates(sorted(self.replicas))
        last: Optional[Tuple[int, Any, str]] = None
        for replica in candidates:
            try:
                status, raw, content_type = await self._forward(
                    replica, method, target, raw_body, parent
                )
            except ReplicaDown:
                continue
            payload = _decode_payload(raw, content_type)
            last = (status, payload, replica.replica_id)
            if status != 404:
                break
        if last is None:
            raise RequestError("no live replicas", 503, "no_replicas")
        status, payload, replica_id = last
        if isinstance(payload, dict):
            payload.setdefault("replica", replica_id)
        if status != 404:
            self._record_owner(job_id, replica_id)
        return status, payload

    async def _route_incidents(
        self,
        method: str,
        target: str,
        raw_body: bytes,
        query: Dict[str, str],
        parent: Optional[Dict[str, str]],
    ) -> Tuple[int, Any]:
        if method not in ("GET", "POST"):
            raise RequestError("use GET or POST", 405, "bad_request")
        if method == "POST" and self.draining:
            raise RequestError(
                "router is draining; not accepting incidents", 503, "draining"
            )
        pinned = self._pinned(query)
        if pinned is not None:
            candidates: List[ReplicaEndpoint] = [pinned]
        else:
            # incidents live on one stable home (first id in ring order)
            # so GET sees every POST; failover order is deterministic
            candidates = self._candidates(sorted(self.replicas))
        status, payload, replica_id = await self._try_each(
            candidates, method, target, raw_body, parent
        )
        if isinstance(payload, dict):
            payload.setdefault("replica", replica_id)
        return status, payload


def _parse_http_response(raw: bytes) -> Tuple[Optional[int], bytes, str]:
    """(status, body, content-type) from a full Connection-close response."""
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        return None, b"", ""
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) < 2 or not parts[1].isdigit():
        return None, b"", ""
    content_type = ""
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-type":
            content_type = value.strip()
    return int(parts[1]), body, content_type


def _decode_payload(raw: bytes, content_type: str) -> Any:
    """Replica answers decoded for re-encoding: JSON dicts stay dicts
    (so the router can stamp ``replica``), Prometheus text stays text."""
    if content_type.startswith("text/plain"):
        return raw.decode("utf-8", "replace")
    try:
        return json.loads(raw) if raw else {}
    except ValueError:
        return raw.decode("utf-8", "replace")


# ----------------------------------------------------------------------
# replica supervision
# ----------------------------------------------------------------------
def _free_port(host: str) -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class ClusterSupervisor:
    """Spawn N ``repro serve`` replica subprocesses and keep them up.

    Each replica keeps its port and replica id across restarts, so the
    router's ring and endpoint table never change shape; a restarted
    replica comes back empty (cold sessions, cold memory cache) but
    re-warms from the shared disk cache tier.
    """

    def __init__(
        self,
        count: int,
        host: str = "127.0.0.1",
        base_args: Optional[Sequence[str]] = None,
        poll_interval: float = 0.5,
        log: Callable[[str], None] = lambda message: None,
    ) -> None:
        if count < 1:
            raise ValueError("count must be positive")
        self.count = count
        self.host = host
        self.base_args = list(base_args or [])
        self.poll_interval = poll_interval
        self.log = log
        self.endpoints: List[ReplicaEndpoint] = []
        self.restarts = 0
        self._procs: Dict[str, subprocess.Popen] = {}
        self._stopping = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def _spawn(self, replica_id: str, port: int) -> subprocess.Popen:
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            self.host,
            "--port",
            str(port),
            "--replica-id",
            replica_id,
            *self.base_args,
        ]
        env = dict(os.environ)
        # make the repro package importable in the child regardless of
        # how the parent found it (installed, PYTHONPATH, sys.path hack)
        package_root = str(pathlib.Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        if package_root not in (existing or "").split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root if not existing else package_root + os.pathsep + existing
            )
        proc = subprocess.Popen(
            argv,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        self._procs[replica_id] = proc
        return proc

    def start(self) -> List[ReplicaEndpoint]:
        """Spawn all replicas; returns their (stable) endpoints."""
        for index in range(self.count):
            replica_id = f"r{index}"
            port = _free_port(self.host)
            proc = self._spawn(replica_id, port)
            # alive=False until the router's health loop sees /healthz —
            # replicas take a moment to bind
            self.endpoints.append(
                ReplicaEndpoint(
                    replica_id=replica_id,
                    host=self.host,
                    port=port,
                    pid=proc.pid,
                    alive=False,
                )
            )
            self.log(f"replica {replica_id} (pid {proc.pid}) on port {port}")
        self._thread = threading.Thread(
            target=self._watch, name="repro-cluster-supervisor", daemon=True
        )
        self._thread.start()
        return self.endpoints

    def _watch(self) -> None:
        """Restart dead replicas on their original port/replica id."""
        while not self._stopping:
            time.sleep(self.poll_interval)
            for endpoint in self.endpoints:
                proc = self._procs.get(endpoint.replica_id)
                if proc is None or proc.poll() is None or self._stopping:
                    continue
                endpoint.alive = False
                endpoint.last_error = f"exited with {proc.returncode}"
                new = self._spawn(endpoint.replica_id, endpoint.port)
                endpoint.pid = new.pid
                self.restarts += 1
                self.log(
                    f"replica {endpoint.replica_id} died "
                    f"(rc={proc.returncode}); restarted as pid {new.pid}"
                )

    def stop(self, timeout: float = 15.0) -> None:
        """SIGTERM every replica (they drain), then SIGKILL stragglers."""
        self._stopping = True
        if self._thread is not None:
            self._thread.join(self.poll_interval * 4)
        for proc in self._procs.values():
            if proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for proc in self._procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)


# ----------------------------------------------------------------------
# router server lifecycle
# ----------------------------------------------------------------------
@dataclass
class RouterHandle:
    """Cross-thread control surface returned by :func:`start_router_in_thread`."""

    loop: asyncio.AbstractEventLoop
    app: RouterApp
    host: str
    port: int
    thread: Optional[threading.Thread] = None
    _stop: Optional[asyncio.Event] = None

    def request_shutdown(self) -> None:
        if self._stop is None:
            return
        try:
            self.loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:
            pass

    def join(self, timeout: Optional[float] = None) -> None:
        if self.thread is not None:
            self.thread.join(timeout)


async def _handle_router_connection(
    app: RouterApp, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        try:
            request = await asyncio.wait_for(_read_request(reader), timeout=30.0)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
            request = None
        if request is None:
            return
        method, target, headers, raw_body = request
        try:
            status, payload = await app.handle(
                method, target, raw_body, parent=_parse_trace_header(headers)
            )
        except Exception as exc:  # never leak a traceback as a hung socket
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}",
                "code": "internal",
            }
        writer.write(_encode_response(status, payload))
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def serve_router_async(
    replicas: Sequence[ReplicaEndpoint],
    host: str = "127.0.0.1",
    port: int = 8320,
    vnodes: int = 64,
    max_inflight: int = 256,
    supervisor: Optional[ClusterSupervisor] = None,
    ready: Optional[Callable[[RouterHandle], None]] = None,
    install_signal_handlers: bool = True,
    log: Callable[[str], None] = print,
    trace_file: Optional[str] = None,
    slo: Any = None,
    flight: Any = None,
) -> None:
    """Run the router over ``replicas`` until SIGTERM/SIGINT.

    ``slo`` (True or a JSON config path) turns on cluster-level SLO
    burn-rate evaluation over the merged scrape; ``flight`` (True or a
    JSONL sink path) arms the router's flight recorder.  On shutdown
    the router drains (new submissions 503 ``code="draining"``), then
    stops the supervisor's replicas (each of which drains its own
    queue before exiting).
    """
    if trace_file is not None:
        configure_tracing(enabled=True, jsonl_path=trace_file)
    if flight:
        configure_flight(
            enabled=True, sink_path=flight if isinstance(flight, str) else None
        )
    slo_config: Optional[SloConfig] = None
    if slo:
        slo_config = load_slo_config(slo if isinstance(slo, str) else None)
    obs_metrics.record_build_info()
    app = RouterApp(
        replicas, vnodes=vnodes, max_inflight=max_inflight, slo_config=slo_config
    )
    await app.start()
    server = await asyncio.start_server(
        lambda r, w: _handle_router_connection(app, r, w), host, port
    )
    bound_port = server.sockets[0].getsockname()[1]
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
    handle = RouterHandle(loop=loop, app=app, host=host, port=bound_port, _stop=stop)
    if ready is not None:
        ready(handle)
    _LOG.info(
        "router.listening",
        host=host,
        port=bound_port,
        replicas=sorted(app.replicas),
        vnodes=vnodes,
    )
    log(
        f"repro router listening on http://{host}:{bound_port} "
        f"({len(app.replicas)} replicas: {', '.join(sorted(app.replicas))})"
    )
    try:
        await stop.wait()
    finally:
        app.draining = True
        _LOG.info("router.draining", counters=dict(app.counters))
        log("repro router draining ...")
        await app.stop()
        server.close()
        await server.wait_closed()
        if supervisor is not None:
            supervisor.stop()
        _LOG.info("router.stopped", counters=dict(app.counters))
        log("repro router stopped")


async def serve_cluster_async(
    host: str = "127.0.0.1",
    port: int = 8321,
    replicas: int = 3,
    replica_args: Optional[Sequence[str]] = None,
    cache_dir: Optional[str] = None,
    vnodes: int = 64,
    max_inflight: int = 256,
    ready: Optional[Callable[[RouterHandle], None]] = None,
    install_signal_handlers: bool = True,
    log: Callable[[str], None] = print,
    trace_file: Optional[str] = None,
    slo: Any = None,
    flight: Any = None,
) -> None:
    """Boot supervisor + N replicas + router: ``repro serve --replicas N``.

    Replicas share ``cache_dir`` as the cluster's result tier (a
    temporary directory when not given — still shared, but not
    persistent across cluster restarts).  ``--slo`` stays on the router
    only (so each cluster burn alert fires exactly once); ``--flight``
    is forwarded to the replicas as well, because the span evidence for
    a failing job lives in the replica that ran it.
    """
    scratch: Optional[tempfile.TemporaryDirectory] = None
    if cache_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-cluster-cache-")
        cache_dir = scratch.name
    args = list(replica_args or []) + ["--cache-dir", cache_dir]
    if trace_file is not None:
        args += ["--trace-file", trace_file]
    if flight:
        # replicas record in memory; a sink path stays router-local so
        # N processes never interleave writes into one JSONL file
        args += ["--flight"]
    supervisor = ClusterSupervisor(replicas, host=host, base_args=args, log=log)
    try:
        endpoints = supervisor.start()
        await serve_router_async(
            endpoints,
            host=host,
            port=port,
            vnodes=vnodes,
            max_inflight=max_inflight,
            supervisor=supervisor,
            ready=ready,
            install_signal_handlers=install_signal_handlers,
            log=log,
            trace_file=trace_file,
            slo=slo,
            flight=flight,
        )
    finally:
        supervisor.stop()
        if scratch is not None:
            scratch.cleanup()


def run_cluster(**kwargs: Any) -> None:
    """Blocking entry point used by ``repro serve --replicas N``."""
    try:
        asyncio.run(serve_cluster_async(**kwargs))
    except KeyboardInterrupt:
        pass


def start_router_in_thread(
    replicas: Sequence[ReplicaEndpoint],
    host: str = "127.0.0.1",
    port: int = 0,
    log: Callable[[str], None] = lambda message: None,
    **kwargs: Any,
) -> RouterHandle:
    """Run a router (over already-running replicas) on a daemon thread.

    The test-facing mirror of :func:`repro.service.http.start_in_thread`:
    no supervisor, no signal handlers, ``port=0`` picks a free port.
    """
    box: Dict[str, Any] = {}
    started = threading.Event()

    def _ready(handle: RouterHandle) -> None:
        box["handle"] = handle
        started.set()

    def _run() -> None:
        try:
            asyncio.run(
                serve_router_async(
                    replicas,
                    host=host,
                    port=port,
                    ready=_ready,
                    install_signal_handlers=False,
                    log=log,
                    **kwargs,
                )
            )
        except Exception as exc:
            box["error"] = exc
            started.set()

    thread = threading.Thread(target=_run, name="repro-router", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("router failed to start within 30 s")
    if "error" in box:
        raise RuntimeError(f"router failed to start: {box['error']}")
    handle: RouterHandle = box["handle"]
    handle.thread = thread
    return handle
