"""JSON HTTP API for the verification service (stdlib asyncio only).

Endpoints::

    POST /v1/verify       submit a verification job
    POST /v1/synthesize   submit a countermeasure-synthesis job
    GET  /v1/jobs/<id>    job state (+ result once terminal)
    POST /v1/incidents    ingest a monitor incident
    GET  /v1/incidents    query stored incidents (``?kind=``,
                          ``?severity=``, ``?min_severity=``,
                          ``?since_tick=``, ``?limit=``)
    GET  /healthz         liveness ("ok" / "draining") + replica id
    GET  /statsz          queue depth (total and per priority),
                          batch-size histogram, cache hit-rate,
                          p50/p95 latency, job counters, warm-session
                          registry counters, incident counts
    GET  /metricsz        Prometheus exposition of this process
    GET  /sloz            SLO burn-rate state (with ``--slo``)
    GET  /debugz/flight   flight-recorder snapshots (with ``--flight``;
                          ``?trace_id=`` freezes/filters one trace)

Requests may carry an ``X-Trace-Context`` header (the JSON of
:func:`repro.obs.trace.context_payload`); the server parents its
``http.request`` span on it, so a monitor's re-verification probes and
the solver work they cause share one trace id across processes.

Client errors are answered with ``{"error": <message>, "code":
<slug>}`` — including malformed (non-JSON) bodies, which get a 400
with ``code="invalid_json"`` instead of a traceback.  Admission
control (queue at ``max_queue``, or one client at
``max_queue_per_client``) answers 429 with ``code="queue_full"``; a
draining server answers new submissions 503 with ``code="draining"``.

Verify bodies carry either ``"spec"`` (the canonical payload of
:func:`repro.runtime.serialize.spec_to_payload`) or ``"spec_text"``
(the paper's text format, :mod:`repro.core.io`), plus optional
``backend``/``portfolio``/``epsilon``/``priority``/``deadline``/
``max_retries``; ``"wait": true`` holds the request open until the job
is terminal (bounded by ``wait_timeout``).  Synthesize bodies add a
``"settings"`` object (``budget`` required).

On SIGTERM/SIGINT the server **drains**: new submissions get 503,
``GET`` stays available for polling, in-flight and queued jobs run to
completion, then the process exits.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import signal
import threading
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Dict, Optional, Tuple

from urllib.parse import parse_qs

from repro.core.io import SpecParseError, parse_spec
from repro.core.spec import AttackSpec
from repro.core.synthesis import SynthesisSettings
from repro.monitor.incidents import Incident, IncidentStore
from repro.obs import metrics as obs_metrics
from repro.obs.flight import configure_flight, get_flight_recorder
from repro.obs.logging import get_logger
from repro.obs.slo import SloConfig, SloEvaluator, alert_to_incident_payload, load_slo_config
from repro.obs.trace import configure_tracing, get_tracer
from repro.runtime import ResultCache, RuntimeOptions, parse_portfolio_mode
from repro.runtime.serialize import payload_to_spec, spec_to_payload
from repro.service.batching import BatchingScheduler, BatchStats
from repro.service.jobs import JobQueue, JobState, QueueFull
from repro.smt.solver import engine_signature

_LOG = get_logger("repro.service")

#: endpoints that may appear as a metric label (bounds cardinality)
_KNOWN_PATHS = (
    "/healthz",
    "/statsz",
    "/metricsz",
    "/sloz",
    "/debugz/flight",
    "/v1/verify",
    "/v1/synthesize",
    "/v1/incidents",
)

#: sentinel for a request body that was present but not valid JSON;
#: routed through ``handle`` so the 400 still gets metrics and a span
_INVALID_BODY: Any = object()

_M_REQUESTS = obs_metrics.counter(
    "repro_http_requests_total",
    "HTTP requests by endpoint and answer status",
    labels=("method", "path", "status"),
)
_M_REQUEST_SECONDS = obs_metrics.histogram(
    "repro_http_request_seconds",
    "Wall time spent answering a request",
    labels=("path",),
)


def _metric_path(path: str) -> str:
    """Collapse request targets onto a bounded endpoint label set."""
    if path.startswith("/v1/jobs/"):
        return "/v1/jobs/:id"
    if path in _KNOWN_PATHS:
        return path
    return "other"

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

_BACKENDS = ("smt", "milp")


class RequestError(ValueError):
    """A client error; carries the HTTP status and a stable error code."""

    def __init__(
        self, message: str, status: int = 400, code: str = "bad_request"
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


def _require(
    condition: bool, message: str, status: int = 400, code: str = "bad_request"
) -> None:
    if not condition:
        raise RequestError(message, status, code)


def _query_int(query: Dict[str, str], name: str) -> Optional[int]:
    value = query.get(name)
    if value is None:
        return None
    try:
        return int(value)
    except ValueError:
        raise RequestError(f"'{name}' must be an integer")


def _parse_spec_field(body: Dict[str, Any]) -> AttackSpec:
    """``spec`` (canonical payload) XOR ``spec_text`` (paper text format)."""
    spec_payload = body.get("spec")
    spec_text = body.get("spec_text")
    _require(
        (spec_payload is None) != (spec_text is None),
        "provide exactly one of 'spec' (canonical payload) or 'spec_text'",
    )
    try:
        if spec_payload is not None:
            _require(isinstance(spec_payload, dict), "'spec' must be an object")
            return payload_to_spec(spec_payload)
        _require(isinstance(spec_text, str), "'spec_text' must be a string")
        return parse_spec(spec_text)
    except RequestError:
        raise
    except (SpecParseError, ValueError, KeyError, TypeError) as exc:
        raise RequestError(f"invalid spec: {exc}") from exc


def _parse_common(body: Dict[str, Any]) -> Dict[str, Any]:
    """priority / deadline / max_retries / wait knobs, validated."""
    out: Dict[str, Any] = {}
    priority = body.get("priority", 0)
    _require(isinstance(priority, int), "'priority' must be an integer")
    out["priority"] = priority
    deadline = body.get("deadline")
    if deadline is not None:
        _require(
            isinstance(deadline, (int, float)) and deadline >= 0,
            "'deadline' must be a nonnegative number of seconds",
        )
    out["deadline"] = deadline
    max_retries = body.get("max_retries", 1)
    _require(
        isinstance(max_retries, int) and 0 <= max_retries <= 5,
        "'max_retries' must be an integer in [0, 5]",
    )
    out["max_retries"] = max_retries
    out["wait"] = bool(body.get("wait", False))
    wait_timeout = body.get("wait_timeout", 30.0)
    _require(
        isinstance(wait_timeout, (int, float)) and wait_timeout > 0,
        "'wait_timeout' must be a positive number of seconds",
    )
    out["wait_timeout"] = float(wait_timeout)
    client = body.get("client")
    if client is not None:
        _require(
            isinstance(client, str) and 0 < len(client) <= 120,
            "'client' must be a nonempty string of at most 120 characters",
        )
    out["client"] = client
    return out


class ServiceApp:
    """Routing + validation over one queue/scheduler/cache triple."""

    def __init__(
        self,
        options: Optional[RuntimeOptions] = None,
        window: float = 0.05,
        max_batch: int = 64,
        max_queue: int = 10_000,
        max_queue_per_client: Optional[int] = None,
        replica_id: Optional[str] = None,
        slo_config: Optional[SloConfig] = None,
    ) -> None:
        options = options or RuntimeOptions()
        if options.cache is None:
            # memoization is the point of a long-lived service: always
            # carry at least an in-memory cache
            options = dataclasses.replace(options, cache=ResultCache())
        self.options = options
        self.replica_id = replica_id
        self.queue = JobQueue(max_depth=max_queue, max_per_client=max_queue_per_client)
        self.queue.on_terminal = self._on_job_terminal
        self.stats = BatchStats()
        self.scheduler = BatchingScheduler(
            self.queue, options, window=window, max_batch=max_batch, stats=self.stats
        )
        self.draining = False
        self.incidents = IncidentStore()
        self.slo: Optional[SloEvaluator] = (
            SloEvaluator(slo_config) if slo_config is not None else None
        )
        self._slo_seq = 0
        self.started_wall = time.time()
        self.started_mono = time.monotonic()
        self._scheduler_task: Optional[asyncio.Task] = None
        self._slo_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._scheduler_task = asyncio.create_task(self.scheduler.run())
        if self.slo is not None:
            self._slo_task = asyncio.create_task(self._slo_loop())

    async def drain(self) -> None:
        """Stop taking work, finish what's queued/running, stop scheduling."""
        self.draining = True
        await self.queue.join()
        for task_name in ("_scheduler_task", "_slo_task"):
            task = getattr(self, task_name)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, task_name, None)

    # ------------------------------------------------------------------
    def _on_job_terminal(self, job: Any, state: str) -> None:
        """Flight-recorder hook: freeze evidence for failed/timed-out jobs."""
        if state not in ("failed", "timeout"):
            return
        recorder = get_flight_recorder()
        if not recorder.enabled:
            return
        trace = job.trace or {}
        recorder.trigger(
            "job_timeout" if state == "timeout" else "job_failed",
            trace_id=trace.get("trace_id"),
            detail={
                "job_id": job.id,
                "kind": job.kind,
                "state": state,
                "error": job.error,
                "deadline": job.deadline,
            },
        )

    async def _slo_loop(self) -> None:
        """Periodically evaluate SLOs over this replica's own registry."""
        assert self.slo is not None
        interval = max(0.05, float(self.slo.config.interval_seconds))
        while True:
            await asyncio.sleep(interval)
            try:
                events = self.slo.sample_text(self.metricsz())
            except Exception as exc:  # evaluation must never kill the app
                _LOG.warning("slo.sample_failed", error=str(exc))
                continue
            for event in events:
                self._publish_slo_alert(event)

    def _publish_slo_alert(self, event: Dict[str, Any]) -> None:
        """An SLO burn alert becomes a first-class monitor incident."""
        self._slo_seq += 1
        payload = alert_to_incident_payload(event, self._slo_seq)
        try:
            incident = Incident.from_payload(payload)
        except ValueError:
            return
        self.incidents.add(incident)
        recorder = get_flight_recorder()
        if recorder.enabled:
            recorder.trigger(
                "slo_burn",
                trace_id=event.get("exemplar_trace_id"),
                detail={"slo": event.get("slo"), "severity": event.get("severity")},
            )
        _LOG.warning(
            "slo.burn_alert",
            slo=event.get("slo"),
            severity=event.get("severity"),
            windows=event.get("windows"),
            budget_remaining=event.get("budget_remaining"),
            exemplar_trace_id=event.get("exemplar_trace_id"),
        )

    # ------------------------------------------------------------------
    async def handle(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
        query: Optional[Dict[str, str]] = None,
        parent: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any]:
        """Route one request; the payload is a JSON dict, or raw text for
        ``/metricsz`` (Prometheus exposition is not JSON).

        ``parent`` is a caller-supplied trace context (the
        ``X-Trace-Context`` header): the request span joins that trace
        instead of starting a fresh one.
        """
        endpoint = _metric_path(path)
        start = time.monotonic()
        with get_tracer().span(
            "http.request", parent=parent, method=method, path=path
        ) as span:
            try:
                _require(
                    body is not _INVALID_BODY,
                    "request body is not valid JSON",
                    code="invalid_json",
                )
                status, payload = await self._route(method, path, body, query or {})
            except RequestError as exc:
                status, payload = exc.status, {"error": str(exc), "code": exc.code}
            except QueueFull as exc:
                # admission control: shed load with a structured, retryable
                # rejection rather than a bare server error
                status, payload = 429, {"error": str(exc), "code": "queue_full"}
            span.set(status=status)
            trace_id = span.trace_id
        _M_REQUESTS.inc(method=method, path=endpoint, status=status)
        _M_REQUEST_SECONDS.observe(
            time.monotonic() - start, exemplar=trace_id or None, path=endpoint
        )
        if status >= 500:
            recorder = get_flight_recorder()
            if recorder.enabled:
                # the span is finished by now, so the whole tree is in
                # the tracer ring and the snapshot sees it
                recorder.trigger(
                    "http_5xx",
                    trace_id=trace_id or None,
                    detail={"method": method, "path": path, "status": status},
                )
        return status, payload

    async def _route(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
        query: Dict[str, str],
    ) -> Tuple[int, Any]:
        if path == "/healthz":
            _require(method == "GET", "use GET", 405)
            return 200, {
                "status": "draining" if self.draining else "ok",
                "uptime_seconds": time.monotonic() - self.started_mono,
                # self-identification for scraped deployments: which
                # replica, runtime knobs and solver engine answered
                "replica": self.replica_id,
                "runtime": self.options.describe(),
                "engine": engine_signature(),
            }
        if path == "/statsz":
            _require(method == "GET", "use GET", 405)
            return 200, self.statsz()
        if path == "/metricsz":
            _require(method == "GET", "use GET", 405)
            return 200, self.metricsz()
        if path == "/sloz":
            _require(method == "GET", "use GET", 405)
            _require(
                self.slo is not None,
                "SLO monitoring is not enabled (start with --slo)",
                404,
                code="slo_disabled",
            )
            assert self.slo is not None
            return 200, self.slo.status()
        if path == "/debugz/flight":
            _require(method == "GET", "use GET", 405)
            recorder = get_flight_recorder()
            trace_id = query.get("trace_id")
            if trace_id and recorder.enabled and not recorder.snapshots(trace_id):
                # on-demand freeze: capture whatever the ring still holds
                recorder.trigger("on_demand", trace_id=trace_id)
            return 200, recorder.payload(trace_id)
        if path.startswith("/v1/jobs/"):
            _require(method == "GET", "use GET", 405)
            job = self.queue.get(path[len("/v1/jobs/") :])
            _require(job is not None, "unknown job id", 404)
            return 200, job.describe()
        if path == "/v1/verify":
            _require(method == "POST", "use POST", 405)
            return await self._submit_verify(body)
        if path == "/v1/synthesize":
            _require(method == "POST", "use POST", 405)
            return await self._submit_synthesize(body)
        if path == "/v1/incidents":
            if method == "POST":
                return self._ingest_incident(body)
            _require(method == "GET", "use GET or POST", 405)
            return self._query_incidents(query)
        raise RequestError(f"no such endpoint: {path}", 404, "not_found")

    # ------------------------------------------------------------------
    def _check_accepting(self, body: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        _require(
            not self.draining,
            "service is draining; not accepting jobs",
            503,
            code="draining",
        )
        _require(isinstance(body, dict), "request body must be a JSON object")
        return body  # type: ignore[return-value]

    async def _submit_verify(
        self, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        body = self._check_accepting(body)
        spec = _parse_spec_field(body)
        common = _parse_common(body)
        backend = body.get("backend")
        if backend is not None:
            _require(backend in _BACKENDS, f"'backend' must be one of {_BACKENDS}")
        epsilon = body.get("epsilon")
        if epsilon is not None:
            try:
                epsilon = str(Fraction(str(epsilon)))
            except (ValueError, ZeroDivisionError) as exc:
                raise RequestError(f"invalid 'epsilon': {exc}") from exc
        portfolio = body.get("portfolio", False)
        if isinstance(portfolio, str):
            # "backends" / "configs" / "configs:N"; validated here so a
            # typo is a 400, not a failed job inside the pool
            try:
                parse_portfolio_mode(portfolio)
            except ValueError as exc:
                raise RequestError(f"invalid 'portfolio': {exc}") from exc
        else:
            portfolio = bool(portfolio)
        payload = {
            "spec": spec_to_payload(spec),
            "backend": backend,
            "portfolio": portfolio,
            "epsilon": epsilon,
        }
        job = await self.queue.submit(
            "verify",
            payload,
            priority=common["priority"],
            deadline=common["deadline"],
            max_retries=common["max_retries"],
            client=common["client"],
        )
        return await self._answer_submission(job.id, common)

    async def _submit_synthesize(
        self, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        body = self._check_accepting(body)
        spec = _parse_spec_field(body)
        common = _parse_common(body)
        settings = body.get("settings")
        _require(isinstance(settings, dict), "'settings' object is required")
        _require("budget" in settings, "'settings.budget' is required")
        kwargs = {
            "max_secured_buses": settings["budget"],
            "excluded_buses": settings.get("exclude", []),
            "blocking": settings.get("blocking", "counterexample"),
            "neighbor_pruning": bool(settings.get("neighbor_pruning", True)),
        }
        if "max_iterations" in settings:
            kwargs["max_iterations"] = settings["max_iterations"]
        try:
            SynthesisSettings(
                **{**kwargs, "excluded_buses": frozenset(kwargs["excluded_buses"])}
            )
        except (TypeError, ValueError) as exc:
            raise RequestError(f"invalid settings: {exc}") from exc
        payload = {"spec": spec_to_payload(spec), "settings": kwargs}
        job = await self.queue.submit(
            "synthesize",
            payload,
            priority=common["priority"],
            deadline=common["deadline"],
            max_retries=common["max_retries"],
            client=common["client"],
        )
        return await self._answer_submission(job.id, common)

    def _ingest_incident(
        self, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        body = self._check_accepting(body)
        try:
            incident = Incident.from_payload(body)
        except ValueError as exc:
            raise RequestError(f"invalid incident: {exc}") from exc
        self.incidents.add(incident)
        return 202, {"id": incident.id, "stored": len(self.incidents)}

    def _query_incidents(
        self, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        limit = _query_int(query, "limit")
        try:
            matches = self.incidents.query(
                kind=query.get("kind"),
                severity=query.get("severity"),
                min_severity=query.get("min_severity"),
                since_tick=_query_int(query, "since_tick"),
                limit=100 if limit is None else limit,
            )
        except ValueError as exc:
            raise RequestError(str(exc)) from exc
        return 200, {
            "incidents": [incident.to_payload() for incident in matches],
            "count": len(matches),
        }

    async def _answer_submission(
        self, job_id: str, common: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        if common["wait"]:
            job = await self.queue.wait(job_id, timeout=common["wait_timeout"])
            if job is not None and job.state.terminal:
                return 200, job.describe()
        job = self.queue.get(job_id)
        assert job is not None
        return 202, job.describe()

    # ------------------------------------------------------------------
    def statsz(self) -> Dict[str, Any]:
        from repro.runtime import session_registry_stats

        cache = self.options.cache
        return {
            "uptime_seconds": time.monotonic() - self.started_mono,
            "started_at": self.started_wall,
            "replica": self.replica_id,
            "draining": self.draining,
            "queue": self.queue.snapshot(),
            "batching": {
                **self.stats.snapshot(),
                "window_seconds": self.scheduler.window,
                "max_batch": self.scheduler.max_batch,
            },
            "cache": None if cache is None else cache.snapshot(),
            "runtime": self.options.describe(),
            "engine": engine_signature(),
            "sessions": session_registry_stats(),
            "incidents": self.incidents.snapshot(),
            "tracer": get_tracer().snapshot(),
            "flight": {
                "enabled": get_flight_recorder().enabled,
                **get_flight_recorder().counters,
            },
            "slo": None if self.slo is None else {
                "slos": len(self.slo.config.slos),
                "alerts": len(self.slo.alerts()),
            },
        }

    def metricsz(self) -> str:
        """The registry in Prometheus text format (``GET /metricsz``)."""
        return obs_metrics.get_registry().render_prometheus()


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        length = 0
    body = await reader.readexactly(length) if length > 0 else b""
    return method, target, headers, body


def _parse_query(raw: str) -> Dict[str, str]:
    """``a=1&b=2`` -> ``{"a": "1", "b": "2"}`` (last value wins)."""
    return {
        name: values[-1]
        for name, values in parse_qs(raw, keep_blank_values=True).items()
    }


def _parse_trace_header(headers: Dict[str, str]) -> Optional[Dict[str, str]]:
    """The ``X-Trace-Context`` header: JSON ``{"trace_id", "span_id"}``."""
    raw = headers.get("x-trace-context")
    if not raw:
        return None
    try:
        payload = json.loads(raw)
    except ValueError:
        return None
    if isinstance(payload, dict) and payload.get("trace_id"):
        return {str(k): str(v) for k, v in payload.items()}
    return None


def _encode_response(status: int, payload: Any) -> bytes:
    """JSON for dict payloads; Prometheus text for raw strings."""
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


async def _handle_connection(
    app: ServiceApp, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        try:
            request = await asyncio.wait_for(_read_request(reader), timeout=30.0)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
            request = None
        if request is None:
            return
        method, target, headers, raw_body = request
        path, _, raw_query = target.partition("?")
        body: Optional[Dict[str, Any]]
        if raw_body:
            try:
                body = json.loads(raw_body)
            except ValueError:
                # routed through handle() so the 400 is still metered,
                # spanned, and answered in the structured error shape
                body = _INVALID_BODY
        else:
            body = None
        try:
            status, payload = await app.handle(
                method,
                path,
                body,
                query=_parse_query(raw_query),
                parent=_parse_trace_header(headers),
            )
        except Exception as exc:  # never leak a traceback as a hung socket
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}",
                "code": "internal",
            }
        writer.write(_encode_response(status, payload))
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
@dataclass
class ServerHandle:
    """Cross-thread control surface returned by :func:`start_in_thread`."""

    loop: asyncio.AbstractEventLoop
    app: ServiceApp
    host: str
    port: int
    thread: Optional[threading.Thread] = None
    _stop: Optional[asyncio.Event] = None

    def request_shutdown(self) -> None:
        """Trigger the same graceful-drain path as SIGTERM (idempotent)."""
        if self._stop is None:
            return
        try:
            self.loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:
            pass  # loop already closed: the server is down

    def join(self, timeout: Optional[float] = None) -> None:
        if self.thread is not None:
            self.thread.join(timeout)


async def serve_async(
    host: str = "127.0.0.1",
    port: int = 8321,
    options: Optional[RuntimeOptions] = None,
    window: float = 0.05,
    max_batch: int = 64,
    max_queue: int = 10_000,
    max_queue_per_client: Optional[int] = None,
    replica_id: Optional[str] = None,
    ready: Optional[Callable[[ServerHandle], None]] = None,
    install_signal_handlers: bool = True,
    log: Callable[[str], None] = print,
    trace_file: Optional[str] = None,
    slo: Any = None,
    flight: Any = None,
) -> None:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    ``trace_file`` enables span tracing with a JSONL sink at that path
    (equivalent to ``REPRO_TRACE_FILE``); lifecycle events additionally
    go to the structured JSON log, stamped with the runtime knobs and
    the solver engine signature so scraped deployments self-identify.
    ``replica_id`` names this process in a sharded cluster (surfaced in
    ``/healthz`` and ``/statsz``); ``max_queue_per_client`` bounds any
    one client's queued jobs (429 ``queue_full`` beyond it).

    ``slo`` turns on burn-rate SLO monitoring: True evaluates the
    built-in objectives, a string loads a JSON config file (see
    :func:`repro.obs.slo.load_slo_config`); alerts surface as
    ``slo_burn`` incidents and ``GET /sloz``.  ``flight`` arms the
    flight recorder (True, or a JSONL sink path) so 5xx answers, job
    failures/deadline misses and SLO alerts freeze a redacted snapshot
    at ``GET /debugz/flight``.  Both are off by default.
    """
    if trace_file is not None:
        configure_tracing(enabled=True, jsonl_path=trace_file)
    if flight:
        configure_flight(
            enabled=True, sink_path=flight if isinstance(flight, str) else None
        )
    slo_config = None
    if slo:
        slo_config = load_slo_config(slo if isinstance(slo, str) else None)
    obs_metrics.record_build_info()
    app = ServiceApp(
        options=options,
        window=window,
        max_batch=max_batch,
        max_queue=max_queue,
        max_queue_per_client=max_queue_per_client,
        replica_id=replica_id,
        slo_config=slo_config,
    )
    await app.start()
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host, port
    )
    bound_port = server.sockets[0].getsockname()[1]
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # e.g. Windows event loops: Ctrl-C still raises
    handle = ServerHandle(loop=loop, app=app, host=host, port=bound_port, _stop=stop)
    if ready is not None:
        ready(handle)
    _LOG.info(
        "service.listening",
        host=host,
        port=bound_port,
        replica=replica_id,
        runtime=app.options.describe(),
        engine=engine_signature(),
        tracing=get_tracer().snapshot(),
    )
    tag = "" if replica_id is None else f" (replica {replica_id})"
    log(f"repro service listening on http://{host}:{bound_port}{tag}")
    try:
        await stop.wait()
    finally:
        _LOG.info("service.draining", unfinished=app.queue.unfinished())
        log("repro service draining ...")
        # refuse new jobs but keep answering polls while work completes
        await app.drain()
        server.close()
        await server.wait_closed()
        _LOG.info("service.stopped", queue=app.queue.snapshot())
        log("repro service stopped")


def serve(**kwargs: Any) -> None:
    """Blocking entry point used by ``python -m repro.cli serve``."""
    try:
        asyncio.run(serve_async(**kwargs))
    except KeyboardInterrupt:
        pass


def start_in_thread(
    host: str = "127.0.0.1",
    port: int = 0,
    log: Callable[[str], None] = lambda message: None,
    **kwargs: Any,
) -> ServerHandle:
    """Run the service on a daemon thread; block until it is accepting.

    The returned handle exposes the bound port (``port=0`` picks a free
    one), the app (for white-box assertions in tests) and
    ``request_shutdown()``, which triggers the same graceful drain as
    SIGTERM.  Signal handlers are not installed — the host thread owns
    signals.
    """
    box: Dict[str, Any] = {}
    started = threading.Event()

    def _ready(handle: ServerHandle) -> None:
        box["handle"] = handle
        started.set()

    def _run() -> None:
        try:
            asyncio.run(
                serve_async(
                    host=host,
                    port=port,
                    ready=_ready,
                    install_signal_handlers=False,
                    log=log,
                    **kwargs,
                )
            )
        except Exception as exc:  # surface startup failures to the caller
            box["error"] = exc
            started.set()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("service failed to start within 30 s")
    if "error" in box:
        raise RuntimeError(f"service failed to start: {box['error']}")
    handle: ServerHandle = box["handle"]
    handle.thread = thread
    return handle
