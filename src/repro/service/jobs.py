"""Asyncio job queue for the verification service.

Every request the HTTP layer accepts becomes a :class:`Job`: a kind
(``"verify"`` or ``"synthesize"``), a JSON-able payload, a priority, an
optional deadline, a bounded retry budget and an optional **client
identity**.  The queue hands jobs to the batching scheduler in
``(priority, client fair-rank, arrival)`` order and tracks the full
lifecycle::

    queued -> running -> done
                      -> failed      (exhausted retries)
             queued   -> cancelled   (client cancelled before dispatch)
             queued   -> timeout     (deadline expired before dispatch)
             running  -> timeout     (result arrived after the deadline)

States are deliberately terminal-or-not: a terminal job never changes
again, and its ``done`` event is set exactly once, so HTTP handlers can
``await`` completion without polling.  Deadlines and **all durations**
use ``time.monotonic`` — wall-clock jumps never expire a job, and the
queue-wait/run-latency numbers fed to the metrics histograms can never
go negative under a clock adjustment.  Wall-clock timestamps are kept
alongside purely for display in ``describe()``.

**Per-client fairness.**  The fair-rank component of the dispatch key
is the number of jobs the submitting client already had queued at
submission time, so the streams of different clients *interleave*: a
sweep that enqueues 500 jobs holds ranks 0..499 while an interactive
probe arriving later gets rank 0 and dispatches after at most one of
the sweep's jobs at the same priority.  Priorities still dominate —
the monitor's ``-10`` re-verification probes always jump the line —
and a single client's jobs stay FIFO.  ``max_per_client`` adds
admission control on top: a client at its queued-job cap is refused
with :class:`QueueFull` (the HTTP layer answers 429 ``queue_full``)
instead of monopolising the queue.  Anonymous submissions share one
fairness bucket; callers that want an independent budget identify
themselves.

Every job carries the span context of the request that submitted it
(``job.trace``) plus its own lifecycle span, so the trace tree connects
``http.request -> job -> pool.task -> solver`` across the queue hop.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.trace import context_payload, get_tracer

_M_SUBMITTED = obs_metrics.counter(
    "repro_jobs_submitted_total", "Jobs accepted by the queue", labels=("kind",)
)
_M_FINISHED = obs_metrics.counter(
    "repro_jobs_finished_total",
    "Jobs reaching a terminal state",
    labels=("kind", "state"),
)
_M_RETRIED = obs_metrics.counter(
    "repro_jobs_retried_total", "Failed attempts put back in line"
)
_M_DEPTH = obs_metrics.gauge(
    "repro_queue_depth", "Jobs waiting for dispatch right now"
)
_M_RUNNING = obs_metrics.gauge(
    "repro_queue_running", "Jobs currently executing"
)
_M_QUEUE_WAIT = obs_metrics.histogram(
    "repro_queue_wait_seconds", "Submit-to-dispatch wait (monotonic)"
)
_M_RUN = obs_metrics.histogram(
    "repro_job_run_seconds",
    "Dispatch-to-terminal runtime (monotonic)",
    labels=("kind",),
)


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.TIMEOUT}
)


class QueueFull(RuntimeError):
    """The queue is at ``max_depth``; the caller should shed load (503)."""


@dataclass
class Job:
    """One unit of service work and its observable lifecycle."""

    id: str
    kind: str
    payload: Dict[str, Any]
    priority: int = 0  # smaller runs sooner
    deadline: Optional[float] = None  # absolute time.monotonic()
    max_retries: int = 1
    client: Optional[str] = None  # fairness/admission identity
    state: JobState = JobState.QUEUED
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 0
    # wall clocks, for human display only
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    # monotonic clocks, the single source of truth for durations
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    trace: Optional[Dict[str, str]] = field(default=None, repr=False)
    span: Any = field(default=None, repr=False)
    done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline

    def queue_wait_seconds(self) -> Optional[float]:
        """Submit-to-dispatch wait; None while still queued."""
        if self.started_mono is None:
            return None
        return max(0.0, self.started_mono - self.submitted_mono)

    def run_seconds(self) -> Optional[float]:
        """Dispatch-to-terminal runtime; None before both ends exist."""
        if self.started_mono is None or self.finished_mono is None:
            return None
        return max(0.0, self.finished_mono - self.started_mono)

    def total_seconds(self) -> Optional[float]:
        """Submit-to-terminal latency; None while not terminal."""
        if self.finished_mono is None:
            return None
        return max(0.0, self.finished_mono - self.submitted_mono)

    def describe(self) -> Dict[str, Any]:
        """The JSON view served by ``GET /v1/jobs/<id>``."""
        out: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state.value,
            "priority": self.priority,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait_seconds": self.queue_wait_seconds(),
            "run_seconds": self.run_seconds(),
        }
        if self.client is not None:
            out["client"] = self.client
        if self.trace is not None:
            out["trace_id"] = self.trace.get("trace_id")
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out


class JobQueue:
    """Priority FIFO with lifecycle bookkeeping and completion events.

    ``submit``/``take``/``requeue``/``finish`` must all run on one event
    loop (the service's); cross-thread callers go through the HTTP API
    or ``loop.call_soon_threadsafe``.  Terminal jobs stay queryable
    until ``max_finished`` later completions push them out.
    """

    def __init__(
        self,
        max_depth: int = 10_000,
        max_finished: int = 4096,
        max_per_client: Optional[int] = None,
    ) -> None:
        if max_per_client is not None and max_per_client < 1:
            raise ValueError("max_per_client must be positive (or None)")
        self.max_depth = max_depth
        self.max_finished = max_finished
        self.max_per_client = max_per_client
        self._jobs: Dict[str, Job] = {}
        self._heap: List[Tuple[int, int, int, str]] = []
        self._queued_by_client: Dict[str, int] = {}
        self._seq = itertools.count()
        self._cond = asyncio.Condition()
        self._finished_order: Deque[str] = deque()
        self._unfinished = 0
        self._idle = asyncio.Event()
        self._idle.set()
        #: optional hook invoked as ``on_terminal(job, state_value)`` on
        #: every terminal transition (flight recorder, SLO bookkeeping);
        #: exceptions are swallowed so a hook can never wedge a job
        self.on_terminal: Optional[Callable[[Job, str], None]] = None
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "retried": 0,
            **{state.value: 0 for state in _TERMINAL},
        }

    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Jobs waiting for dispatch (cancelled/expired not yet reaped count)."""
        return sum(1 for job in self._jobs.values() if job.state is JobState.QUEUED)

    def depth_by_priority(self) -> Dict[str, int]:
        """Queued-job count per priority level (str keys: JSON object).

        Smaller priorities dispatch sooner, so this shows at a glance
        whether e.g. a monitor's ``-10`` re-verification probes are
        jumping ahead of batch traffic at ``0``.
        """
        depths: Dict[str, int] = {}
        for job in self._jobs.values():
            if job.state is JobState.QUEUED:
                key = str(job.priority)
                depths[key] = depths.get(key, 0) + 1
        return dict(sorted(depths.items(), key=lambda item: int(item[0])))

    def depth_by_client(self) -> Dict[str, int]:
        """Live queued-job count per fairness bucket (``/statsz``)."""
        return {
            client or "(anonymous)": count
            for client, count in sorted(self._queued_by_client.items())
            if count > 0
        }

    def running(self) -> int:
        return sum(1 for job in self._jobs.values() if job.state is JobState.RUNNING)

    def unfinished(self) -> int:
        return self._unfinished

    def get(self, job_id: str) -> Optional[Job]:
        """Look a job up, lazily expiring it if its deadline has passed."""
        job = self._jobs.get(job_id)
        if job is not None and job.state is JobState.QUEUED and job.expired():
            self._finish(job, JobState.TIMEOUT, error="deadline expired in queue")
        return job

    # ------------------------------------------------------------------
    def _fair_rank(self, job: Job) -> int:
        """The client's current queued count, then count this job in.

        Used as the middle component of the dispatch key: a client's
        n-th queued job ranks behind every other client's first.
        """
        bucket = job.client or ""
        rank = self._queued_by_client.get(bucket, 0)
        self._queued_by_client[bucket] = rank + 1
        return rank

    def _leave_queue(self, job: Job) -> None:
        """Bookkeeping for a job transitioning out of ``QUEUED``."""
        bucket = job.client or ""
        remaining = self._queued_by_client.get(bucket, 0) - 1
        if remaining > 0:
            self._queued_by_client[bucket] = remaining
        else:
            self._queued_by_client.pop(bucket, None)

    async def submit(
        self,
        kind: str,
        payload: Dict[str, Any],
        priority: int = 0,
        deadline: Optional[float] = None,
        max_retries: int = 1,
        client: Optional[str] = None,
    ) -> Job:
        """Enqueue a job; ``deadline`` is seconds from now (monotonic).

        ``client`` names the submitting party for fairness and per-client
        admission control; anonymous jobs share one bucket.
        """
        if self.depth() >= self.max_depth:
            raise QueueFull(f"queue depth at max_depth={self.max_depth}")
        if (
            self.max_per_client is not None
            and self._queued_by_client.get(client or "", 0) >= self.max_per_client
        ):
            who = repr(client) if client else "anonymous clients"
            raise QueueFull(
                f"{who} at max_queue_per_client={self.max_per_client}"
            )
        job = Job(
            id=uuid.uuid4().hex[:12],
            kind=kind,
            payload=payload,
            priority=priority,
            deadline=None if deadline is None else time.monotonic() + deadline,
            max_retries=max_retries,
            client=client,
        )
        # the job span parents to the submitting request's span (if any)
        # and lives until the job is terminal; pool tasks parent to it
        job.span = get_tracer().start_span(
            "job", kind=kind, job_id=job.id, priority=priority
        )
        job.trace = job.span.context_payload()
        self._jobs[job.id] = job
        self._unfinished += 1
        self._idle.clear()
        self.counters["submitted"] += 1
        _M_SUBMITTED.inc(kind=kind)
        _M_DEPTH.inc()
        rank = self._fair_rank(job)
        async with self._cond:
            heapq.heappush(
                self._heap, (job.priority, rank, next(self._seq), job.id)
            )
            self._cond.notify()
        return job

    async def take(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the next runnable job; ``None`` after ``timeout`` seconds.

        Cancelled entries are skipped; queued jobs past their deadline
        transition to ``timeout`` here instead of running.
        """
        try:
            return await asyncio.wait_for(self._take(), timeout)
        except asyncio.TimeoutError:
            return None

    async def _take(self) -> Job:
        async with self._cond:
            while True:
                job = self._pop_runnable()
                if job is not None:
                    return job
                await self._cond.wait()

    def _pop_runnable(self) -> Optional[Job]:
        while self._heap:
            _, _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                continue  # cancelled (or already reaped) while waiting
            if job.expired():
                self._finish(job, JobState.TIMEOUT, error="deadline expired in queue")
                continue
            self._leave_queue(job)
            job.state = JobState.RUNNING
            job.started_at = time.time()
            job.started_mono = time.monotonic()
            job.attempts += 1
            _M_DEPTH.dec()
            _M_RUNNING.inc()
            wait = job.queue_wait_seconds()
            if wait is not None:
                _M_QUEUE_WAIT.observe(wait)
            return job
        return None

    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; running jobs are past cancelling."""
        job = self._jobs.get(job_id)
        if job is None or job.state is not JobState.QUEUED:
            return False
        self._finish(job, JobState.CANCELLED)
        return True

    async def requeue(self, job: Job) -> None:
        """Put a failed-attempt job back in line (retry path)."""
        job.state = JobState.QUEUED
        self.counters["retried"] += 1
        _M_RETRIED.inc()
        _M_RUNNING.dec()
        _M_DEPTH.inc()
        rank = self._fair_rank(job)
        async with self._cond:
            heapq.heappush(
                self._heap, (job.priority, rank, next(self._seq), job.id)
            )
            self._cond.notify()

    def finish(
        self,
        job: Job,
        state: JobState,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Move a job to a terminal state and wake every waiter."""
        if not state.terminal:
            raise ValueError(f"finish() requires a terminal state, got {state}")
        self._finish(job, state, result=result, error=error)

    def _finish(
        self,
        job: Job,
        state: JobState,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        if job.state.terminal:
            return
        was_running = job.state is JobState.RUNNING
        if job.state is JobState.QUEUED:
            self._leave_queue(job)
        job.state = state
        job.result = result
        job.error = error
        job.finished_at = time.time()
        job.finished_mono = time.monotonic()
        job.done.set()
        self.counters[state.value] += 1
        _M_FINISHED.inc(kind=job.kind, state=state.value)
        if was_running:
            _M_RUNNING.dec()
            run = job.run_seconds()
            if run is not None:
                _M_RUN.observe(
                    run,
                    exemplar=(job.trace or {}).get("trace_id"),
                    kind=job.kind,
                )
        else:
            _M_DEPTH.dec()
        if job.span is not None:
            job.span.set(
                state=state.value,
                attempts=job.attempts,
                queue_wait_seconds=job.queue_wait_seconds(),
                run_seconds=job.run_seconds(),
            )
            if error is not None:
                job.span.set(error=error)
            job.span.finish(
                status="ok" if state is JobState.DONE else state.value
            )
        self._unfinished -= 1
        if self._unfinished == 0:
            self._idle.set()
        self._finished_order.append(job.id)
        while len(self._finished_order) > self.max_finished:
            stale = self._finished_order.popleft()
            self._jobs.pop(stale, None)
        if self.on_terminal is not None:
            try:
                self.on_terminal(job, state.value)
            except Exception:
                pass

    # ------------------------------------------------------------------
    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Optional[Job]:
        """Await a job's terminal state; ``None`` if still running at timeout."""
        job = self._jobs.get(job_id)
        if job is None:
            return None
        try:
            await asyncio.wait_for(job.done.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        return job

    async def join(self) -> None:
        """Block until no job is queued or running (graceful drain)."""
        await self._idle.wait()

    def snapshot(self) -> Dict[str, Any]:
        """Counters + live depth for ``/statsz``."""
        return {
            "depth": self.depth(),
            "depth_by_priority": self.depth_by_priority(),
            "depth_by_client": self.depth_by_client(),
            "max_per_client": self.max_per_client,
            "running": self.running(),
            "unfinished": self._unfinished,
            "tracked": len(self._jobs),
            **self.counters,
        }
