"""Micro-batching scheduler: coalesce requests into ``verify_many`` batches.

Individually-submitted verification requests are tiny; the runtime's
batch executor is happiest with many instances at once (one pool
spin-up, in-batch dedup, one cache sweep).  The scheduler bridges the
two shapes: it waits for the first pending job, keeps collecting for a
``window`` (or until ``max_batch``), and executes the whole batch as a
single :func:`repro.runtime.verify_many` call in a worker thread, so
the event loop keeps serving HTTP while solvers run.

Identical concurrent requests cost one solver invocation: in-batch
duplicates collapse via the canonical spec fingerprint inside
``verify_many``, and stragglers that land in a later batch hit the
shared :class:`~repro.runtime.cache.ResultCache`.

:func:`verify_specs_batched` is the same execution path exposed as a
plain function — the offline sweeps
(:func:`repro.analysis.sweeps.verification_sweep`) run through it, so
the service and the benchmarks exercise one engine.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import time
from collections import deque
from fractions import Fraction
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.spec import AttackSpec
from repro.core.synthesis import SynthesisSettings, synthesize_architecture
from repro.core.verification import VerificationResult
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.obs.trace import get_tracer
from repro.runtime import RuntimeOptions, spec_fingerprint, verify_many
from repro.runtime.serialize import (
    attack_to_payload,
    payload_to_spec,
    result_to_payload,
)
from repro.service.jobs import Job, JobQueue, JobState

_LOG = get_logger("repro.service.batching")

_M_BATCH_SIZE = obs_metrics.histogram(
    "repro_batch_size",
    "Jobs coalesced into one scheduler batch",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128),
)
_M_BATCH_JOBS = obs_metrics.counter(
    "repro_batch_jobs_total",
    "Verify jobs by how the batch answered them",
    labels=("path",),  # dedup | cache | solver
)
_M_BATCH_RETRIES = obs_metrics.counter(
    "repro_batch_retries_total", "Batch attempts retried after a failure"
)
_M_BATCH_FAILURES = obs_metrics.counter(
    "repro_batch_failures_total", "Jobs failed after exhausting retries"
)


class BatchStats:
    """Counters the scheduler exposes through ``GET /statsz``.

    ``dedup_hits``   — jobs answered by another identical job in the
                       same batch (no extra solver work);
    ``cache_hits``   — unique specs answered by the result cache;
    ``solver_calls`` — unique specs that actually reached a solver.
    Latencies are submit-to-finish seconds over a sliding window.
    """

    def __init__(self, latency_window: int = 2048) -> None:
        self.batches = 0
        self.jobs = 0
        self.dedup_hits = 0
        self.cache_hits = 0
        self.solver_calls = 0
        self.retries = 0
        self.failures = 0
        self.size_histogram: Dict[int, int] = {}
        self._latencies: Deque[float] = deque(maxlen=latency_window)

    def observe_batch(self, size: int) -> None:
        self.batches += 1
        self.jobs += size
        self.size_histogram[size] = self.size_histogram.get(size, 0) + 1
        _M_BATCH_SIZE.observe(size)

    def observe_specs(
        self,
        specs: Sequence[AttackSpec],
        results: Sequence[VerificationResult],
        options: RuntimeOptions,
    ) -> None:
        """Attribute a finished ``verify_many`` call to dedup/cache/solver."""
        epsilon = None if options.epsilon is None else Fraction(options.epsilon)
        first_index: Dict[str, int] = {}
        for i, spec in enumerate(specs):
            key = spec_fingerprint(
                spec, backend=options.backend_label(), epsilon=epsilon
            )
            if key in first_index:
                self.dedup_hits += 1
                _M_BATCH_JOBS.inc(path="dedup")
                continue
            first_index[key] = i
            if results[i].statistics.get("cache_hit"):
                self.cache_hits += 1
                _M_BATCH_JOBS.inc(path="cache")
            else:
                self.solver_calls += 1
                _M_BATCH_JOBS.inc(path="solver")

    def observe_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    @staticmethod
    def _percentile(ordered: List[float], q: float) -> float:
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> Dict[str, Any]:
        ordered = sorted(self._latencies)
        return {
            "batches": self.batches,
            "jobs": self.jobs,
            "dedup_hits": self.dedup_hits,
            "cache_hits": self.cache_hits,
            "solver_calls": self.solver_calls,
            "retries": self.retries,
            "failures": self.failures,
            "batch_size_histogram": {
                str(size): count for size, count in sorted(self.size_histogram.items())
            },
            "latency_p50": self._percentile(ordered, 0.50) if ordered else None,
            "latency_p95": self._percentile(ordered, 0.95) if ordered else None,
            "latency_samples": len(ordered),
        }


def verify_specs_batched(
    specs: Sequence[AttackSpec],
    options: Optional[RuntimeOptions] = None,
    max_batch: Optional[int] = None,
    stats: Optional[BatchStats] = None,
    trace_parents: Optional[Sequence[Optional[Dict[str, str]]]] = None,
) -> List[VerificationResult]:
    """Verify ``specs`` in micro-batches of ``max_batch`` (None: one batch).

    The single shared execution path for the online scheduler and the
    offline sweeps: each chunk goes through :func:`verify_many` (dedup,
    cache, process-pool fan-out per ``options``), results return in
    input order, and ``stats`` — when provided — is credited exactly as
    the service's ``/statsz`` endpoint reports it.  ``trace_parents``
    (aligned with ``specs``) carries each request's span context into
    the runtime so pool-task and solver spans join the right trace.
    """
    options = options or RuntimeOptions()
    specs = list(specs)
    parents = list(trace_parents) if trace_parents is not None else None
    step = len(specs) if not max_batch or max_batch <= 0 else max_batch
    results: List[VerificationResult] = []
    for start in range(0, len(specs), max(1, step)):
        chunk = specs[start : start + step]
        chunk_parents = None if parents is None else parents[start : start + step]
        if chunk_parents is not None and any(p is not None for p in chunk_parents):
            chunk_results = verify_many(chunk, options, trace_parents=chunk_parents)
        else:
            # tracing off (every parent None): keep the historical
            # two-argument call so test doubles of verify_many still fit
            chunk_results = verify_many(chunk, options)
        if stats is not None:
            stats.observe_specs(chunk, chunk_results, options)
        results.extend(chunk_results)
    return results


def _verify_job_options(base: RuntimeOptions, payload: Dict[str, Any]) -> RuntimeOptions:
    """Per-job overrides on top of the service's base options.

    The cache object is shared deliberately: it is what turns repeated
    requests across batches into hits.
    """
    epsilon = payload.get("epsilon")
    portfolio = payload.get("portfolio", base.portfolio)
    if not isinstance(portfolio, str):
        portfolio = bool(portfolio)
    return dataclasses.replace(
        base,
        backend=payload.get("backend") or base.backend,
        portfolio=portfolio,
        epsilon=base.epsilon if epsilon is None else Fraction(str(epsilon)),
    )


def _options_key(options: RuntimeOptions) -> Tuple[str, str]:
    epsilon = "" if options.epsilon is None else str(Fraction(options.epsilon))
    return (options.backend_label(), epsilon)


def _run_synthesis(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-thread body for one synthesis job."""
    spec = payload_to_spec(payload["spec"])
    settings_kwargs = dict(payload["settings"])
    settings_kwargs["excluded_buses"] = frozenset(
        settings_kwargs.get("excluded_buses", ())
    )
    settings = SynthesisSettings(**settings_kwargs)
    result = synthesize_architecture(spec, settings)
    return {
        "feasible": result.feasible,
        "architecture": result.architecture,
        "iterations": result.iterations,
        "runtime_seconds": result.runtime_seconds,
        "counterexamples": [
            attack_to_payload(attack) for attack in result.counterexamples
        ],
    }


class BatchingScheduler:
    """Pull jobs from a :class:`JobQueue`, execute them in micro-batches.

    One batch at a time: the collect phase blocks until a first job
    arrives, then keeps the window open; the execute phase runs solver
    work in the event loop's default thread pool executor so HTTP
    handling never blocks.  Failed attempts (a raising backend, a dead
    worker pool) are retried up to each job's ``max_retries`` before
    the job goes to ``failed``.
    """

    def __init__(
        self,
        queue: JobQueue,
        options: Optional[RuntimeOptions] = None,
        window: float = 0.05,
        max_batch: int = 64,
        stats: Optional[BatchStats] = None,
    ) -> None:
        if window < 0:
            raise ValueError("window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.queue = queue
        self.options = options or RuntimeOptions()
        self.window = window
        self.max_batch = max_batch
        self.stats = stats or BatchStats()

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Serve forever; cancel the task to stop."""
        while True:
            batch = await self._collect()
            if batch:
                await self._execute(batch)

    async def _collect(self) -> List[Job]:
        first = await self.queue.take()
        batch = [first]
        closes_at = time.monotonic() + self.window
        while len(batch) < self.max_batch:
            remaining = closes_at - time.monotonic()
            if remaining <= 0:
                break
            job = await self.queue.take(timeout=remaining)
            if job is None:
                break
            batch.append(job)
        return batch

    # ------------------------------------------------------------------
    async def _execute(self, batch: List[Job]) -> None:
        self.stats.observe_batch(len(batch))
        verify_groups: Dict[Tuple[str, str], List[Job]] = {}
        for job in batch:
            if job.kind == "verify":
                options = _verify_job_options(self.options, job.payload)
                verify_groups.setdefault(_options_key(options), []).append(job)
            elif job.kind == "synthesize":
                await self._execute_synthesis(job)
            else:
                self.queue.finish(
                    job, JobState.FAILED, error=f"unknown job kind {job.kind!r}"
                )
        for group in verify_groups.values():
            await self._execute_verify_group(group)

    async def _execute_verify_group(self, group: List[Job]) -> None:
        options = _verify_job_options(self.options, group[0].payload)
        specs = [payload_to_spec(job.payload["spec"]) for job in group]
        trace_parents = [job.trace for job in group]
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                None,
                functools.partial(
                    verify_specs_batched,
                    specs,
                    options,
                    stats=self.stats,
                    trace_parents=trace_parents,
                ),
            )
        except Exception as exc:  # worker failure: retry each job, bounded
            for job in group:
                await self._retry_or_fail(job, exc)
            return
        for job, result in zip(group, results):
            self._finish_verify(job, result_to_payload(result))

    def _finish_verify(self, job: Job, result_payload: Dict[str, Any]) -> None:
        if job.expired():
            self.queue.finish(
                job, JobState.TIMEOUT, error="deadline expired while running"
            )
        else:
            self.queue.finish(job, JobState.DONE, result=result_payload)
        self._observe_finish(job)

    async def _execute_synthesis(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None, functools.partial(_run_synthesis, job.payload)
            )
        except Exception as exc:
            await self._retry_or_fail(job, exc)
            return
        if job.expired():
            self.queue.finish(
                job, JobState.TIMEOUT, error="deadline expired while running"
            )
        else:
            self.queue.finish(job, JobState.DONE, result=result)
        self._observe_finish(job)

    async def _retry_or_fail(self, job: Job, exc: Exception) -> None:
        if job.attempts <= job.max_retries and not job.expired():
            self.stats.retries += 1
            _M_BATCH_RETRIES.inc()
            _LOG.warning(
                "job.retry",
                job_id=job.id,
                kind=job.kind,
                attempt=job.attempts,
                error=f"{type(exc).__name__}: {exc}",
            )
            await self.queue.requeue(job)
        else:
            self.stats.failures += 1
            _M_BATCH_FAILURES.inc()
            _LOG.error(
                "job.failed",
                job_id=job.id,
                kind=job.kind,
                attempts=job.attempts,
                error=f"{type(exc).__name__}: {exc}",
            )
            self.queue.finish(
                job,
                JobState.FAILED,
                error=f"{type(exc).__name__}: {exc} (attempt {job.attempts})",
            )
            self._observe_finish(job)

    def _observe_finish(self, job: Job) -> None:
        # monotonic end-to-end latency: immune to wall-clock adjustment
        latency = job.total_seconds()
        if latency is not None:
            self.stats.observe_latency(latency)
