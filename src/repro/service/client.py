"""Small blocking HTTP client for the verification service.

Used by the tests, the CI smoke script and examples; depends only on
:mod:`http.client` from the stdlib.  Specs can be passed as
:class:`~repro.core.spec.AttackSpec` objects (serialized client-side),
as canonical payload dicts, or as the paper's text format via
``spec_text``.

.. code-block:: python

    client = ServiceClient(port=8321)
    client.wait_until_ready()
    job = client.verify(spec, timeout=60)
    assert job["result"]["outcome"] in ("sat", "unsat")

**Transient-failure handling.**  A replica restarting (supervisor
failover, rolling deploy) answers with connection-refused or resets
the socket mid-exchange.  Every request retries those transient
errors up to ``retries`` times with capped exponential backoff
(``backoff`` doubling up to ``max_backoff``); HTTP-level errors
(4xx/5xx answers) and request timeouts are *not* retried — the server
spoke, or is merely slow.  With more than one endpoint
(``endpoints=[(host, port), ...]`` — e.g. a router plus a direct
replica, or several routers) each retry also fails over to the next
endpoint round-robin.  Retried POSTs can in principle double-submit
if the server accepted just before the connection dropped; all
submission endpoints are idempotent in effect (results are
deterministic and cached), so the duplicate only costs a cache hit.

``client_id`` stamps every submission's ``client`` field so the
service's per-client fair queue can tell callers apart.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.spec import AttackSpec
from repro.obs.trace import context_payload
from repro.runtime.serialize import spec_to_payload

SpecLike = Union[AttackSpec, Dict[str, Any]]

#: job states after which a job will never change again
TERMINAL_STATES = ("done", "failed", "cancelled", "timeout")

#: connection-level failures worth retrying: the server never answered
#: (refused while restarting, reset/EOF mid-exchange).  Timeouts are
#: deliberately absent — a slow solver is not a dead replica.
TRANSIENT_ERRORS = (ConnectionError, http.client.BadStatusLine)


class ServiceError(RuntimeError):
    """A non-2xx answer from the service."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


def _spec_field(spec: Optional[SpecLike], spec_text: Optional[str]) -> Dict[str, Any]:
    if (spec is None) == (spec_text is None):
        raise ValueError("provide exactly one of spec= or spec_text=")
    if spec_text is not None:
        return {"spec_text": spec_text}
    if isinstance(spec, AttackSpec):
        return {"spec": spec_to_payload(spec)}
    return {"spec": spec}


class ServiceClient:
    """One endpoint (or several, with failover); short-lived connections."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        timeout: float = 60.0,
        *,
        endpoints: Optional[Sequence[Tuple[str, int]]] = None,
        retries: int = 3,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        client_id: Optional[str] = None,
    ) -> None:
        if endpoints:
            self.endpoints: List[Tuple[str, int]] = [
                (str(h), int(p)) for h, p in endpoints
            ]
        else:
            self.endpoints = [(host, int(port))]
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.client_id = client_id
        self._cursor = 0
        #: observable retry behaviour: requests issued, transient-error
        #: retries, endpoint failovers
        self.retry_stats: Dict[str, int] = {"attempts": 0, "retries": 0, "failovers": 0}

    @property
    def host(self) -> str:
        """Host of the endpoint the next request will try."""
        return self.endpoints[self._cursor % len(self.endpoints)][0]

    @property
    def port(self) -> int:
        """Port of the endpoint the next request will try."""
        return self.endpoints[self._cursor % len(self.endpoints)][1]

    # ------------------------------------------------------------------
    def _raw_request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        """One HTTP exchange with transient-error retry + failover."""
        attempt = 0
        while True:
            target_host, target_port = self.endpoints[
                self._cursor % len(self.endpoints)
            ]
            connection = http.client.HTTPConnection(
                target_host, target_port, timeout=self.timeout
            )
            self.retry_stats["attempts"] += 1
            try:
                connection.request(method, path, body=body, headers=headers or {})
                response = connection.getresponse()
                return response.status, response.read()
            except TRANSIENT_ERRORS:
                if attempt >= self.retries:
                    raise
                self.retry_stats["retries"] += 1
                if len(self.endpoints) > 1:
                    self._cursor = (self._cursor + 1) % len(self.endpoints)
                    self.retry_stats["failovers"] += 1
                time.sleep(min(self.backoff * (2**attempt), self.max_backoff))
                attempt += 1
            finally:
                connection.close()

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        headers = {"Content-Type": "application/json"}
        # propagate the caller's span so the server parents its
        # http.request span on it: one trace across processes
        trace_context = context_payload()
        if trace_context is not None:
            headers["X-Trace-Context"] = json.dumps(trace_context)
        status, raw = self._raw_request(
            method,
            path,
            body=None if body is None else json.dumps(body).encode("utf-8"),
            headers=headers,
        )
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError as exc:
            raise ServiceError(status, {"error": f"non-JSON response: {exc}"})
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/statsz")

    def metrics_text(self) -> str:
        """Raw Prometheus exposition from ``GET /metricsz`` (not JSON)."""
        status, raw = self._raw_request("GET", "/metricsz")
        if status >= 400:
            raise ServiceError(status, {"error": raw.decode("utf-8", "replace")})
        return raw.decode("utf-8")

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait_until_ready(self, timeout: float = 15.0, poll: float = 0.05) -> None:
        """Poll ``/healthz`` until the service answers (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.health()
                return
            except (ServiceError, OSError):
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"service at {self.host}:{self.port} not ready in {timeout}s"
                    )
                time.sleep(poll)

    # ------------------------------------------------------------------
    def submit_verify(
        self,
        spec: Optional[SpecLike] = None,
        spec_text: Optional[str] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """``POST /v1/verify``; returns the job description (state queued).

        ``fields`` forwards API knobs verbatim: ``backend``,
        ``portfolio``, ``epsilon``, ``priority``, ``deadline``,
        ``max_retries``, ``wait``, ``wait_timeout``, ``client``.
        """
        body = {**_spec_field(spec, spec_text), **fields}
        if self.client_id is not None:
            body.setdefault("client", self.client_id)
        return self._request("POST", "/v1/verify", body)

    def submit_synthesize(
        self,
        spec: Optional[SpecLike] = None,
        spec_text: Optional[str] = None,
        budget: int = 0,
        **fields: Any,
    ) -> Dict[str, Any]:
        settings = {"budget": budget, **fields.pop("settings", {})}
        body = {**_spec_field(spec, spec_text), "settings": settings, **fields}
        if self.client_id is not None:
            body.setdefault("client", self.client_id)
        return self._request("POST", "/v1/synthesize", body)

    def wait(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; raise ``TimeoutError`` otherwise."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {job['state']} after {timeout}s")
            time.sleep(poll)

    # ------------------------------------------------------------------
    def verify(
        self,
        spec: Optional[SpecLike] = None,
        spec_text: Optional[str] = None,
        timeout: float = 60.0,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Submit + wait; returns the terminal job (raises if ``failed``)."""
        job = self.submit_verify(spec=spec, spec_text=spec_text, **fields)
        job = self.wait(job["id"], timeout=timeout)
        if job["state"] == "failed":
            raise ServiceError(500, {"error": job.get("error", "job failed")})
        return job

    def synthesize(
        self,
        spec: Optional[SpecLike] = None,
        spec_text: Optional[str] = None,
        budget: int = 0,
        timeout: float = 120.0,
        **fields: Any,
    ) -> Dict[str, Any]:
        job = self.submit_synthesize(
            spec=spec, spec_text=spec_text, budget=budget, **fields
        )
        job = self.wait(job["id"], timeout=timeout)
        if job["state"] == "failed":
            raise ServiceError(500, {"error": job.get("error", "job failed")})
        return job

    # ------------------------------------------------------------------
    def post_incident(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Publish one monitor incident (``POST /v1/incidents``)."""
        return self._request("POST", "/v1/incidents", payload)

    def incidents(self, **params: Any) -> Dict[str, Any]:
        """Query stored incidents (``GET /v1/incidents``).

        ``params`` forwards the endpoint's filters: ``kind``,
        ``severity``, ``min_severity``, ``since_tick``, ``limit``.
        """
        query = "&".join(f"{k}={v}" for k, v in params.items() if v is not None)
        path = "/v1/incidents" + (f"?{query}" if query else "")
        return self._request("GET", path)
