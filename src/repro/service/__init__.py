"""Verification-as-a-service over the parallel runtime.

A long-lived process amortises what the one-shot CLI pays on every
invocation — process-pool spin-up, encoder construction, cold caches —
across an arbitrary stream of requests.  The subsystem is stdlib-only
and splits into five layers:

* :mod:`repro.service.jobs` — an asyncio job queue: IDs, states
  (queued/running/done/failed/cancelled/timeout), priorities, per-job
  deadlines and bounded retry on worker failure;
* :mod:`repro.service.batching` — a micro-batching scheduler that
  coalesces pending verify requests within a window into single
  :func:`repro.runtime.verify_many` batches, deduplicating identical
  specs via their canonical fingerprints;
* :mod:`repro.service.http` — the JSON HTTP API (``POST /v1/verify``,
  ``POST /v1/synthesize``, ``GET /v1/jobs/<id>``, ``GET /healthz``,
  ``GET /statsz``) with request validation and graceful drain;
* :mod:`repro.service.router` — the sharded-cluster tier: a
  consistent-hash router that keeps each spec family on the replica
  holding its warm session, plus the replica supervisor behind
  ``repro serve --replicas N``;
* :mod:`repro.service.client` — a small blocking client (with
  transient-failure retry and endpoint failover) for tests, examples
  and scripts.

``python -m repro.cli serve`` starts the service (``--replicas N`` the
cluster); offline sweeps
(:func:`repro.analysis.sweeps.verification_sweep`) execute through the
same batching code path, so both entry points exercise one engine.
"""

from repro.service.batching import BatchingScheduler, BatchStats, verify_specs_batched
from repro.service.jobs import Job, JobQueue, JobState, QueueFull
from repro.service.router import (
    ClusterSupervisor,
    HashRing,
    ReplicaEndpoint,
    RouterApp,
)

__all__ = [
    "BatchStats",
    "BatchingScheduler",
    "ClusterSupervisor",
    "HashRing",
    "Job",
    "JobQueue",
    "JobState",
    "QueueFull",
    "ReplicaEndpoint",
    "RouterApp",
    "verify_specs_batched",
]
