"""DIMACS CNF import/export for the SAT core.

Lets the bundled CDCL solver interoperate with the wider SAT ecosystem:
exported verification skeletons can be fed to external solvers for
independent confirmation, and standard benchmark files exercise the
core directly (used by the test suite with a few bundled instances).
Only the boolean skeleton travels — arithmetic atoms become free
variables, so exported instances are *relaxations* (UNSAT in DIMACS
implies UNSAT of the full formula, not conversely).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.smt.sat import SatSolver


class DimacsError(ValueError):
    """Malformed DIMACS content."""


def parse_dimacs(text: str) -> Tuple[int, List[List[int]]]:
    """Parse DIMACS CNF text into (num_vars, clauses)."""
    num_vars: Optional[int] = None
    declared_clauses: Optional[int] = None
    clauses: List[List[int]] = []
    current: List[int] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("c", "%")):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"line {lineno}: bad problem line {line!r}")
            num_vars, declared_clauses = int(parts[2]), int(parts[3])
            continue
        if line == "0":  # some benchmark files end with a bare 0
            continue
        tokens: List[int] = []
        for tok in line.split():
            if tok[0] in "c%":  # inline comment: ignore the rest of the line
                break
            try:
                tokens.append(int(tok))
            except ValueError as exc:
                raise DimacsError(f"line {lineno}: {line!r}") from exc
        for token in tokens:
            if token == 0:
                clauses.append(current)
                current = []
            else:
                current.append(token)
    if current:
        clauses.append(current)
    if num_vars is None:
        raise DimacsError("missing 'p cnf' problem line")
    for clause in clauses:
        for lit in clause:
            if abs(lit) > num_vars:
                raise DimacsError(
                    f"literal {lit} exceeds declared variable count {num_vars}"
                )
    return num_vars, clauses


def write_dimacs(num_vars: int, clauses: Iterable[List[int]]) -> str:
    """Serialize (num_vars, clauses) as DIMACS CNF text."""
    clause_list = [list(c) for c in clauses]
    out = [f"p cnf {num_vars} {len(clause_list)}"]
    for clause in clause_list:
        out.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(out) + "\n"


def solver_from_dimacs(text: str) -> SatSolver:
    """Build a :class:`SatSolver` loaded with a DIMACS instance."""
    num_vars, clauses = parse_dimacs(text)
    solver = SatSolver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        if not solver.add_clause(clause):
            break
    return solver


def solve_dimacs_file(path: Union[str, Path]) -> Optional[bool]:
    """Convenience: solve a DIMACS file; True/False/None (budget)."""
    solver = solver_from_dimacs(Path(path).read_text())
    return solver.solve()


def export_solver_cnf(smt_solver) -> str:
    """Export an SMT :class:`~repro.smt.solver.Solver`'s boolean skeleton.

    Arithmetic atom variables are included as plain variables (their
    theory meaning is dropped), so a DIMACS-level UNSAT soundly implies
    the SMT formula is UNSAT.
    """
    cnf = smt_solver._cnf
    return write_dimacs(cnf.num_vars, cnf.clauses)
