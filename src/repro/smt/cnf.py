"""Tseitin transformation from boolean terms to CNF.

The :class:`CnfBuilder` owns the SAT variable space.  It interns:

* boolean variables (one SAT variable per :class:`~repro.smt.terms.BoolVar`),
* arithmetic atoms, deduplicated on a *canonical form* so that syntactic
  variants of the same half-space (``2x - 2y <= 4`` vs ``x - y <= 2``)
  share one SAT variable and, later, one simplex slack variable,
* gates for ``And``/``Or``/``Not`` sub-terms, deduplicated on their
  child-literal signatures.

SAT literals follow the DIMACS convention: positive/negative integers,
variable indices starting at 1.  Variable 1 is reserved as the constant
``TRUE`` (a unit clause pins it).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro.smt.terms import (
    And,
    Atom,
    BoolConst,
    BoolTerm,
    BoolVar,
    Not,
    Or,
)

# A canonical atom: sorted (var, coeff) pairs with monic leading
# coefficient, an operator and a rational bound.
CanonicalAtom = Tuple[Tuple[Tuple[int, Fraction], ...], str, Fraction]


def canonicalize_atom(atom: Atom) -> CanonicalAtom:
    """Normalize an atom so equivalent half-spaces share one key.

    The linear form is scaled so the coefficient of the lowest-indexed
    variable becomes 1; a negative leading coefficient flips the operator.
    """
    items = sorted(atom.expr.coeffs.items())
    if not items:
        raise ValueError("constant atoms must be folded before CNF conversion")
    lead = items[0][1]
    if lead == 1:
        # already monic — the common case for the verification encodings
        # (delta/state variables enter with unit coefficients); skip the
        # per-coefficient Fraction divisions
        return (tuple(items), atom.op, atom.bound)
    op = atom.op
    if lead < 0:
        op = ">=" if op == "<=" else "<="
    coeffs = tuple((v, c / lead) for v, c in items)
    return (coeffs, op, atom.bound / lead)


class CnfBuilder:
    """Incrementally builds CNF clauses and the atom registry."""

    TRUE_LIT = 1

    def __init__(self, add_clause: Optional[Callable[[List[int]], None]] = None) -> None:
        self.num_vars = 1  # variable 1 == constant TRUE
        # pristine copy of every emitted clause (consumed by the MILP
        # mirror backend; the SAT solver mutates its own copies)
        self.clauses: List[List[int]] = []
        self._hook = add_clause
        self._emit([self.TRUE_LIT])
        self._bool_vars: Dict[int, int] = {}  # BoolVar.index -> sat var
        self._atoms: Dict[CanonicalAtom, int] = {}
        self._gates: Dict[Tuple[str, Tuple[int, ...]], int] = {}
        # sat var -> canonical atom (for the theory layer)
        self.atom_of_var: Dict[int, CanonicalAtom] = {}

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def _emit(self, lits: List[int]) -> None:
        self.clauses.append(list(lits))
        if self._hook is not None:
            self._hook(list(lits))

    def add_clause(self, lits: List[int]) -> None:
        self._emit(list(lits))

    # ------------------------------------------------------------------
    # literal construction
    # ------------------------------------------------------------------
    def var_for_bool(self, var: BoolVar) -> int:
        sat = self._bool_vars.get(var.index)
        if sat is None:
            sat = self.new_var()
            self._bool_vars[var.index] = sat
        return sat

    def var_for_atom(self, atom: Atom) -> int:
        key = canonicalize_atom(atom)
        sat = self._atoms.get(key)
        if sat is None:
            # The complementary operator over the same form is a *distinct*
            # SAT variable; the theory layer sees both as bounds on the
            # same slack and resolves interactions semantically.
            sat = self.new_var()
            self._atoms[key] = sat
            self.atom_of_var[sat] = key
        return sat

    def literal_for(self, term: BoolTerm) -> int:
        """Return a SAT literal equivalent to ``term`` (adding gate clauses)."""
        if isinstance(term, BoolConst):
            return self.TRUE_LIT if term.value else -self.TRUE_LIT
        if isinstance(term, BoolVar):
            return self.var_for_bool(term)
        if isinstance(term, Atom):
            return self.var_for_atom(term)
        if isinstance(term, Not):
            return -self.literal_for(term.arg)
        if isinstance(term, And):
            return self._gate("and", sorted(self.literal_for(a) for a in term.args))
        if isinstance(term, Or):
            return self._gate("or", sorted(self.literal_for(a) for a in term.args))
        raise TypeError(f"cannot convert {term!r} to CNF")

    def _gate(self, kind: str, child_lits: List[int]) -> int:
        lits = tuple(child_lits)
        lit_set = set(lits)
        has_complement = any(-l in lit_set for l in lit_set)
        if kind == "and":
            # fold constants / duplicates
            if -self.TRUE_LIT in lit_set or has_complement:
                return -self.TRUE_LIT
            lits = tuple(l for l in dict.fromkeys(lits) if l != self.TRUE_LIT)
            if not lits:
                return self.TRUE_LIT
            if len(lits) == 1:
                return lits[0]
        else:
            if self.TRUE_LIT in lit_set or has_complement:
                return self.TRUE_LIT
            lits = tuple(l for l in dict.fromkeys(lits) if l != -self.TRUE_LIT)
            if not lits:
                return -self.TRUE_LIT
            if len(lits) == 1:
                return lits[0]
        key = (kind, lits)
        gate = self._gates.get(key)
        if gate is not None:
            return gate
        gate = self.new_var()
        self._gates[key] = gate
        if kind == "and":
            for lit in lits:
                self.add_clause([-gate, lit])
            self.add_clause([gate] + [-l for l in lits])
        else:
            for lit in lits:
                self.add_clause([-lit, gate])
            self.add_clause([-gate] + list(lits))
        return gate

    # ------------------------------------------------------------------
    # top-level assertion
    # ------------------------------------------------------------------
    def assert_term(self, term: BoolTerm, guard: Optional[int] = None) -> None:
        """Assert ``term`` (optionally guarded: clauses become ``guard -> term``).

        Top-level conjunctions and disjunctions avoid gate variables.
        """
        extra = [] if guard is None else [-guard]
        if isinstance(term, And):
            for arg in term.args:
                self.assert_term(arg, guard)
            return
        if isinstance(term, Or):
            lits = [self.literal_for(a) for a in term.args]
            lit_set = set(lits)
            if self.TRUE_LIT in lit_set or any(-l in lit_set for l in lit_set):
                return
            self.add_clause(extra + [l for l in dict.fromkeys(lits) if l != -self.TRUE_LIT])
            return
        lit = self.literal_for(term)
        if lit == self.TRUE_LIT and guard is None:
            return
        self.add_clause(extra + [lit])
