"""Incremental Simplex for SMT, after Dutertre & de Moura (CAV'06).

The solver maintains a tableau of *basic* variables expressed as linear
combinations of *nonbasic* variables, an assignment mapping every
variable to a :class:`DeltaRational`, and per-variable lower/upper bounds
tagged with the SAT literal that introduced them.  Bounds are asserted
and retracted incrementally as the SAT core walks its trail; ``check``
restores the invariant that every basic variable lies within its bounds
or reports a minimal conflicting set of bound literals.

All arithmetic is exact (:class:`fractions.Fraction`), so SAT/UNSAT
answers carry no floating-point risk.  Strict inequalities are handled
symbolically through the infinitesimal component of delta-rationals.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

ZERO = Fraction(0)


class DeltaRational:
    """A number of the form ``r + k * delta`` for an infinitesimal delta."""

    __slots__ = ("r", "k")

    def __init__(self, r: Fraction, k: Fraction = ZERO) -> None:
        self.r = r
        self.k = k

    def __add__(self, other: "DeltaRational") -> "DeltaRational":
        return DeltaRational(self.r + other.r, self.k + other.k)

    def __sub__(self, other: "DeltaRational") -> "DeltaRational":
        return DeltaRational(self.r - other.r, self.k - other.k)

    def scale(self, factor: Fraction) -> "DeltaRational":
        return DeltaRational(self.r * factor, self.k * factor)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DeltaRational)
            and self.r == other.r
            and self.k == other.k
        )

    def __lt__(self, other: "DeltaRational") -> bool:
        return (self.r, self.k) < (other.r, other.k)

    def __le__(self, other: "DeltaRational") -> bool:
        return (self.r, self.k) <= (other.r, other.k)

    def __gt__(self, other: "DeltaRational") -> bool:
        return (self.r, self.k) > (other.r, other.k)

    def __ge__(self, other: "DeltaRational") -> bool:
        return (self.r, self.k) >= (other.r, other.k)

    def __hash__(self) -> int:
        return hash((self.r, self.k))

    def __repr__(self) -> str:
        if self.k == 0:
            return f"{self.r}"
        return f"{self.r}{'+' if self.k > 0 else ''}{self.k}d"

    def concretize(self, delta: Fraction) -> Fraction:
        return self.r + self.k * delta


DR_ZERO = DeltaRational(ZERO, ZERO)


class Simplex:
    """The incremental simplex engine.

    Variables are dense integer indices allocated via :meth:`new_var`.
    Definitional rows (slack variables for linear forms) are installed
    with :meth:`add_row` before the search starts; bound assertions and
    retractions then drive the search.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        # tableau: basic var -> {nonbasic var: coefficient}
        self.rows: Dict[int, Dict[int, Fraction]] = {}
        # column index: var -> set of basic vars whose row mentions it
        self.cols: Dict[int, set] = {}
        self.assign: List[DeltaRational] = []
        self.lower: List[Optional[DeltaRational]] = []
        self.upper: List[Optional[DeltaRational]] = []
        self.lower_reason: List[Optional[int]] = []
        self.upper_reason: List[Optional[int]] = []
        # undo trail: (var, 'L'|'U', old_bound, old_reason)
        self.trail: List[Tuple[int, str, Optional[DeltaRational], Optional[int]]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        var = self.num_vars
        self.num_vars += 1
        self.assign.append(DR_ZERO)
        self.lower.append(None)
        self.upper.append(None)
        self.lower_reason.append(None)
        self.upper_reason.append(None)
        self.cols.setdefault(var, set())
        return var

    def add_row(self, slack: int, coeffs: Dict[int, Fraction]) -> None:
        """Install the definition ``slack == sum(coeff * var)``.

        Must be called before any bounds are asserted; ``slack`` becomes
        a basic variable.
        """
        assert slack not in self.rows, "slack already defined"
        assert not self.trail, "rows must be installed before bound assertions"
        row: Dict[int, Fraction] = {}
        value = DR_ZERO
        for var, coeff in coeffs.items():
            if coeff == 0:
                continue
            if var in self.rows:
                # substitute the definition of a basic variable
                for v2, c2 in self.rows[var].items():
                    row[v2] = row.get(v2, ZERO) + coeff * c2
                    if row[v2] == 0:
                        del row[v2]
            else:
                row[var] = row.get(var, ZERO) + coeff
                if row[var] == 0:
                    del row[var]
        for var, coeff in row.items():
            value = value + self.assign[var].scale(coeff)
            self.cols[var].add(slack)
        self.rows[slack] = row
        self.assign[slack] = value

    # ------------------------------------------------------------------
    # assignment maintenance
    # ------------------------------------------------------------------
    def _update_nonbasic(self, var: int, value: DeltaRational) -> None:
        delta = value - self.assign[var]
        for basic in self.cols[var]:
            self.assign[basic] = self.assign[basic] + delta.scale(self.rows[basic][var])
        self.assign[var] = value

    def _pivot_and_update(self, basic: int, nonbasic: int, value: DeltaRational) -> None:
        coeff = self.rows[basic][nonbasic]
        theta = (value - self.assign[basic]).scale(Fraction(1) / coeff)
        self.assign[basic] = value
        self.assign[nonbasic] = self.assign[nonbasic] + theta
        for other in self.cols[nonbasic]:
            if other != basic:
                self.assign[other] = self.assign[other] + theta.scale(
                    self.rows[other][nonbasic]
                )
        self._pivot(basic, nonbasic)

    def _pivot(self, basic: int, nonbasic: int) -> None:
        """Swap roles: ``nonbasic`` enters the basis, ``basic`` leaves."""
        row = self.rows.pop(basic)
        coeff = row.pop(nonbasic)
        inv = Fraction(1) / coeff
        new_row = {basic: inv}
        for var, c in row.items():
            new_row[var] = -c * inv
            self.cols[var].discard(basic)
        self.cols[nonbasic].discard(basic)
        self.cols[basic].add(nonbasic)
        for var in new_row:
            if var != basic:
                self.cols[var].add(nonbasic)
        self.rows[nonbasic] = new_row
        # substitute into every other row that mentions `nonbasic`
        for other in list(self.cols[nonbasic]):
            if other == nonbasic:
                continue
            orow = self.rows[other]
            factor = orow.pop(nonbasic)
            for var, c in new_row.items():
                newc = orow.get(var, ZERO) + factor * c
                if newc == 0:
                    if var in orow:
                        del orow[var]
                    self.cols[var].discard(other)
                else:
                    orow[var] = newc
                    self.cols[var].add(other)
        self.cols[nonbasic] = {
            b for b in self.cols[nonbasic] if b in self.rows and nonbasic in self.rows[b]
        }

    # ------------------------------------------------------------------
    # bounds
    # ------------------------------------------------------------------
    def assert_lower(self, var: int, value: DeltaRational, reason: int) -> Optional[List[int]]:
        """Assert ``var >= value``; returns conflicting reasons or None."""
        if self.lower[var] is not None and value <= self.lower[var]:
            return None
        upper = self.upper[var]
        if upper is not None and value > upper:
            return [reason, self.upper_reason[var]]
        self.trail.append((var, "L", self.lower[var], self.lower_reason[var]))
        self.lower[var] = value
        self.lower_reason[var] = reason
        if var not in self.rows and self.assign[var] < value:
            self._update_nonbasic(var, value)
        return None

    def assert_upper(self, var: int, value: DeltaRational, reason: int) -> Optional[List[int]]:
        """Assert ``var <= value``; returns conflicting reasons or None."""
        if self.upper[var] is not None and value >= self.upper[var]:
            return None
        lower = self.lower[var]
        if lower is not None and value < lower:
            return [reason, self.lower_reason[var]]
        self.trail.append((var, "U", self.upper[var], self.upper_reason[var]))
        self.upper[var] = value
        self.upper_reason[var] = reason
        if var not in self.rows and self.assign[var] > value:
            self._update_nonbasic(var, value)
        return None

    def mark(self) -> int:
        """Current undo-trail position, for later :meth:`backtrack`."""
        return len(self.trail)

    def backtrack(self, mark: int) -> None:
        """Retract all bound assertions made after ``mark``."""
        while len(self.trail) > mark:
            var, which, old_value, old_reason = self.trail.pop()
            if which == "L":
                self.lower[var] = old_value
                self.lower_reason[var] = old_reason
            else:
                self.upper[var] = old_value
                self.upper_reason[var] = old_reason

    # ------------------------------------------------------------------
    # the check procedure
    # ------------------------------------------------------------------
    def check(self) -> Optional[List[int]]:
        """Restore feasibility; returns a conflicting reason set or None.

        Nonbasic variables are always within their bounds; this pivots
        until every basic variable is too (SAT) or some row proves a
        bound conflict (UNSAT, with the reasons of all involved bounds).

        Pivot selection follows Bland's smallest-index rule throughout,
        which guarantees termination (no cycling) and measures fastest
        on the verification workloads.
        """
        while True:
            violating = -1
            increase = False
            for basic in self.rows:
                val = self.assign[basic]
                lo = self.lower[basic]
                if lo is not None and val < lo:
                    if violating == -1 or basic < violating:
                        violating, increase = basic, True
                    continue
                hi = self.upper[basic]
                if hi is not None and val > hi:
                    if violating == -1 or basic < violating:
                        violating, increase = basic, False
            if violating == -1:
                return None
            row = self.rows[violating]
            pivot_var = -1
            for var in row:
                coeff = row[var]
                if increase:
                    movable = (
                        coeff > 0
                        and (self.upper[var] is None or self.assign[var] < self.upper[var])
                    ) or (
                        coeff < 0
                        and (self.lower[var] is None or self.assign[var] > self.lower[var])
                    )
                else:
                    movable = (
                        coeff > 0
                        and (self.lower[var] is None or self.assign[var] > self.lower[var])
                    ) or (
                        coeff < 0
                        and (self.upper[var] is None or self.assign[var] < self.upper[var])
                    )
                if movable and (pivot_var == -1 or var < pivot_var):
                    pivot_var = var
            if pivot_var == -1:
                # conflict: the row pins `violating` strictly outside its bound
                reasons = []
                if increase:
                    reasons.append(self.lower_reason[violating])
                    for var, coeff in row.items():
                        reasons.append(
                            self.upper_reason[var] if coeff > 0 else self.lower_reason[var]
                        )
                else:
                    reasons.append(self.upper_reason[violating])
                    for var, coeff in row.items():
                        reasons.append(
                            self.lower_reason[var] if coeff > 0 else self.upper_reason[var]
                        )
                return sorted({r for r in reasons if r is not None})
            target = self.lower[violating] if increase else self.upper[violating]
            assert target is not None
            self._pivot_and_update(violating, pivot_var, target)

    # ------------------------------------------------------------------
    # model extraction
    # ------------------------------------------------------------------
    def concrete_values(self) -> List[Fraction]:
        """Concretize delta-rationals into plain rationals.

        Chooses a positive rational value for delta small enough that all
        asserted bounds remain satisfied.
        """
        delta = Fraction(1)
        for var in range(self.num_vars):
            val = self.assign[var]
            for bound, is_lower in ((self.lower[var], True), (self.upper[var], False)):
                if bound is None:
                    continue
                diff_r = val.r - bound.r if is_lower else bound.r - val.r
                diff_k = val.k - bound.k if is_lower else bound.k - val.k
                # need diff_r + diff_k * delta >= 0
                if diff_k < 0:
                    assert diff_r >= 0, "bound violated at concretization"
                    if diff_r > 0:
                        delta = min(delta, Fraction(diff_r, -diff_k) / 2)
        return [self.assign[var].concretize(delta) for var in range(self.num_vars)]
